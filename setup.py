"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``setuptools.build_meta:build_editable`` -> ``bdist_wheel``) fail.
This shim lets ``pip install -e . --no-use-pep517`` take the classic
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
