#!/usr/bin/env python
"""End-to-end smoke test of the always-on calibration service.

Drives the real ``python -m repro serve`` daemon through the full crash
story and asserts the repo's acceptance property at the process level:

1. a **reference** daemon runs straight through to completion;
2. a second daemon over the same spool is **SIGKILL'd** as soon as its
   first window seals (so the kill lands mid-run, with later windows
   in flight or pending);
3. a **restarted** daemon resumes from the checkpoint store and drains
   the remaining windows;
4. every sealed forecast artifact of the killed-and-restarted run must
   be **byte-identical** to the reference run's.

Exit code 0 on success; non-zero with a diagnostic on any mismatch.
Used by the ``service`` CI job; also runnable by hand:

    python scripts/service_smoke.py --workdir /tmp/smoke
"""

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
N_WINDOWS = 2  # --window-breaks 8,15,22 below

SERVE_ARGS = [
    "--window-breaks", "8,15,22",
    "--draws", "12", "--replicates", "2", "--resample", "16",
    "--seed", "17", "--executor", "serial",
    "--poll-seconds", "0.05",
    "--exit-when-done",
]


def build_spool(workdir: Path) -> Path:
    """Write the observed-cases series as one immutable spool file."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.sim import make_fig2_ground_truth
    from repro.viz.export import write_series_csv

    truth = make_fig2_ground_truth(seed=777, horizon=26)
    spool = workdir / "spool"
    spool.mkdir(parents=True)
    tmp = spool / "cases.csv.part"
    write_series_csv(tmp, {"cases": truth.observed_cases})
    tmp.rename(spool / "cases.csv")  # write-then-rename spool contract
    return spool


def serve_cmd(spool: Path, root: Path) -> list[str]:
    return [sys.executable, "-m", "repro", "serve",
            "--spool", str(spool),
            "--artifacts", str(root / "art"),
            "--checkpoint-dir", str(root / "ckpt"),
            *SERVE_ARGS]


def serve_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def run_to_completion(spool: Path, root: Path, label: str) -> None:
    print(f"[{label}] running serve to completion", flush=True)
    result = subprocess.run(serve_cmd(spool, root), env=serve_env(),
                            timeout=300, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    if result.returncode != 0:
        sys.exit(f"[{label}] serve exited {result.returncode}:\n"
                 f"{result.stdout}")


def run_and_kill(spool: Path, root: Path) -> None:
    """Start the daemon, SIGKILL it the moment window 0 seals."""
    seal = root / "art" / "window_000" / "SEALED.json"
    print("[killed] starting serve, waiting for the first seal", flush=True)
    proc = subprocess.Popen(serve_cmd(spool, root), env=serve_env(),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 300
    try:
        while not seal.exists():
            if proc.poll() is not None:
                sys.exit(f"[killed] daemon exited early ({proc.returncode}) "
                         "before the first window sealed")
            if time.monotonic() > deadline:
                sys.exit("[killed] timed out waiting for the first seal")
            time.sleep(0.01)
    finally:
        proc.kill()  # SIGKILL: no drain, no cleanup — the crash under test
    proc.wait(timeout=60)
    print("[killed] SIGKILL delivered after window 0 sealed", flush=True)


def artifact_bytes(root: Path) -> dict:
    out = {}
    for index in range(N_WINDOWS):
        path = root / "art" / f"window_{index:03d}" / "forecast.json"
        if not path.exists():
            sys.exit(f"missing artifact after completion: {path}")
        out[index] = path.read_bytes()
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", type=Path, default=None,
                        help="scratch directory (default: a fresh tempdir, "
                             "removed on success)")
    args = parser.parse_args()

    workdir = args.workdir or Path(tempfile.mkdtemp(prefix="service-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)
    spool = build_spool(workdir)

    run_to_completion(spool, workdir / "ref", label="reference")
    run_and_kill(spool, workdir / "killed")
    run_to_completion(spool, workdir / "killed", label="restarted")

    reference = artifact_bytes(workdir / "ref")
    recovered = artifact_bytes(workdir / "killed")
    for index in range(N_WINDOWS):
        if reference[index] != recovered[index]:
            sys.exit(f"window {index}: killed-and-restarted artifact "
                     "differs from the straight-through run")
        print(f"window {index}: byte-identical "
              f"({len(reference[index])} bytes)", flush=True)

    if args.workdir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    print("PASS: kill-and-restart artifacts are byte-identical", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
