"""Unit tests for the event-driven engine (pending-event checkpoints)."""

import json

import numpy as np
import pytest

from repro.seir import Compartment, EventDrivenEngine, ScheduledEvent


class TestScheduledEvent:
    def test_ordering_by_time_then_sequence(self):
        early = ScheduledEvent(1.0, 5, 0, 1)
        late = ScheduledEvent(2.0, 1, 0, 1)
        tie_a = ScheduledEvent(1.0, 1, 0, 1)
        assert early < late
        assert tie_a < early

    def test_accessors(self):
        ev = ScheduledEvent(3.5, 7, 2, 4)
        assert ev.time == 3.5
        assert ev.src == 2
        assert ev.dst == 4

    def test_serialises_as_list(self):
        ev = ScheduledEvent(1.0, 2, 3, 4)
        assert json.loads(json.dumps(list(ev))) == [1.0, 2, 3, 4]


class TestEventDrivenEngine:
    def test_population_conserved(self, tiny_params):
        eng = EventDrivenEngine(tiny_params, seed=1)
        eng.run_until(30)
        assert eng.population_conserved()

    def test_initial_exposed_have_pending_events(self, tiny_params):
        eng = EventDrivenEngine(tiny_params, seed=1)
        assert eng.pending_event_count == tiny_params.initial_exposed

    def test_deterministic_given_seed(self, tiny_params):
        t1 = EventDrivenEngine(tiny_params, seed=5).run_until(25)
        t2 = EventDrivenEngine(tiny_params, seed=5).run_until(25)
        assert np.array_equal(t1.infections, t2.infections)

    def test_counts_nonnegative(self, tiny_params):
        eng = EventDrivenEngine(tiny_params, seed=2)
        for _ in range(25):
            eng.step_day()
            assert np.all(eng.counts >= 0)

    def test_zero_transmission_only_seeds_progress(self, tiny_params):
        params = tiny_params.with_updates(transmission_rate=0.0)
        eng = EventDrivenEngine(params, seed=3)
        traj = eng.run_until(60)
        assert traj.total_infections() == 0
        # The seeded exposures must still progress out of E.
        assert eng.count_of(Compartment.E) < params.initial_exposed

    def test_invalid_slices_rejected(self, tiny_params):
        with pytest.raises(ValueError):
            EventDrivenEngine(tiny_params, seed=1, infection_slices_per_day=0)

    def test_snapshot_includes_pending_events(self, tiny_params):
        eng = EventDrivenEngine(tiny_params, seed=9)
        eng.run_until(10)
        snap = eng.state_snapshot()
        assert snap["pending_events"]
        assert snap["engine"] == "event_driven"
        json.dumps(snap)  # JSON-safe including the event queue

    def test_snapshot_round_trip_exact(self, tiny_params):
        eng = EventDrivenEngine(tiny_params, seed=9)
        eng.run_until(10)
        snap = eng.state_snapshot()
        continued = eng.run_until(20)
        replay = EventDrivenEngine.from_snapshot(snap, tiny_params).run_until(20)
        assert np.array_equal(continued.infections, replay.infections)
        assert np.array_equal(continued.deaths, replay.deaths)

    def test_restart_preserves_scheduled_progressions(self, tiny_params):
        """Individuals mid-stage at checkpoint must finish their dwell."""
        eng = EventDrivenEngine(tiny_params, seed=4)
        eng.run_until(8)
        snap = eng.state_snapshot()
        pending_before = snap["pending_events"]
        restored = EventDrivenEngine.from_snapshot(snap, tiny_params, seed=123)
        assert restored.pending_event_count == len(pending_before)
        restored.run_until(40)
        assert restored.population_conserved()
