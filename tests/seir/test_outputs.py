"""Unit tests for Trajectory records."""

import numpy as np
import pytest

from repro.data.sources import CASES, DEATHS, HOSPITAL_CENSUS, ICU_CENSUS
from repro.seir import Trajectory, TrajectoryBuilder


def make_trajectory(start=0, n=5):
    return Trajectory(start,
                      infections=np.arange(n, dtype=float),
                      deaths=np.zeros(n),
                      hospital_census=np.full(n, 2.0),
                      icu_census=np.ones(n))


class TestTrajectory:
    def test_length_and_days(self):
        t = make_trajectory(start=3, n=4)
        assert len(t) == 4
        assert t.end_day == 7

    def test_channel_series(self):
        t = make_trajectory()
        assert t.series(CASES).name == CASES
        assert list(t.series(ICU_CENSUS).values) == [1.0] * 5
        assert t.series(DEATHS).total() == 0.0
        assert t.series(HOSPITAL_CENSUS).value_on(0) == 2.0

    def test_unknown_channel(self):
        with pytest.raises(KeyError, match="unknown channel"):
            make_trajectory().series("vaccinations")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            Trajectory(0, np.zeros(3), np.zeros(2), np.zeros(3), np.zeros(3))

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-d"):
            Trajectory(0, np.zeros((2, 2)), np.zeros(4), np.zeros(4), np.zeros(4))

    def test_arrays_readonly(self):
        t = make_trajectory()
        with pytest.raises(ValueError):
            t.infections[0] = 99

    def test_window(self):
        t = make_trajectory(start=0, n=10)
        w = t.window(3, 7)
        assert w.start_day == 3
        assert list(w.infections) == [3.0, 4.0, 5.0, 6.0]

    def test_window_out_of_range(self):
        with pytest.raises(ValueError):
            make_trajectory(n=5).window(3, 9)

    def test_extended_by(self):
        a = make_trajectory(start=0, n=3)
        b = make_trajectory(start=3, n=2)
        merged = a.extended_by(b)
        assert len(merged) == 5
        assert merged.start_day == 0

    def test_extended_by_gap_rejected(self):
        a = make_trajectory(start=0, n=3)
        b = make_trajectory(start=5, n=2)
        with pytest.raises(ValueError, match="continuation"):
            a.extended_by(b)

    def test_totals_and_peak(self):
        t = make_trajectory(n=5)
        assert t.total_infections() == 10.0
        assert t.total_deaths() == 0.0
        assert t.peak_infection_day() == 4

    def test_round_trip(self):
        t = make_trajectory(start=2)
        restored = Trajectory.from_dict(t.to_dict())
        assert restored.start_day == 2
        assert np.array_equal(restored.infections, t.infections)

    def test_empty(self):
        t = Trajectory.empty(5)
        assert len(t) == 0
        assert t.start_day == 5


class TestTrajectoryBuilder:
    def test_accumulates_days(self):
        b = TrajectoryBuilder(10)
        b.append_day(1, 0, 5, 2)
        b.append_day(2, 1, 6, 3)
        t = b.build()
        assert t.start_day == 10
        assert list(t.infections) == [1.0, 2.0]
        assert list(t.deaths) == [0.0, 1.0]
        assert len(b) == 2

    def test_empty_build(self):
        t = TrajectoryBuilder(0).build()
        assert len(t) == 0
