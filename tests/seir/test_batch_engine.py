"""Unit tests for the batched ensemble engine.

Scalar/batched parity is asserted *distributionally* (matched moments of
the output channels under common parameters), per the batch RNG contract:
the shared batch stream makes per-member draws depend on the batch
composition, so bit-level agreement with the scalar oracle is out of scope
by design.
"""

import json

import numpy as np
import pytest

from repro.data import PiecewiseConstant
from repro.seir import (BatchedBinomialLeapEngine, BinomialLeapEngine,
                        CheckpointError, Compartment, DiseaseParameters,
                        SeedSequenceBank, StochasticSEIRModel,
                        batch_generator_for, stack_leap_snapshots)


@pytest.fixture
def batch(small_params):
    return BatchedBinomialLeapEngine(small_params, np.arange(50),
                                     thetas=np.full(50, 0.3))


class TestConstruction:
    def test_initial_state(self, small_params, batch):
        assert batch.day == 0
        assert batch.n_particles == 50
        counts = batch.counts
        assert counts.shape == (50, 20)
        assert np.all(counts[:, Compartment.S]
                      == small_params.population - 40)
        assert np.all(counts[:, Compartment.E] == 40)

    def test_empty_seed_vector_rejected(self, small_params):
        with pytest.raises(ValueError, match="seeds"):
            BatchedBinomialLeapEngine(small_params, [])

    def test_theta_length_mismatch_rejected(self, small_params):
        with pytest.raises(ValueError, match="thetas"):
            BatchedBinomialLeapEngine(small_params, [1, 2, 3],
                                      thetas=[0.3, 0.4])

    def test_negative_theta_means_no_infections(self, small_params):
        """Parity with the scalar oracle's `if lam > 0` guard."""
        bt = BatchedBinomialLeapEngine(
            small_params, [1, 2], thetas=[-0.1, 0.4]).run_until(20)
        assert bt.infections[0].sum() == 0
        assert bt.infections[1].sum() > 0

    def test_non_finite_theta_rejected(self, small_params):
        with pytest.raises(ValueError, match="thetas"):
            BatchedBinomialLeapEngine(small_params, [1, 2],
                                      thetas=[0.3, np.nan])

    def test_invalid_steps_rejected(self, small_params):
        with pytest.raises(ValueError):
            BatchedBinomialLeapEngine(small_params, [1], steps_per_day=0)

    def test_thetas_default_to_params_rate(self, small_params):
        eng = BatchedBinomialLeapEngine(small_params, [1, 2, 3])
        assert np.allclose(eng.thetas, small_params.transmission_rate)


class TestDynamics:
    def test_population_conserved_over_run(self, batch):
        batch.run_until(40)
        assert batch.population_conserved()

    def test_counts_never_negative(self, batch):
        for _ in range(40):
            batch.step_day()
            assert np.all(batch.counts >= 0)

    def test_cumulative_counters_match_outputs(self, batch):
        bt = batch.run_until(30)
        assert np.array_equal(batch.cumulative_infections,
                              bt.infections.sum(axis=1))
        assert np.array_equal(batch.cumulative_deaths,
                              bt.deaths.sum(axis=1))

    def test_zero_transmission_no_infections(self, small_params):
        eng = BatchedBinomialLeapEngine(small_params, np.arange(10),
                                        thetas=np.zeros(10))
        bt = eng.run_until(20)
        assert bt.infections.sum() == 0

    def test_per_member_thetas_are_independent(self, small_params):
        """A zero-theta member must stay uninfected while others grow."""
        thetas = np.full(20, 0.4)
        thetas[0] = 0.0
        bt = BatchedBinomialLeapEngine(small_params, np.arange(20),
                                       thetas=thetas).run_until(40)
        assert bt.infections[0].sum() == 0
        assert bt.infections[1:].sum() > 0

    def test_schedule_overrides_thetas(self, small_params):
        sched = PiecewiseConstant.constant(0.0)
        eng = BatchedBinomialLeapEngine(small_params, np.arange(5),
                                        thetas=np.full(5, 0.9),
                                        theta_schedule=sched)
        assert eng.run_until(15).infections.sum() == 0

    def test_run_until_past_day_raises(self, batch):
        batch.run_until(10)
        with pytest.raises(ValueError, match="before current day"):
            batch.run_until(5)

    def test_run_until_same_day_is_empty(self, batch):
        batch.run_until(10)
        assert batch.run_until(10).n_days == 0


class TestDeterminism:
    def test_same_seed_vector_same_batch(self, small_params):
        a = BatchedBinomialLeapEngine(small_params, np.arange(30)).run_until(25)
        b = BatchedBinomialLeapEngine(small_params, np.arange(30)).run_until(25)
        assert np.array_equal(a.infections, b.infections)
        assert np.array_equal(a.deaths, b.deaths)

    def test_permuted_seed_vector_rekeys_stream(self, small_params):
        seeds = np.arange(30)
        a = BatchedBinomialLeapEngine(small_params, seeds).run_until(25)
        b = BatchedBinomialLeapEngine(small_params, seeds[::-1]).run_until(25)
        # Same member seed, different batch order -> different draws.
        assert not np.array_equal(a.infections[0], b.infections[29])

    def test_bank_batch_stream_matches_module_function(self):
        bank = SeedSequenceBank(7)
        a = bank.batch_simulation_generator([1, 2, 3]).integers(0, 10**6, 8)
        b = batch_generator_for([1, 2, 3]).integers(0, 10**6, 8)
        assert np.array_equal(a, b)


class TestScalarParity:
    """Fixed-seed moment matching against the scalar reference oracle."""

    N = 400
    HORIZON = 25

    @pytest.fixture(scope="class")
    def paired(self):
        params = DiseaseParameters(population=20_000, initial_exposed=40)
        seeds = np.arange(self.N)
        batched = BatchedBinomialLeapEngine(
            params, seeds, thetas=np.full(self.N, 0.3)).run_until(self.HORIZON)
        scalar = {"infections": [], "deaths": [], "hosp": [], "icu": []}
        for seed in seeds:
            traj = BinomialLeapEngine(params, seed=int(seed)).run_until(
                self.HORIZON)
            scalar["infections"].append(traj.infections)
            scalar["deaths"].append(traj.deaths)
            scalar["hosp"].append(traj.hospital_census)
            scalar["icu"].append(traj.icu_census)
        return batched, {k: np.array(v) for k, v in scalar.items()}

    def test_mean_daily_infections_match(self, paired):
        batched, scalar = paired
        np.testing.assert_allclose(batched.infections.mean(axis=0),
                                   scalar["infections"].mean(axis=0),
                                   rtol=0.15, atol=3.0)

    def test_mean_total_infections_match(self, paired):
        batched, scalar = paired
        np.testing.assert_allclose(batched.infections.sum(axis=1).mean(),
                                   scalar["infections"].sum(axis=1).mean(),
                                   rtol=0.05)

    def test_variance_total_infections_match(self, paired):
        batched, scalar = paired
        np.testing.assert_allclose(batched.infections.sum(axis=1).var(),
                                   scalar["infections"].sum(axis=1).var(),
                                   rtol=0.4)

    def test_mean_total_deaths_match(self, paired):
        batched, scalar = paired
        b = batched.deaths.sum(axis=1).mean()
        s = scalar["deaths"].sum(axis=1).mean()
        assert b == pytest.approx(s, rel=0.25, abs=0.5)

    def test_mean_census_curves_match(self, paired):
        batched, scalar = paired
        np.testing.assert_allclose(batched.hospital_census.mean(axis=0),
                                   scalar["hosp"].mean(axis=0),
                                   rtol=0.25, atol=2.0)
        np.testing.assert_allclose(batched.icu_census.mean(axis=0),
                                   scalar["icu"].mean(axis=0),
                                   rtol=0.35, atol=2.0)


class TestBatchTrajectory:
    def test_trajectory_extraction(self, batch):
        bt = batch.run_until(20)
        traj = bt.trajectory(3)
        assert traj.start_day == 0
        assert traj.end_day == 20
        assert np.array_equal(traj.infections, bt.infections[3])

    def test_window_slicing(self, batch):
        bt = batch.run_until(20)
        win = bt.window(5, 12)
        assert win.start_day == 5 and win.end_day == 12
        assert np.array_equal(win.deaths, bt.deaths[:, 5:12])
        with pytest.raises(ValueError, match="window"):
            bt.window(5, 25)

    def test_channel_matrix_roundtrip(self, batch):
        from repro.data import CASES
        bt = batch.run_until(10)
        assert bt.channel_matrix(CASES) is bt.infections
        with pytest.raises(KeyError):
            bt.channel_matrix("bogus")


class TestSnapshots:
    def test_batch_snapshot_restores_exact_stream(self, small_params):
        eng = BatchedBinomialLeapEngine(small_params, np.arange(40))
        eng.run_until(15)
        snap = eng.state_snapshot()
        continued = eng.run_until(30)
        restored = BatchedBinomialLeapEngine.from_snapshot(snap, small_params)
        replay = restored.run_until(30)
        assert np.array_equal(continued.infections, replay.infections)
        assert np.array_equal(continued.deaths, replay.deaths)
        assert np.array_equal(continued.hospital_census,
                              replay.hospital_census)

    def test_batch_snapshot_is_json_safe(self, batch):
        batch.run_until(5)
        json.dumps(batch.state_snapshot())

    def test_reseeded_batch_restart_diverges(self, small_params):
        eng = BatchedBinomialLeapEngine(small_params, np.arange(40))
        eng.run_until(15)
        snap = eng.state_snapshot()
        a = BatchedBinomialLeapEngine.from_snapshot(
            snap, small_params).run_until(35)
        b = BatchedBinomialLeapEngine.from_snapshot(
            snap, small_params, seeds=np.arange(40) + 999).run_until(35)
        assert not np.array_equal(a.infections, b.infections)

    def test_particle_snapshot_feeds_scalar_engine(self, small_params, batch):
        batch.run_until(12)
        snap = batch.particle_snapshot(4)
        scalar = BinomialLeapEngine.from_snapshot(snap, small_params)
        assert scalar.day == 12
        assert np.array_equal(scalar.counts, batch.counts[4])
        assert scalar.cumulative_infections == batch.cumulative_infections[4]
        seg = scalar.run_until(16)
        assert seg.start_day == 12 and len(seg) == 4

    def test_particle_checkpoint_carries_member_theta(self, small_params):
        thetas = np.linspace(0.2, 0.4, 10)
        eng = BatchedBinomialLeapEngine(small_params, np.arange(10),
                                        thetas=thetas)
        eng.run_until(8)
        cp = eng.particle_checkpoint(7)
        assert cp.params.transmission_rate == pytest.approx(thetas[7])
        assert cp.day == 8
        model = StochasticSEIRModel.from_checkpoint(cp)
        model.run_until(12)
        assert model.day == 12


class TestBatchRestartRoundTrip:
    def test_particle_snapshots_roundtrip_to_batch(self, small_params):
        eng = BatchedBinomialLeapEngine(small_params, np.arange(30))
        eng.run_until(14)
        snaps = [eng.particle_snapshot(i) for i in range(30)]
        restarted = BatchedBinomialLeapEngine.from_particle_snapshots(
            snaps, small_params, seeds=np.arange(30) + 500)
        assert restarted.day == 14
        assert np.array_equal(restarted.counts, eng.counts)
        assert np.array_equal(restarted.cumulative_infections,
                              eng.cumulative_infections)
        seg = restarted.run_until(20)
        assert seg.start_day == 14 and seg.n_days == 6
        assert restarted.population_conserved()

    def test_restart_is_deterministic_in_new_seeds(self, small_params):
        eng = BatchedBinomialLeapEngine(small_params, np.arange(20))
        eng.run_until(10)
        snaps = [eng.particle_snapshot(i) for i in range(20)]
        new_seeds = np.arange(20) + 77
        a = BatchedBinomialLeapEngine.from_particle_snapshots(
            snaps, small_params, seeds=new_seeds).run_until(20)
        b = BatchedBinomialLeapEngine.from_particle_snapshots(
            snaps, small_params, seeds=new_seeds).run_until(20)
        assert np.array_equal(a.infections, b.infections)

    def test_scalar_snapshots_feed_batch_restart(self, small_params):
        """Scalar-engine checkpoints are valid batch-restart inputs."""
        engines = [BinomialLeapEngine(small_params, seed=s) for s in range(8)]
        for e in engines:
            e.run_until(10)
        snaps = [e.state_snapshot() for e in engines]
        restarted = BatchedBinomialLeapEngine.from_particle_snapshots(
            snaps, small_params, seeds=np.arange(8))
        assert np.array_equal(restarted.counts,
                              np.vstack([e.counts for e in engines]))
        restarted.run_until(15)
        assert restarted.population_conserved()


class TestStackValidation:
    def test_empty_rejected(self):
        with pytest.raises(CheckpointError, match="empty"):
            stack_leap_snapshots([])

    def test_mixed_day_rejected(self, small_params):
        a = BinomialLeapEngine(small_params, seed=1)
        b = BinomialLeapEngine(small_params, seed=2)
        a.run_until(5)
        b.run_until(6)
        with pytest.raises(CheckpointError, match="day"):
            stack_leap_snapshots([a.state_snapshot(), b.state_snapshot()])

    def test_wrong_engine_rejected(self, small_params):
        snap = BinomialLeapEngine(small_params, seed=1).state_snapshot()
        bad = dict(snap, engine="gillespie")
        with pytest.raises(CheckpointError, match="engine"):
            stack_leap_snapshots([bad])

    def test_mixed_steps_rejected(self, small_params):
        a = BinomialLeapEngine(small_params, seed=1, steps_per_day=4)
        b = BinomialLeapEngine(small_params, seed=2, steps_per_day=8)
        with pytest.raises(CheckpointError, match="steps_per_day"):
            stack_leap_snapshots([a.state_snapshot(), b.state_snapshot()])


class TestStackChannelTensor:
    """The scenario-axis tensor view over per-scenario batch outputs."""

    def _batches(self, small_params, thetas, n=12, days=10):
        out = []
        for theta in thetas:
            eng = BatchedBinomialLeapEngine(small_params, np.arange(n),
                                            thetas=np.full(n, theta))
            out.append(eng.run_until(days))
        return out

    def test_shape_and_content(self, small_params):
        from repro.data import CASES
        from repro.seir import stack_channel_tensor
        batches = self._batches(small_params, (0.25, 0.30, 0.35))
        tensor = stack_channel_tensor(batches, CASES)
        assert tensor.shape == (3, 12, 10)
        for s, batch in enumerate(batches):
            assert np.array_equal(tensor[s], batch.channel_matrix(CASES))

    def test_single_scenario_is_trivial_stack(self, small_params):
        from repro.data import CASES
        from repro.seir import stack_channel_tensor
        [batch] = self._batches(small_params, (0.3,))
        tensor = stack_channel_tensor([batch], CASES)
        assert tensor.shape == (1, 12, 10)
        assert np.array_equal(tensor[0], batch.infections)

    def test_empty_rejected(self):
        from repro.seir import stack_channel_tensor
        with pytest.raises(ValueError, match="at least one"):
            stack_channel_tensor([], "cases")

    def test_shape_mismatch_rejected(self, small_params):
        from repro.seir import stack_channel_tensor
        a = self._batches(small_params, (0.3,), n=12)[0]
        b = self._batches(small_params, (0.3,), n=8)[0]
        with pytest.raises(ValueError, match="disagree"):
            stack_channel_tensor([a, b], "cases")
