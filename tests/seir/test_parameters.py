"""Unit tests for disease parameters and the restart-override contract."""

import pytest

from repro.seir import DiseaseParameters, ParameterOverride, chicago_defaults


class TestDiseaseParameters:
    def test_defaults_valid(self):
        p = DiseaseParameters()
        assert p.population == 2_700_000
        assert 0 < p.transmission_rate < 1

    def test_with_updates(self):
        p = DiseaseParameters().with_updates(transmission_rate=0.4)
        assert p.transmission_rate == 0.4
        assert DiseaseParameters().transmission_rate != 0.4  # frozen original

    def test_chicago_defaults_with_kwargs(self):
        p = chicago_defaults(population=1000)
        assert p.population == 1000

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            DiseaseParameters(population=0)

    def test_initial_exposed_bounds(self):
        with pytest.raises(ValueError):
            DiseaseParameters(population=100, initial_exposed=101)
        with pytest.raises(ValueError):
            DiseaseParameters(initial_exposed=-1)

    def test_negative_transmission_rejected(self):
        with pytest.raises(ValueError):
            DiseaseParameters(transmission_rate=-0.1)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="latent_period_days"):
            DiseaseParameters(latent_period_days=0.0)

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="mild_fraction"):
            DiseaseParameters(mild_fraction=1.5)

    def test_round_trip(self):
        p = DiseaseParameters(transmission_rate=0.37)
        assert DiseaseParameters.from_dict(p.to_dict()) == p

    def test_from_dict_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            DiseaseParameters.from_dict({"not_a_field": 1})

    def test_r0_scales_with_theta(self):
        lo = DiseaseParameters(transmission_rate=0.1).basic_reproduction_number()
        hi = DiseaseParameters(transmission_rate=0.4).basic_reproduction_number()
        assert hi == pytest.approx(4 * lo)

    def test_r0_plausible_at_defaults(self):
        r0 = DiseaseParameters().basic_reproduction_number()
        assert 1.5 < r0 < 3.0

    def test_ifr_small_positive(self):
        ifr = DiseaseParameters().infection_fatality_ratio()
        assert 0.001 < ifr < 0.05


class TestParameterOverride:
    def test_empty_override_is_identity(self):
        p = DiseaseParameters()
        o = ParameterOverride()
        assert o.is_empty()
        assert o.apply_to(p) == p

    def test_transmission_override(self):
        p = ParameterOverride(transmission_rate=0.42).apply_to(DiseaseParameters())
        assert p.transmission_rate == 0.42

    def test_all_paper_knobs_apply(self):
        o = ParameterOverride(
            seed=1,
            transmission_rate=0.2,
            exposed_to_presymptomatic_fraction=0.5,
            mild_fraction=0.8,
            asymptomatic_rel_infectiousness=0.3,
            detected_rel_infectiousness=0.05,
        )
        p = o.apply_to(DiseaseParameters())
        assert p.transmission_rate == 0.2
        assert p.exposed_to_presymptomatic_fraction == 0.5
        assert p.mild_fraction == 0.8
        assert p.asymptomatic_rel_infectiousness == 0.3
        assert p.detected_rel_infectiousness == 0.05

    def test_seed_not_applied_to_params(self):
        p = ParameterOverride(seed=99).apply_to(DiseaseParameters())
        assert p == DiseaseParameters()

    def test_round_trip(self):
        o = ParameterOverride(seed=5, transmission_rate=0.3)
        restored = ParameterOverride.from_dict(o.to_dict())
        assert restored == o

    def test_round_trip_empty(self):
        assert ParameterOverride.from_dict({}).is_empty()

    def test_non_restartable_field_rejected(self):
        """The paper's contract: only the six listed knobs may change."""
        with pytest.raises(ValueError, match="not restartable"):
            ParameterOverride.from_dict({"latent_period_days": 5.0})

    def test_override_still_validates_params(self):
        with pytest.raises(ValueError):
            ParameterOverride(mild_fraction=2.0).apply_to(DiseaseParameters())
