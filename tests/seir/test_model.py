"""Unit tests for the StochasticSEIRModel facade."""

import numpy as np
import pytest

from repro.seir import ENGINE_NAMES, StochasticSEIRModel, engine_class


class TestFacade:
    def test_engine_registry(self):
        assert set(ENGINE_NAMES) == {"binomial_leap", "gillespie", "event_driven"}
        for name in ENGINE_NAMES:
            assert engine_class(name).name == name

    def test_unknown_engine_rejected(self, small_params):
        with pytest.raises(ValueError, match="unknown engine"):
            StochasticSEIRModel(small_params, 1, engine="quantum")

    def test_default_engine_is_binomial_leap(self, small_params):
        model = StochasticSEIRModel(small_params, 1)
        assert model.engine_name == "binomial_leap"

    def test_engine_options_forwarded(self, small_params):
        model = StochasticSEIRModel(small_params, 1, steps_per_day=2)
        assert model._engine.steps_per_day == 2

    def test_history_accumulates(self, small_params):
        model = StochasticSEIRModel(small_params, 1)
        assert model.history is None
        model.run_until(10)
        model.run_until(25)
        assert model.history is not None
        assert model.history.start_day == 0
        assert len(model.history) == 25

    def test_run_window_requires_current_position(self, small_params):
        model = StochasticSEIRModel(small_params, 1)
        model.run_until(10)
        with pytest.raises(ValueError, match="cannot run window"):
            model.run_window(12, 20)
        seg = model.run_window(10, 20)
        assert seg.start_day == 10

    def test_properties_delegate(self, small_params):
        model = StochasticSEIRModel(small_params, 77)
        assert model.seed == 77
        assert model.params == small_params
        assert model.day == 0
        model.run_until(5)
        assert model.day == 5
        assert model.population_conserved()

    def test_facade_matches_engine_output(self, small_params):
        from repro.seir import BinomialLeapEngine
        direct = BinomialLeapEngine(small_params, seed=5).run_until(30)
        via_model = StochasticSEIRModel(small_params, 5).run_until(30)
        assert np.array_equal(direct.infections, via_model.infections)
