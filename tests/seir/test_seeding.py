"""Unit tests for seed management (common random numbers)."""

import numpy as np
import pytest

from repro.seir import SeedSequenceBank, generator_for, mix_seed


class TestGeneratorFor:
    def test_deterministic(self):
        a = generator_for(42).integers(0, 1_000_000, size=5)
        b = generator_for(42).integers(0, 1_000_000, size=5)
        assert np.array_equal(a, b)

    def test_distinct_seeds_distinct_streams(self):
        a = generator_for(1).integers(0, 1_000_000, size=5)
        b = generator_for(2).integers(0, 1_000_000, size=5)
        assert not np.array_equal(a, b)


class TestMixSeed:
    def test_deterministic(self):
        assert mix_seed(1, 2, 3) == mix_seed(1, 2, 3)

    def test_order_sensitive(self):
        assert mix_seed(1, 2) != mix_seed(2, 1)

    def test_nonnegative_63bit(self):
        s = mix_seed(2**62, 17)
        assert 0 <= s < 2**63


class TestSeedSequenceBank:
    def test_common_seeds_reproducible(self):
        a = SeedSequenceBank(7).common_replicate_seeds(10)
        b = SeedSequenceBank(7).common_replicate_seeds(10)
        assert a == b

    def test_common_seeds_distinct(self):
        seeds = SeedSequenceBank(7).common_replicate_seeds(50)
        assert len(set(seeds)) == 50

    def test_prefix_stability(self):
        """Asking for more replicates must not change the earlier ones."""
        short = SeedSequenceBank(7).common_replicate_seeds(5)
        long = SeedSequenceBank(7).common_replicate_seeds(10)
        assert long[:5] == short

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            SeedSequenceBank(7).common_replicate_seeds(0)

    def test_ancillary_streams_independent_of_simulation(self):
        bank = SeedSequenceBank(7)
        seeds = bank.common_replicate_seeds(5)
        anc = bank.ancillary_generator(0).integers(0, 2**62, size=5)
        assert not np.array_equal(np.array(seeds), anc)

    def test_ancillary_purposes_differ(self):
        bank = SeedSequenceBank(7)
        a = bank.ancillary_generator(0).integers(0, 2**62, size=4)
        b = bank.ancillary_generator(1).integers(0, 2**62, size=4)
        assert not np.array_equal(a, b)

    def test_window_restart_seed_varies_with_particle(self):
        bank = SeedSequenceBank(7)
        s1 = bank.window_restart_seed(100, 1, 0)
        s2 = bank.window_restart_seed(100, 1, 1)
        s3 = bank.window_restart_seed(100, 2, 0)
        assert len({s1, s2, s3}) == 3

    def test_window_restart_seed_reproducible(self):
        assert (SeedSequenceBank(7).window_restart_seed(5, 1, 2)
                == SeedSequenceBank(7).window_restart_seed(5, 1, 2))

    def test_restart_and_draw_seed_domains_disjoint(self):
        """Regression: ``window_restart_seed(original_seed=3, w, p)`` used
        to reach the exact ``mix_seed`` tuple of ``window_draw_seed(w, p)``
        (3 is the draw stream's tag), aliasing the two streams.  The
        per-method tag in the reserved position after the base seed must
        keep the domains disjoint for *every* original_seed — including the
        stream-tag values themselves."""
        bank = SeedSequenceBank(7)
        draw_seeds = {bank.window_draw_seed(w, p)
                      for w in range(4) for p in range(8)}
        restart_seeds = {bank.window_restart_seed(orig, w, p)
                         for orig in (0, 1, 2, 3, 4, 5, 7)
                         for w in range(4) for p in range(8)}
        assert not draw_seeds & restart_seeds
        # the exact aliasing pair from the bug report
        assert bank.window_restart_seed(3, 1, 2) != bank.window_draw_seed(1, 2)

    def test_restart_seed_varies_with_original_seed(self):
        bank = SeedSequenceBank(7)
        assert (bank.window_restart_seed(1, 1, 0)
                != bank.window_restart_seed(2, 1, 0))


class TestWindowedAncillaryStreams:
    """Regression tests for the cross-window RNG stream reuse bug: every
    per-window consumer (jitter, bias thinning, resampling) must get a
    distinct stream per window instead of replaying window 0's draws."""

    PURPOSES = (1, 2, 3)  # bias, resample, jitter

    def test_streams_pairwise_distinct_across_windows(self):
        bank = SeedSequenceBank(7)
        for purpose in self.PURPOSES:
            draws = [tuple(bank.ancillary_generator(purpose, window_index=w)
                           .integers(0, 2**62, size=6))
                     for w in range(6)]
            assert len(set(draws)) == 6

    def test_windowed_stream_differs_from_unwindowed(self):
        bank = SeedSequenceBank(7)
        plain = bank.ancillary_generator(1).integers(0, 2**62, size=6)
        windowed = bank.ancillary_generator(1, window_index=0).integers(
            0, 2**62, size=6)
        assert not np.array_equal(plain, windowed)

    def test_windowed_streams_distinct_across_purposes(self):
        bank = SeedSequenceBank(7)
        a = bank.ancillary_generator(1, window_index=3).integers(0, 2**62, size=6)
        b = bank.ancillary_generator(2, window_index=3).integers(0, 2**62, size=6)
        assert not np.array_equal(a, b)

    def test_windowed_stream_reproducible(self):
        a = SeedSequenceBank(7).ancillary_generator(2, window_index=4)
        b = SeedSequenceBank(7).ancillary_generator(2, window_index=4)
        assert np.array_equal(a.integers(0, 2**62, size=6),
                              b.integers(0, 2**62, size=6))

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError, match="window_index"):
            SeedSequenceBank(7).ancillary_generator(1, window_index=-1)


class TestShardSimulationGenerators:
    """Per-shard RNG contract of the sharded batched dispatch."""

    def test_single_full_shard_matches_batch_stream(self):
        bank = SeedSequenceBank(3)
        seeds = [11, 22, 33, 44]
        whole = bank.batch_simulation_generator(seeds)
        [sharded] = bank.shard_simulation_generators(seeds, [(0, 4)])
        assert np.array_equal(whole.integers(0, 2**31, size=8),
                              sharded.integers(0, 2**31, size=8))

    def test_shard_stream_is_pure_function_of_slice(self):
        """Same slice contents -> same stream, wherever it is rebuilt."""
        from repro.seir.seeding import batch_generator_for
        bank = SeedSequenceBank(3)
        seeds = [11, 22, 33, 44, 55]
        a, b = bank.shard_simulation_generators(seeds, [(0, 2), (2, 5)])
        assert np.array_equal(
            a.integers(0, 2**31, size=6),
            batch_generator_for([11, 22]).integers(0, 2**31, size=6))
        assert np.array_equal(
            b.integers(0, 2**31, size=6),
            batch_generator_for([33, 44, 55]).integers(0, 2**31, size=6))

    def test_different_layouts_rekey_streams(self):
        bank = SeedSequenceBank(3)
        seeds = [11, 22, 33, 44]
        [whole] = bank.shard_simulation_generators(seeds, [(0, 4)])
        first_half, _ = bank.shard_simulation_generators(seeds,
                                                         [(0, 2), (2, 4)])
        assert not np.array_equal(whole.integers(0, 2**31, size=6),
                                  first_half.integers(0, 2**31, size=6))


class TestStreamDomainRegistry:
    """Import-time uniqueness guard + pinned tag values.

    The pinned values are load-bearing: every stream a tag keys is a pure
    function of ``(base_seed, tag, components)``, so renumbering a tag
    silently re-keys that stream and breaks bit-reproducibility of every
    committed benchmark and regression baseline.
    """

    # (name, tag) per domain as shipped; a changed or missing entry here
    # means someone re-keyed a seed stream.
    PINNED_BANK_TAGS = {
        "simulation": 0, "ancillary": 1, "batch": 2,
        "window_draw": 3, "window_restart": 4, "scenario": 5,
        "forecast": 9100,
    }
    PINNED_ANCILLARY_TAGS = {
        "smc_prior": 0, "smc_bias": 1, "smc_resample": 2, "smc_jitter": 3,
        "groundtruth_thinning": 10, "mcmc_chain": 20, "mcmc_bias": 21,
        "grid_bias": 30, "chaos_faults": 40,
    }

    def test_bank_tags_pinned(self):
        # Importing the consumers registers their tags.
        import repro.core.smc  # noqa: F401
        import repro.inference.forecast  # noqa: F401
        from repro.seir.seeding import STREAM_DOMAINS
        tags = STREAM_DOMAINS.tags("bank")
        for name, tag in self.PINNED_BANK_TAGS.items():
            assert tags.get(name) == tag, (name, tags.get(name))

    def test_ancillary_tags_pinned(self):
        import repro.baselines.grid  # noqa: F401
        import repro.baselines.mcmc  # noqa: F401
        import repro.core.smc  # noqa: F401
        import repro.hpc.faults  # noqa: F401
        import repro.sim.groundtruth  # noqa: F401
        from repro.seir.seeding import STREAM_DOMAINS
        tags = STREAM_DOMAINS.tags("ancillary")
        for name, tag in self.PINNED_ANCILLARY_TAGS.items():
            assert tags.get(name) == tag, (name, tags.get(name))

    def test_tag_collision_raises(self):
        from repro.seir.seeding import register_stream_tag
        with pytest.raises(ValueError, match="alias"):
            register_stream_tag("not_the_simulation_stream", 0)

    def test_name_rebind_raises(self):
        from repro.seir.seeding import register_stream_tag
        with pytest.raises(ValueError, match="rebind"):
            register_stream_tag("simulation", 999)

    def test_reregistration_is_idempotent(self):
        from repro.seir.seeding import register_stream_tag
        assert register_stream_tag("simulation", 0) == 0

    def test_domains_are_separate_namespaces(self):
        # ancillary purpose 0 (smc_prior) coexists with bank tag 0
        # (simulation): collisions are per-domain.
        from repro.seir.seeding import STREAM_DOMAINS
        import repro.core.smc  # noqa: F401
        assert STREAM_DOMAINS.tags("bank")["simulation"] == 0
        assert STREAM_DOMAINS.tags("ancillary")["smc_prior"] == 0

    def test_lookup(self):
        from repro.seir.seeding import STREAM_DOMAINS
        entry = STREAM_DOMAINS.lookup("simulation", "bank")
        assert entry is not None and entry.tag == 0


class TestRngStateHelpers:
    """The serialisation helpers now live in seeding (the one sanctioned
    RNG construction site); the tauleap aliases must stay in lockstep."""

    def test_roundtrip(self):
        from repro.seir.seeding import (rng_from_jsonable,
                                        rng_state_to_jsonable)
        rng = generator_for(99)
        rng.integers(0, 100, size=7)
        clone = rng_from_jsonable(rng_state_to_jsonable(rng))
        assert np.array_equal(rng.integers(0, 2**31, size=16),
                              clone.integers(0, 2**31, size=16))

    def test_tauleap_aliases_point_here(self):
        from repro.seir import seeding, tauleap
        assert tauleap._rng_state_to_jsonable is seeding.rng_state_to_jsonable
        assert tauleap._rng_from_jsonable is seeding.rng_from_jsonable


class TestScenarioStreams:
    """Per-scenario independent stream roots (bank tag 5).

    ``scenario_base_seed`` is the CRN opt-out: its value is pinned because
    an ``independent_streams`` scenario's entire calibration is a pure
    function of the derived seed, so re-keying it silently re-rolls every
    such run.
    """

    def test_scenario_base_seed_pinned(self):
        from repro.seir.seeding import mix_seed
        bank = SeedSequenceBank(20240215)
        for key in (0, 7, 2**31):
            assert bank.scenario_base_seed(key) == mix_seed(20240215, 5, key)

    def test_scenario_roots_distinct_and_reproducible(self):
        bank = SeedSequenceBank(9)
        assert bank.scenario_base_seed(1) != bank.scenario_base_seed(2)
        assert (bank.scenario_base_seed(1)
                == SeedSequenceBank(9).scenario_base_seed(1))
        # key 0 must not collapse onto the undecorated base seed (that
        # would silently re-enable CRN for the first independent scenario)
        assert bank.scenario_base_seed(0) != 9

    def test_scenario_root_disjoint_from_window_streams(self):
        bank = SeedSequenceBank(9)
        assert bank.scenario_base_seed(3) != bank.window_draw_seed(3, 3)
        assert bank.scenario_base_seed(3) != bank.window_restart_seed(3, 3, 3)

    def test_negative_scenario_key_rejected(self):
        with pytest.raises(ValueError, match="scenario_key"):
            SeedSequenceBank(9).scenario_base_seed(-1)
