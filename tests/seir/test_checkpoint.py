"""Unit tests for checkpoint save/load/restart (paper section III-B)."""

import numpy as np
import pytest

from repro.seir import (Checkpoint, CheckpointError, ParameterOverride,
                        StochasticSEIRModel)


def checkpointed_model(params, seed=31, day=15, engine="binomial_leap"):
    model = StochasticSEIRModel(params, seed, engine=engine)
    model.run_until(day)
    return model, model.checkpoint()


class TestCheckpointObject:
    def test_metadata(self, small_params):
        _, cp = checkpointed_model(small_params)
        assert cp.day == 15
        assert cp.seed == 31
        assert cp.engine_name == "binomial_leap"

    def test_round_trip_dict(self, small_params):
        _, cp = checkpointed_model(small_params)
        restored = Checkpoint.from_dict(cp.to_dict())
        assert restored.day == cp.day
        assert restored.params == cp.params
        assert restored.snapshot == cp.snapshot

    def test_save_and_load_file(self, small_params, tmp_path):
        _, cp = checkpointed_model(small_params)
        path = tmp_path / "state.ckpt.json"
        cp.save(path)
        loaded = Checkpoint.load(path)
        assert loaded.day == cp.day
        assert loaded.params == cp.params

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            Checkpoint.load(path)

    def test_wrong_format_version_rejected(self, small_params):
        _, cp = checkpointed_model(small_params)
        payload = cp.to_dict()
        payload["format_version"] = 999
        with pytest.raises(CheckpointError, match="format"):
            Checkpoint.from_dict(payload)

    def test_missing_engine_field_rejected(self, small_params):
        _, cp = checkpointed_model(small_params)
        payload = cp.to_dict()
        del payload["snapshot"]["engine"]
        with pytest.raises(CheckpointError, match="engine"):
            Checkpoint.from_dict(payload)


class TestRestartSemantics:
    def test_plain_restart_is_bit_exact(self, small_params):
        model, cp = checkpointed_model(small_params)
        continued = model.run_until(40)
        replay = StochasticSEIRModel.from_checkpoint(cp).run_until(40)
        assert np.array_equal(continued.infections, replay.infections)

    def test_restart_with_new_theta_changes_dynamics(self, small_params):
        _, cp = checkpointed_model(small_params)
        base = StochasticSEIRModel.from_checkpoint(
            cp, ParameterOverride(seed=7)).run_until(50)
        hot = StochasticSEIRModel.from_checkpoint(
            cp, ParameterOverride(seed=7, transmission_rate=0.9)).run_until(50)
        assert hot.total_infections() > base.total_infections()

    def test_restart_with_new_seed_diverges(self, small_params):
        _, cp = checkpointed_model(small_params)
        a = StochasticSEIRModel.from_checkpoint(
            cp, ParameterOverride(seed=1)).run_until(45)
        b = StochasticSEIRModel.from_checkpoint(
            cp, ParameterOverride(seed=2)).run_until(45)
        assert not np.array_equal(a.infections, b.infections)

    def test_restart_preserves_compartment_counts(self, small_params):
        model, cp = checkpointed_model(small_params)
        restored = StochasticSEIRModel.from_checkpoint(cp)
        assert restored.day == model.day
        assert restored.cumulative_infections == model.cumulative_infections

    def test_theta_override_supersedes_schedule(self, small_params):
        from repro.data import PiecewiseConstant
        sched = PiecewiseConstant.constant(0.9)
        model = StochasticSEIRModel(small_params, 3, theta_schedule=sched)
        model.run_until(10)
        cp = model.checkpoint()
        frozen = StochasticSEIRModel.from_checkpoint(
            cp, ParameterOverride(seed=5, transmission_rate=0.0))
        traj = frozen.run_until(30)
        assert traj.total_infections() == 0

    def test_restart_without_override_keeps_schedule(self, small_params):
        from repro.data import PiecewiseConstant
        sched = PiecewiseConstant.constant(0.0)
        model = StochasticSEIRModel(
            small_params.with_updates(transmission_rate=0.9), 3,
            theta_schedule=sched)
        model.run_until(10)
        restored = StochasticSEIRModel.from_checkpoint(model.checkpoint())
        traj = restored.run_until(30)
        assert traj.total_infections() == 0  # schedule (0.0) still rules

    @pytest.mark.parametrize("engine", ["binomial_leap", "event_driven"])
    def test_restart_engines(self, tiny_params, engine):
        model, cp = checkpointed_model(tiny_params, day=8, engine=engine)
        continued = model.run_until(16)
        replay = StochasticSEIRModel.from_checkpoint(cp).run_until(16)
        assert np.array_equal(continued.infections, replay.infections)

    def test_checkpoint_chain_across_windows(self, small_params):
        """Repeated checkpoint/restart must agree with an unbroken run."""
        whole = StochasticSEIRModel(small_params, 13).run_until(36)
        model = StochasticSEIRModel(small_params, 13)
        segments = []
        for end in (12, 24, 36):
            segments.append(model.run_until(end))
            model = StochasticSEIRModel.from_checkpoint(model.checkpoint())
        merged = segments[0].extended_by(segments[1]).extended_by(segments[2])
        assert np.array_equal(whole.infections, merged.infections)
