"""Unit tests for the binomial-leap engine."""

import numpy as np
import pytest

from repro.data import PiecewiseConstant
from repro.seir import BinomialLeapEngine, Compartment


class TestBasicDynamics:
    def test_initial_state(self, small_params):
        eng = BinomialLeapEngine(small_params, seed=1)
        assert eng.day == 0
        assert eng.count_of(Compartment.S) == small_params.population - 40
        assert eng.count_of(Compartment.E) == 40

    def test_population_conserved_over_run(self, small_params):
        eng = BinomialLeapEngine(small_params, seed=1)
        eng.run_until(60)
        assert eng.population_conserved()

    def test_counts_never_negative(self, small_params):
        eng = BinomialLeapEngine(small_params, seed=2)
        for _ in range(60):
            eng.step_day()
            assert np.all(eng.counts >= 0)

    def test_epidemic_grows_with_default_r0(self, small_params):
        eng = BinomialLeapEngine(small_params, seed=3)
        traj = eng.run_until(50)
        late = traj.infections[35:].sum()
        early = traj.infections[:15].sum()
        assert late > early

    def test_zero_transmission_no_infections(self, small_params):
        params = small_params.with_updates(transmission_rate=0.0)
        eng = BinomialLeapEngine(params, seed=4)
        traj = eng.run_until(30)
        assert traj.total_infections() == 0

    def test_no_initial_exposed_stays_susceptible(self, small_params):
        params = small_params.with_updates(initial_exposed=0)
        eng = BinomialLeapEngine(params, seed=5)
        traj = eng.run_until(20)
        assert traj.total_infections() == 0
        assert eng.count_of(Compartment.S) == params.population

    def test_cumulative_counters_match_trajectory(self, small_params):
        eng = BinomialLeapEngine(small_params, seed=6)
        traj = eng.run_until(40)
        assert eng.cumulative_infections == traj.total_infections()
        assert eng.cumulative_deaths == traj.total_deaths()

    def test_run_until_past_day_raises(self, small_params):
        eng = BinomialLeapEngine(small_params, seed=7)
        eng.run_until(10)
        with pytest.raises(ValueError, match="before current day"):
            eng.run_until(5)

    def test_run_until_same_day_is_empty(self, small_params):
        eng = BinomialLeapEngine(small_params, seed=7)
        eng.run_until(10)
        traj = eng.run_until(10)
        assert len(traj) == 0


class TestDeterminism:
    def test_same_seed_same_trajectory(self, small_params):
        t1 = BinomialLeapEngine(small_params, seed=42).run_until(40)
        t2 = BinomialLeapEngine(small_params, seed=42).run_until(40)
        assert np.array_equal(t1.infections, t2.infections)
        assert np.array_equal(t1.deaths, t2.deaths)

    def test_different_seeds_differ(self, small_params):
        t1 = BinomialLeapEngine(small_params, seed=1).run_until(40)
        t2 = BinomialLeapEngine(small_params, seed=2).run_until(40)
        assert not np.array_equal(t1.infections, t2.infections)

    def test_trajectory_independent_of_run_chunking(self, small_params):
        """(theta, s) -> trajectory must not depend on how windows split."""
        whole = BinomialLeapEngine(small_params, seed=9).run_until(30)
        eng = BinomialLeapEngine(small_params, seed=9)
        first = eng.run_until(13)
        second = eng.run_until(30)
        merged = first.extended_by(second)
        assert np.array_equal(whole.infections, merged.infections)
        assert np.array_equal(whole.hospital_census, merged.hospital_census)


class TestThetaSchedule:
    def test_schedule_overrides_constant_rate(self, small_params):
        sched = PiecewiseConstant.constant(0.0)
        eng = BinomialLeapEngine(
            small_params.with_updates(transmission_rate=0.9), seed=1,
            theta_schedule=sched)
        traj = eng.run_until(20)
        assert traj.total_infections() == 0

    def test_rate_drop_slows_growth(self, small_params):
        sched = PiecewiseConstant(breakpoints=(25,), values=(0.5, 0.0))
        eng = BinomialLeapEngine(small_params, seed=11, theta_schedule=sched)
        traj = eng.run_until(60)
        # After theta -> 0 the infectious pool drains; late incidence ~ 0.
        assert traj.infections[45:].sum() < traj.infections[15:25].sum()


class TestStepsPerDay:
    def test_invalid_steps_rejected(self, small_params):
        with pytest.raises(ValueError):
            BinomialLeapEngine(small_params, seed=1, steps_per_day=0)

    def test_finer_steps_similar_attack_rate(self, small_params):
        """Leap accuracy: total infections within ~15% between dt=1/2 and 1/8."""
        totals = {}
        for spd in (2, 8):
            runs = [BinomialLeapEngine(small_params, seed=s,
                                       steps_per_day=spd).run_until(50)
                    .total_infections() for s in range(8)]
            totals[spd] = np.mean(runs)
        assert totals[8] == pytest.approx(totals[2], rel=0.15)


class TestSnapshot:
    def test_snapshot_restores_exact_stream(self, small_params):
        eng = BinomialLeapEngine(small_params, seed=21)
        eng.run_until(20)
        snap = eng.state_snapshot()
        continued = eng.run_until(40)
        restored = BinomialLeapEngine.from_snapshot(snap, small_params)
        replay = restored.run_until(40)
        assert np.array_equal(continued.infections, replay.infections)
        assert np.array_equal(continued.deaths, replay.deaths)

    def test_snapshot_is_json_safe(self, small_params):
        import json
        eng = BinomialLeapEngine(small_params, seed=21)
        eng.run_until(5)
        json.dumps(eng.state_snapshot())

    def test_reseeded_restart_diverges(self, small_params):
        eng = BinomialLeapEngine(small_params, seed=21)
        eng.run_until(20)
        snap = eng.state_snapshot()
        a = BinomialLeapEngine.from_snapshot(snap, small_params).run_until(45)
        b = BinomialLeapEngine.from_snapshot(snap, small_params,
                                             seed=999).run_until(45)
        assert not np.array_equal(a.infections, b.infections)

    def test_restart_day_continuity(self, small_params):
        eng = BinomialLeapEngine(small_params, seed=3)
        eng.run_until(17)
        snap = eng.state_snapshot()
        restored = BinomialLeapEngine.from_snapshot(snap, small_params)
        assert restored.day == 17
        seg = restored.run_until(20)
        assert seg.start_day == 17
        assert len(seg) == 3
