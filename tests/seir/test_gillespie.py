"""Unit tests for the exact Gillespie engine."""

import numpy as np
import pytest

from repro.seir import Compartment, GillespieEngine


class TestGillespie:
    def test_population_conserved(self, tiny_params):
        eng = GillespieEngine(tiny_params, seed=1)
        eng.run_until(30)
        assert eng.population_conserved()

    def test_deterministic_given_seed(self, tiny_params):
        t1 = GillespieEngine(tiny_params, seed=5).run_until(25)
        t2 = GillespieEngine(tiny_params, seed=5).run_until(25)
        assert np.array_equal(t1.infections, t2.infections)

    def test_counts_nonnegative(self, tiny_params):
        eng = GillespieEngine(tiny_params, seed=2)
        for _ in range(30):
            eng.step_day()
            assert np.all(eng.counts >= 0)

    def test_zero_transmission_no_infections(self, tiny_params):
        params = tiny_params.with_updates(transmission_rate=0.0)
        traj = GillespieEngine(params, seed=3).run_until(25)
        assert traj.total_infections() == 0

    def test_epidemic_extinguishes_eventually(self, tiny_params):
        """With a closed small population the event stream must dry up."""
        eng = GillespieEngine(tiny_params, seed=4)
        eng.run_until(400)
        infected = sum(eng.count_of(c) for c in Compartment
                       if c.name not in ("S", "R_U", "R_D", "D_U", "D_D"))
        assert infected == 0

    def test_event_budget_guard(self, small_params):
        eng = GillespieEngine(small_params, seed=1, max_events_per_day=10)
        with pytest.raises(RuntimeError, match="budget"):
            eng.run_until(30)

    def test_snapshot_round_trip(self, tiny_params):
        eng = GillespieEngine(tiny_params, seed=9)
        eng.run_until(10)
        snap = eng.state_snapshot()
        continued = eng.run_until(20)
        replay = GillespieEngine.from_snapshot(snap, tiny_params).run_until(20)
        assert np.array_equal(continued.infections, replay.infections)

    def test_cumulative_counters(self, tiny_params):
        eng = GillespieEngine(tiny_params, seed=11)
        traj = eng.run_until(40)
        assert eng.cumulative_infections == traj.total_infections()
        assert eng.cumulative_deaths == traj.total_deaths()
