"""Unit tests for the compartment topology (paper Figure 1)."""

import numpy as np
import pytest

from repro.seir import (Compartment, DiseaseParameters, N_COMPARTMENTS,
                        TransitionSpec, build_transitions,
                        infectiousness_weights)
from repro.seir.compartments import (DEATH_COMPARTMENTS, DETECTED_COMPARTMENTS,
                                     ICU_COMPARTMENTS, INFECTED_COMPARTMENTS)


@pytest.fixture
def transitions():
    return build_transitions(DiseaseParameters())


class TestTopology:
    def test_compartment_count(self):
        assert N_COMPARTMENTS == 20

    def test_every_undetected_stage_has_detected_twin(self):
        names = {c.name for c in Compartment}
        for stage in ("A", "P", "SM", "SS", "H", "C", "HP", "R", "D"):
            assert f"{stage}_U" in names
            assert f"{stage}_D" in names

    def test_detected_compartments_are_half(self):
        assert len(DETECTED_COMPARTMENTS) == 9

    def test_death_and_icu_sets(self):
        assert set(DEATH_COMPARTMENTS) == {Compartment.D_U, Compartment.D_D}
        assert set(ICU_COMPARTMENTS) == {Compartment.C_U, Compartment.C_D}

    def test_infected_excludes_s_r_d(self):
        assert Compartment.S not in INFECTED_COMPARTMENTS
        assert Compartment.R_U not in INFECTED_COMPARTMENTS
        assert Compartment.D_D not in INFECTED_COMPARTMENTS


class TestTransitionTable:
    def test_destination_probs_sum_to_one(self, transitions):
        for spec in transitions:
            assert sum(p for _, p in spec.destinations) == pytest.approx(1.0)

    def test_no_transition_out_of_absorbing_states(self, transitions):
        sources = {spec.src for spec in transitions}
        for absorbing in (Compartment.R_U, Compartment.R_D,
                          Compartment.D_U, Compartment.D_D,
                          Compartment.S):
            assert absorbing not in sources

    def test_exposed_splits_to_presymptomatic_and_asymptomatic(self, transitions):
        e_specs = [s for s in transitions if s.src == Compartment.E]
        assert len(e_specs) == 1
        dests = {d for d, _ in e_specs[0].destinations}
        assert dests == {Compartment.P_U, Compartment.A_U}

    def test_detection_moves_to_same_stage_twin(self, transitions):
        detect = [s for s in transitions if s.label.startswith("detect")]
        assert len(detect) == 4
        for spec in detect:
            (dst, p), = spec.destinations
            assert p == 1.0
            assert spec.src.name.endswith("_U")
            assert dst.name == spec.src.name.replace("_U", "_D")

    def test_detection_hazard_matches_probability_over_delay(self):
        params = DiseaseParameters(detection_prob_mild=0.5,
                                   detection_delay_days=2.0)
        specs = build_transitions(params)
        mild_detect = next(s for s in specs if s.label == "detect Sm")
        assert mild_detect.hazard == pytest.approx(0.25)

    def test_zero_detection_prob_removes_transition(self):
        params = DiseaseParameters(detection_prob_asymptomatic=0.0)
        specs = build_transitions(params)
        assert not any(s.label == "detect A" for s in specs)

    def test_death_only_reachable_from_icu(self, transitions):
        for spec in transitions:
            for dst, _ in spec.destinations:
                if dst in DEATH_COMPARTMENTS:
                    assert spec.src in (Compartment.C_U, Compartment.C_D)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            TransitionSpec(Compartment.E, 1.0,
                           ((Compartment.P_U, 0.5), (Compartment.A_U, 0.3)),
                           "bad")
        with pytest.raises(ValueError, match="negative"):
            TransitionSpec(Compartment.E, -1.0, ((Compartment.P_U, 1.0),), "bad")


class TestInfectiousnessWeights:
    def test_shape_and_nonnegative(self):
        w = infectiousness_weights(DiseaseParameters())
        assert w.shape == (N_COMPARTMENTS,)
        assert np.all(w >= 0)

    def test_noninfectious_compartments_are_zero(self):
        w = infectiousness_weights(DiseaseParameters())
        for c in (Compartment.S, Compartment.E, Compartment.R_U,
                  Compartment.D_D, Compartment.H_U, Compartment.C_D,
                  Compartment.HP_U):
            assert w[c] == 0.0

    def test_detected_less_infectious_than_undetected(self):
        w = infectiousness_weights(DiseaseParameters())
        for und, det in ((Compartment.P_U, Compartment.P_D),
                         (Compartment.SM_U, Compartment.SM_D),
                         (Compartment.SS_U, Compartment.SS_D),
                         (Compartment.A_U, Compartment.A_D)):
            assert w[det] < w[und]

    def test_asymptomatic_scaling(self):
        p = DiseaseParameters(asymptomatic_rel_infectiousness=0.5)
        w = infectiousness_weights(p)
        assert w[Compartment.A_U] == pytest.approx(0.5 * w[Compartment.P_U])

    def test_detected_scaling_factor(self):
        p = DiseaseParameters(detected_rel_infectiousness=0.2)
        w = infectiousness_weights(p)
        assert w[Compartment.SM_D] == pytest.approx(0.2 * w[Compartment.SM_U])
