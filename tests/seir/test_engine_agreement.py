"""Cross-engine distributional agreement (leap vs exact SSA vs event-driven).

The binomial-leap engine is an approximation; the Gillespie engine is exact
for the compartment topology.  On a small population their attack-rate and
death-count distributions should agree within Monte-Carlo error.  These are
statistical tests with fixed seeds and generous tolerances.
"""

import numpy as np
import pytest

from repro.seir import (BinomialLeapEngine, EventDrivenEngine, GillespieEngine,
                        DiseaseParameters)

N_REPS = 12
HORIZON = 60


@pytest.fixture(scope="module")
def agreement_params():
    return DiseaseParameters(population=3_000, initial_exposed=30,
                             transmission_rate=0.35)


def attack_rates(engine_cls, params, **kwargs):
    out = []
    for seed in range(N_REPS):
        eng = engine_cls(params, seed=seed + 1000, **kwargs)
        traj = eng.run_until(HORIZON)
        out.append(traj.total_infections() / params.population)
    return np.array(out)


@pytest.fixture(scope="module")
def rates(agreement_params):
    return {
        "leap": attack_rates(BinomialLeapEngine, agreement_params,
                             steps_per_day=8),
        "ssa": attack_rates(GillespieEngine, agreement_params),
        "event": attack_rates(EventDrivenEngine, agreement_params,
                              infection_slices_per_day=8),
    }


class TestEngineAgreement:
    def test_all_engines_produce_epidemics(self, rates):
        for name, r in rates.items():
            assert r.mean() > 0.05, f"{name} produced no epidemic"

    def test_leap_matches_exact_attack_rate(self, rates):
        assert rates["leap"].mean() == pytest.approx(rates["ssa"].mean(),
                                                     rel=0.2)

    def test_event_matches_exact_attack_rate(self, rates):
        assert rates["event"].mean() == pytest.approx(rates["ssa"].mean(),
                                                      rel=0.2)

    def test_dispersion_same_order(self, rates):
        """Engines must agree on variability scale, not just the mean."""
        s_leap, s_ssa = rates["leap"].std(), rates["ssa"].std()
        assert s_leap < 10 * s_ssa + 0.05
        assert s_ssa < 10 * s_leap + 0.05
