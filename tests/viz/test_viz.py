"""Unit tests for ASCII rendering and CSV export."""

import csv

import numpy as np
import pytest

from repro.core import trajectory_ribbon
from repro.data import TimeSeries
from repro.seir import Trajectory
from repro.viz import (density_grid_plot, histogram_plot, line_plot,
                       multi_line_plot, ribbon_plot, write_density_csv,
                       write_json, write_ribbon_csv, write_series_csv)


class TestAsciiPlots:
    def test_line_plot_contains_marker_and_bounds(self):
        out = line_plot(np.linspace(0, 100, 50), title="ramp")
        assert "ramp" in out
        assert "*" in out
        assert "max 100.0" in out
        assert "min 0.0" in out

    def test_log_scale_label(self):
        out = line_plot(np.array([1.0, 10.0, 100.0]), log_scale=True)
        assert "log scale" in out

    def test_multi_line_distinct_markers(self):
        out = multi_line_plot([np.zeros(10), np.full(10, 5.0)],
                              markers=["a", "b"])
        assert "a" in out
        assert "b" in out

    def test_multi_line_validation(self):
        with pytest.raises(ValueError):
            multi_line_plot([])
        with pytest.raises(ValueError):
            multi_line_plot([np.zeros(3), np.zeros(3)], markers=["x"])

    def test_long_series_downsampled_to_width(self):
        out = line_plot(np.arange(10_000.0), width=40)
        assert max(len(line) for line in out.splitlines()) <= 41

    def test_constant_series_no_crash(self):
        out = line_plot(np.full(10, 3.0))
        assert "3.0" in out

    def test_histogram_rows(self):
        edges = np.array([0.0, 0.5, 1.0])
        dens = np.array([0.4, 1.6])
        out = histogram_plot(edges, dens, title="h")
        assert out.count("|") == 2
        assert "#" in out

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            histogram_plot(np.array([0.0, 1.0]), np.array([1.0, 2.0]))

    def test_ribbon_plot_with_truth(self):
        days = np.arange(10)
        out = ribbon_plot(days, np.zeros(10), np.full(10, 4.0),
                          np.full(10, 2.0), truth=np.full(10, 2.0),
                          title="rib")
        assert "rib" in out
        assert "days 0..9" in out

    def test_density_grid_shades(self):
        d = np.zeros((4, 3))
        d[2, 1] = 5.0
        out = density_grid_plot(d, title="dens")
        assert "@" in out
        assert len(out.splitlines()) == 4  # title + 3 y-rows

    def test_density_grid_validation(self):
        with pytest.raises(ValueError):
            density_grid_plot(np.zeros(3))


def ribbon_fixture():
    trajs = [Trajectory(5, np.full(4, float(k)), np.zeros(4), np.zeros(4),
                        np.zeros(4)) for k in range(10)]
    return trajectory_ribbon(trajs, "cases", quantiles=(0.05, 0.5, 0.95))


class TestExports:
    def test_series_csv(self, tmp_path):
        path = tmp_path / "series.csv"
        write_series_csv(path, {"cases": TimeSeries(3, [1.0, 2.0])})
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["day", "series", "value"]
        assert rows[1] == ["3", "cases", "1.0"]
        assert len(rows) == 3

    def test_series_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_series_csv(tmp_path / "x.csv", {})

    def test_ribbon_csv(self, tmp_path):
        path = tmp_path / "ribbon.csv"
        rib = ribbon_fixture()
        truth = TimeSeries(5, [4.0, 4.0, 4.0, 4.0])
        write_ribbon_csv(path, rib, truth=truth)
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["day", "q05", "q50", "q95", "truth"]
        assert len(rows) == 5
        assert rows[1][0] == "5"
        assert rows[1][-1] == "4.0"

    def test_density_csv(self, tmp_path):
        path = tmp_path / "density.csv"
        write_density_csv(path, np.array([0.0, 1.0, 2.0]),
                          np.array([0.0, 1.0]), np.array([[0.2], [0.8]]),
                          x_name="theta", y_name="rho")
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["theta", "rho", "density"]
        assert len(rows) == 3

    def test_density_csv_shape_validated(self, tmp_path):
        with pytest.raises(ValueError):
            write_density_csv(tmp_path / "bad.csv", np.array([0.0, 1.0]),
                              np.array([0.0, 1.0]), np.zeros((2, 2)))

    def test_write_json_handles_numpy(self, tmp_path):
        import json
        path = tmp_path / "out.json"
        write_json(path, {"arr": np.array([1.0, 2.0]),
                          "scalar": np.float64(3.5)})
        payload = json.loads(path.read_text())
        assert payload == {"arr": [1.0, 2.0], "scalar": 3.5}
