"""CPU-mismatch handling in the benchmark trend gate."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_trend",
    Path(__file__).parents[2] / "benchmarks" / "check_trend.py")
check_trend_mod = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_trend_mod)


@pytest.fixture
def payloads(tmp_path):
    def write(name: str, cpu: int | None, speedup: float = 2.0) -> Path:
        payload: dict = {"speedup": speedup}
        if cpu is not None:
            payload["cpu_count"] = cpu
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path
    return write


class TestCpuMismatch:
    def test_detects_mismatch(self):
        assert check_trend_mod.cpu_mismatch(
            {"cpu_count": 1}, {"cpu_count": 4}) == (1, 4)

    def test_no_mismatch_when_equal_or_absent(self):
        assert check_trend_mod.cpu_mismatch(
            {"cpu_count": 4}, {"cpu_count": 4}) is None
        assert check_trend_mod.cpu_mismatch({}, {"cpu_count": 4}) is None
        assert check_trend_mod.cpu_mismatch({"cpu_count": 4}, {}) is None

    def test_machine_readable_line(self):
        line = check_trend_mod.render_cpu_mismatch((1, 4))
        assert line.startswith("CPU_MISMATCH baseline=1 fresh=4")

    def test_default_mode_warns_but_passes(self, payloads, capsys):
        base, fresh = payloads("b.json", 1), payloads("f.json", 4)
        code = check_trend_mod.main(["--baseline", str(base),
                                     "--fresh", str(fresh),
                                     "--floor", "0.5"])
        assert code == 0
        assert "CPU_MISMATCH baseline=1 fresh=4" in capsys.readouterr().err

    def test_strict_mode_fails_with_status_3(self, payloads, capsys):
        base, fresh = payloads("b.json", 1), payloads("f.json", 4)
        code = check_trend_mod.main(["--baseline", str(base),
                                     "--fresh", str(fresh),
                                     "--floor", "0.5", "--strict-cpu"])
        assert code == 3
        assert "CPU_MISMATCH" in capsys.readouterr().err

    def test_strict_mode_passes_on_matching_hosts(self, payloads):
        base, fresh = payloads("b.json", 4), payloads("f.json", 4)
        assert check_trend_mod.main(["--baseline", str(base),
                                     "--fresh", str(fresh),
                                     "--floor", "0.5", "--strict-cpu"]) == 0

    def test_regression_still_fails_regardless(self, payloads):
        base = payloads("b.json", 4, speedup=10.0)
        fresh = payloads("f.json", 4, speedup=0.2)
        assert check_trend_mod.main(["--baseline", str(base),
                                     "--fresh", str(fresh),
                                     "--floor", "1.5"]) == 1
