"""Property-based tests (hypothesis) on core invariants."""

import functools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (effective_sample_size, logsumexp,
                        normalize_log_weights, weighted_quantile)
from repro.core.resampling import RESAMPLERS
from repro.data import TimeSeries, concat
from repro.hpc import (block_partition, chunk_sizes, cyclic_partition,
                       lpt_partition, merge_logsumexp, tree_reduce)

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
log_weight_arrays = hnp.arrays(np.float64, st.integers(1, 60),
                               elements=st.floats(min_value=-700,
                                                  max_value=10,
                                                  allow_nan=False))


class TestWeightInvariants:
    @given(log_weight_arrays)
    def test_normalised_weights_are_distribution(self, lw):
        w = normalize_log_weights(lw)
        assert np.all(w >= 0)
        assert abs(w.sum() - 1.0) < 1e-9

    @given(log_weight_arrays, st.floats(min_value=-50, max_value=50))
    def test_normalisation_shift_invariant(self, lw, shift):
        a = normalize_log_weights(lw)
        b = normalize_log_weights(lw + shift)
        assert np.allclose(a, b, atol=1e-9)

    @given(log_weight_arrays)
    def test_ess_bounds(self, lw):
        w = normalize_log_weights(lw)
        ess = effective_sample_size(w)
        assert 1.0 - 1e-9 <= ess <= len(w) + 1e-9

    @given(log_weight_arrays)
    def test_logsumexp_upper_bound(self, lw):
        out = logsumexp(lw)
        assert out >= lw.max() - 1e-12
        assert out <= lw.max() + np.log(len(lw)) + 1e-9

    @given(hnp.arrays(np.float64, st.integers(2, 40),
                      elements=finite_floats),
           st.floats(min_value=0.0, max_value=1.0))
    def test_weighted_quantile_in_range(self, values, q):
        w = np.full(len(values), 1.0 / len(values))
        out = weighted_quantile(values, w, q)
        assert values.min() - 1e-12 <= out <= values.max() + 1e-12


class TestResamplerInvariants:
    @given(st.sampled_from(sorted(RESAMPLERS)),
           hnp.arrays(np.float64, st.integers(1, 30),
                      elements=st.floats(min_value=0, max_value=100)),
           st.integers(1, 50), st.integers(0, 2**32 - 1))
    def test_indices_valid_and_positive_weight(self, name, raw_w, n_out, seed):
        if raw_w.sum() <= 0:
            raw_w = raw_w + 1.0
        rng = np.random.Generator(np.random.PCG64(seed))
        idx = RESAMPLERS[name](raw_w, n_out, rng)
        assert idx.shape == (n_out,)
        assert np.all((idx >= 0) & (idx < len(raw_w)))
        assert np.all(raw_w[idx] > 0)


class TestReductionInvariants:
    @given(st.lists(st.floats(min_value=-500, max_value=10,
                              allow_nan=False), min_size=1, max_size=40))
    def test_merge_logsumexp_matches_global(self, values):
        merged = merge_logsumexp(values)
        expected = float(np.logaddexp.reduce(np.asarray(values)))
        assert abs(merged - expected) < 1e-9

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
    def test_tree_reduce_sum_matches_fold(self, items):
        assert tree_reduce(items, lambda a, b: a + b) == sum(items)


class TestPartitionInvariants:
    @given(st.integers(0, 200), st.integers(1, 16))
    def test_block_partition_complete_disjoint(self, n, parts):
        out = block_partition(n, parts)
        merged = np.concatenate(out) if out else np.array([])
        assert sorted(merged.tolist()) == list(range(n))

    @given(st.integers(0, 200), st.integers(1, 16))
    def test_cyclic_partition_complete_disjoint(self, n, parts):
        out = cyclic_partition(n, parts)
        merged = np.concatenate(out)
        assert sorted(merged.tolist()) == list(range(n))

    @given(st.integers(0, 200), st.integers(1, 16))
    def test_chunk_sizes_sum(self, n, parts):
        sizes = chunk_sizes(n, parts)
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1

    @given(hnp.arrays(np.float64, st.integers(1, 40),
                      elements=st.floats(min_value=0, max_value=100)),
           st.integers(1, 8))
    def test_lpt_partition_complete(self, costs, parts):
        out = lpt_partition(costs, parts)
        merged = np.concatenate(out)
        assert sorted(merged.tolist()) == list(range(len(costs)))


class TestSeriesInvariants:
    @given(hnp.arrays(np.float64, st.integers(1, 50),
                      elements=finite_floats),
           st.integers(-100, 100))
    def test_cumulative_diff_round_trip(self, values, start):
        ts = TimeSeries(start, values)
        back = ts.cumulative().diff()
        assert np.allclose(back.values, ts.values, atol=1e-6)

    @given(hnp.arrays(np.float64, st.integers(1, 30),
                      elements=finite_floats),
           hnp.arrays(np.float64, st.integers(1, 30),
                      elements=finite_floats))
    def test_concat_window_round_trip(self, a_vals, b_vals):
        a = TimeSeries(0, a_vals)
        b = TimeSeries(len(a_vals), b_vals)
        merged = concat(a, b)
        assert merged.window(0, len(a_vals)) == a
        assert merged.window(len(a_vals), len(a_vals) + len(b_vals)) == b

    @given(hnp.arrays(np.float64, st.integers(2, 40),
                      elements=finite_floats),
           st.data())
    def test_window_of_window(self, values, data):
        ts = TimeSeries(0, values)
        n = len(values)
        lo = data.draw(st.integers(0, n - 1))
        hi = data.draw(st.integers(lo + 1, n))
        w = ts.window(lo, hi)
        assert len(w) == hi - lo
        assert w.value_on(lo) == ts.value_on(lo)


class TestBatchedWeightingInvariants:
    """The batched weighting stack must agree with the scalar reference."""

    count_matrices = hnp.arrays(
        np.float64, st.tuples(st.integers(1, 12), st.integers(1, 20)),
        elements=st.floats(min_value=0, max_value=5_000))

    @settings(max_examples=30)
    @given(count_matrices, st.data())
    def test_batched_logliks_match_scalar(self, eta, data):
        from repro.core import (GaussianTransformLikelihood,
                                NegativeBinomialLikelihood, PoissonLikelihood)
        y = data.draw(hnp.arrays(np.float64, eta.shape[1],
                                 elements=st.floats(min_value=0,
                                                    max_value=5_000)))
        for lik in (GaussianTransformLikelihood(),
                    PoissonLikelihood(),
                    NegativeBinomialLikelihood(dispersion=4.0)):
            batched = lik.loglik_batch(y, eta)
            scalar = np.array([lik.loglik(y, row) for row in eta])
            assert batched.shape == (eta.shape[0],)
            assert np.allclose(batched, scalar, rtol=1e-10, atol=1e-8)

    @settings(max_examples=30)
    @given(count_matrices, st.data())
    def test_batched_bias_matches_scalar(self, counts, data):
        from repro.core import BinomialBiasModel
        rho = data.draw(hnp.arrays(
            np.float64, counts.shape[0],
            elements=st.floats(min_value=0.01, max_value=1.0)))
        seed = data.draw(st.integers(0, 2**32 - 1))
        mean_b = BinomialBiasModel("mean").apply_batch(counts, rho)
        mean_s = np.vstack([BinomialBiasModel("mean").apply(counts[i], rho[i])
                            for i in range(len(rho))])
        assert np.array_equal(mean_b, mean_s)
        r1 = np.random.Generator(np.random.PCG64(seed))
        r2 = np.random.Generator(np.random.PCG64(seed))
        sample_b = BinomialBiasModel("sample").apply_batch(counts, rho, r1)
        sample_s = np.vstack([
            BinomialBiasModel("sample").apply(counts[i], rho[i], r2)
            for i in range(len(rho))])
        assert np.array_equal(sample_b, sample_s)
        assert np.all(sample_b <= np.rint(counts))


class TestAdaptiveSizingInvariants:
    """Adaptive ensemble sizing must not move the posterior.

    Whatever (reasonable) ESS band, clamp bounds, and base seed the policy
    runs with, its per-window 90% credible intervals must overlap the
    fixed-size oracle's on the synthetic ground-truth scenario — resizing
    the cloud changes the Monte Carlo budget, not the target distribution.
    """

    BREAKS = (10, 20, 30)

    @staticmethod
    @functools.lru_cache(maxsize=None)
    def _truth():
        from repro.data import PiecewiseConstant
        from repro.seir import DiseaseParameters
        from repro.sim import make_ground_truth
        params = DiseaseParameters(population=50_000, initial_exposed=100)
        return make_ground_truth(
            params=params, horizon=35, seed=555,
            theta_schedule=PiecewiseConstant.constant(0.30),
            rho_schedule=PiecewiseConstant.constant(0.7))

    @classmethod
    def _calibrate(cls, base_seed, size_policy="fixed", options=None):
        from repro.core import (SequentialCalibrator, SMCConfig,
                                WindowSchedule, paper_first_window_prior,
                                paper_observation_model, paper_window_jitter)
        truth = cls._truth()
        calib = SequentialCalibrator(
            base_params=truth.params,
            prior=paper_first_window_prior(),
            jitter=paper_window_jitter(),
            observation_model=paper_observation_model(),
            schedule=WindowSchedule.from_breaks(list(cls.BREAKS)),
            config=SMCConfig(n_parameter_draws=40, n_replicates=2,
                             resample_size=60, base_seed=base_seed,
                             size_policy=size_policy,
                             size_policy_options=dict(options or {})))
        return calib.run(truth.observations())

    @classmethod
    @functools.lru_cache(maxsize=None)
    def _oracle(cls):
        """The fixed-size reference run, computed once per session."""
        return cls._calibrate(base_seed=17)

    @settings(max_examples=5, deadline=None)
    @given(base_seed=st.sampled_from([17, 99, 4242]),
           target_low=st.sampled_from([0.02, 0.05, 0.1]),
           target_high=st.sampled_from([0.3, 0.5]),
           n_min=st.sampled_from([24, 48]))
    def test_adaptive_ci_overlaps_fixed_oracle(self, base_seed, target_low,
                                               target_high, n_min):
        oracle = self._oracle()
        adaptive = self._calibrate(
            base_seed, size_policy="ess",
            options={"target_low": target_low, "target_high": target_high,
                     "n_min": n_min, "n_max": 240})
        assert len(adaptive) == len(oracle)
        for w, (a, o) in enumerate(zip(adaptive, oracle)):
            assert 24 <= a.diagnostics.n_particles <= 240 or w == 0
            for name in ("theta", "rho"):
                lo_a, hi_a = a.posterior.credible_interval(name, 0.9)
                lo_o, hi_o = o.posterior.credible_interval(name, 0.9)
                assert lo_a <= hi_o and lo_o <= hi_a, (
                    f"window {w} {name}: adaptive [{lo_a:.3f}, {hi_a:.3f}] "
                    f"left the fixed-size oracle's [{lo_o:.3f}, {hi_o:.3f}] "
                    f"(policy band [{target_low}, {target_high}], "
                    f"seed {base_seed})")


class TestTemperedBridgeInvariants:
    """The staged tempered bridge targets the same posterior as one pass.

    On non-degenerate weight vectors (ESS fraction comfortably above the
    calibrator's degeneracy threshold) the tempered resample's 90% interval
    over any particle statistic must overlap the plain-multinomial
    oracle's — the bridge changes the resampling noise, not the target.
    """

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           n=st.integers(60, 300),
           concentration=st.floats(min_value=0.1, max_value=2.0),
           floor=st.sampled_from([0.3, 0.5, 0.7]))
    def test_tempered_ci90_overlaps_plain_multinomial_oracle(
            self, seed, n, concentration, floor):
        from hypothesis import assume
        from repro.core import temper_and_resample
        from repro.core.resampling import multinomial_resample
        from repro.core.weights import ess_fraction, weighted_quantile
        rng = np.random.Generator(np.random.PCG64(seed))
        values = rng.normal(0.0, 1.0, size=n)
        log_lik = -0.5 * concentration * (values - 0.3) ** 2
        w = normalize_log_weights(log_lik)
        assume(ess_fraction(w) >= 0.2)  # a non-degenerate window

        tempered = temper_and_resample(
            log_lik, n, np.random.Generator(np.random.PCG64(seed + 1)),
            ess_floor_fraction=floor)
        plain = multinomial_resample(
            w, n, np.random.Generator(np.random.PCG64(seed + 2)))
        uniform = np.full(n, 1.0 / n)
        lo_t, hi_t = (weighted_quantile(values[tempered.indices], uniform, q)
                      for q in (0.05, 0.95))
        lo_p, hi_p = (weighted_quantile(values[plain], uniform, q)
                      for q in (0.05, 0.95))
        assert lo_t <= hi_p and lo_p <= hi_t, (
            f"tempered CI90 [{lo_t:.3f}, {hi_t:.3f}] left the plain "
            f"oracle's [{lo_p:.3f}, {hi_p:.3f}] (n={n}, "
            f"concentration={concentration:.2f}, floor={floor})")


class TestBiasInvariants:
    @settings(max_examples=25)
    @given(hnp.arrays(np.int64, st.integers(1, 30),
                      elements=st.integers(0, 10_000)),
           st.floats(min_value=0.01, max_value=1.0),
           st.integers(0, 2**32 - 1))
    def test_thinning_bounded(self, counts, rho, seed):
        from repro.core import BinomialBiasModel
        rng = np.random.Generator(np.random.PCG64(seed))
        out = BinomialBiasModel("sample").apply(counts.astype(float), rho, rng)
        assert np.all(out >= 0)
        assert np.all(out <= counts)


class TestScenarioBatchInvariants:
    """Per-scenario posteriors are invariant to sweep composition.

    Whatever subset of scenarios rides in a sweep, and in whatever request
    order, each member's windows must be bit-identical to calibrating that
    scenario alone (``docs/scenarios.md`` oracle b, property-tested over
    the composition space rather than one pinned batch).
    """

    @staticmethod
    @functools.lru_cache(maxsize=None)
    def _pool():
        from repro.core.scenarios import (ScenarioOverride, ScenarioSpec,
                                          get_scenario)
        return {
            "baseline": get_scenario("baseline"),
            "mild16": ScenarioSpec("mild16", overrides=(
                ScenarioOverride("mild_fraction", 0.97, start_day=16),)),
            "milder16": ScenarioSpec("milder16", overrides=(
                ScenarioOverride("mild_fraction", 0.99, start_day=16),)),
            "detect24": ScenarioSpec("detect24", overrides=(
                ScenarioOverride("detected_rel_infectiousness", 0.05,
                                 start_day=24),)),
        }

    @staticmethod
    @functools.lru_cache(maxsize=None)
    def _truth():
        from repro.testing import parity_truth
        return parity_truth()

    @classmethod
    @functools.lru_cache(maxsize=None)
    def _alone(cls, name):
        """Standalone reference run for one scenario (cached per session)."""
        from repro.testing import parity_calibrator
        truth = cls._truth()
        calib = parity_calibrator(truth, scenario=cls._pool()[name])
        return calib.run(truth.observations())

    @settings(max_examples=5, deadline=None)
    @given(data=st.data())
    def test_posterior_invariant_to_batch_composition_and_order(self, data):
        from repro.testing import assert_runs_identical, parity_sweep
        names = sorted(self._pool())
        subset = data.draw(st.lists(st.sampled_from(names), min_size=1,
                                    max_size=len(names), unique=True))
        order = data.draw(st.permutations(subset))
        truth = self._truth()
        sweep = parity_sweep(truth, [self._pool()[n] for n in order])
        results = sweep.run(truth.observations())
        for name in subset:
            assert_runs_identical(
                self._alone(name), results[name],
                f"sweep {list(order)}, scenario {name}")
