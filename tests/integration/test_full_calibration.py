"""Integration tests: the complete paper workflow at small scale.

These exercise the experiments end to end (ground truth -> sequential
calibration -> posterior checks) with town-scale populations and small
ensembles so the whole module runs in tens of seconds.
"""

import numpy as np
import pytest

from repro.core import hpd_region_mass, joint_density_grid
from repro.data import PiecewiseConstant
from repro.hpc import ProcessExecutor
from repro.inference import CalibrationConfig, calibrate, forecast_from_posterior
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth


@pytest.fixture(scope="module")
def town_params():
    return DiseaseParameters(population=60_000, initial_exposed=120)


@pytest.fixture(scope="module")
def varying_truth(town_params):
    """Time-varying theta and rho, horizons at day 20 (like the paper's 34)."""
    return make_ground_truth(
        params=town_params, horizon=30, seed=99,
        theta_schedule=PiecewiseConstant(breakpoints=(20,), values=(0.32, 0.22)),
        rho_schedule=PiecewiseConstant(breakpoints=(20,), values=(0.6, 0.85)))


@pytest.fixture(scope="module")
def cases_only_result(varying_truth, town_params):
    cfg = CalibrationConfig(window_breaks=(10, 20, 30),
                            n_parameter_draws=80, n_replicates=3,
                            resample_size=120, base_seed=41)
    return calibrate(varying_truth.observations(), cfg,
                     base_params=town_params)


@pytest.fixture(scope="module")
def with_deaths_result(varying_truth, town_params):
    cfg = CalibrationConfig(window_breaks=(10, 20, 30),
                            n_parameter_draws=80, n_replicates=3,
                            resample_size=120, base_seed=41)
    return calibrate(varying_truth.observations(include_deaths=True), cfg,
                     base_params=town_params)


class TestSequentialRecovery:
    def test_theta_tracks_decrease(self, cases_only_result):
        """The second-window posterior must move toward the lowered truth."""
        track = cases_only_result.parameter_track("theta")
        assert track.means[1] < track.means[0] + 0.05

    def test_posterior_intervals_finite_width(self, cases_only_result):
        track = cases_only_result.parameter_track("theta")
        widths = track.ci90[:, 1] - track.ci90[:, 0]
        assert np.all(widths >= 0)
        assert np.all(widths < 0.4)  # much tighter than the prior

    def test_ribbon_covers_truth_majority_of_days(self, cases_only_result,
                                                  varying_truth):
        rib = cases_only_result.posterior_ribbon("cases")
        truth_vals = varying_truth.true_cases.values
        coverage = rib.coverage_of(truth_vals, 0.05, 0.95)
        # Cases-only calibration confounds (theta, rho); the strong Beta(4,1)
        # prior pulls rho high, so true-case coverage is imperfect — the
        # paper notes the same (Fig 3 discussion).  Require substantial but
        # not total coverage.
        assert coverage > 0.3

    def test_truth_in_joint_posterior_support(self, cases_only_result,
                                              varying_truth):
        """The (theta, rho) truth square must not sit in the far tail."""
        post = cases_only_result.window(1).posterior
        theta = post.values("theta")
        rho = post.values("rho")
        xe, ye, dens = joint_density_grid(theta, rho, bins=15,
                                          x_range=(0.05, 0.55),
                                          y_range=(0.0, 1.0))
        t_true = varying_truth.theta_true(25)
        i = int(np.clip(np.searchsorted(xe, t_true) - 1, 0, 14))
        r_true = varying_truth.rho_true(25)
        j = int(np.clip(np.searchsorted(ye, r_true) - 1, 0, 14))
        # mass of the HPD region containing the truth cell: < 1 means the
        # truth is not strictly outside the posterior's support
        assert hpd_region_mass(dens, (i, j)) <= 1.0


class TestMultiSourceTightening:
    def test_deaths_do_not_blow_up_uncertainty(self, cases_only_result,
                                               with_deaths_result):
        """Fig 5 claim: adding deaths concentrates the posterior (on
        average across windows the CI should not widen materially)."""
        cases_w = cases_only_result.parameter_track("theta").ci90
        both_w = with_deaths_result.parameter_track("theta").ci90
        mean_width_cases = float(np.mean(cases_w[:, 1] - cases_w[:, 0]))
        mean_width_both = float(np.mean(both_w[:, 1] - both_w[:, 0]))
        assert mean_width_both <= mean_width_cases * 1.5

    def test_death_ribbon_available(self, with_deaths_result):
        rib = with_deaths_result.posterior_ribbon("deaths")
        assert rib.n_days == 30
        assert np.all(rib.band(0.95) >= rib.band(0.05))


class TestForecastContinuity:
    def test_forecast_continues_final_state(self, cases_only_result):
        fc = forecast_from_posterior(cases_only_result.final_posterior,
                                     horizon_days=6, base_seed=5)
        assert fc.start_day == 30
        rib = fc.ribbon("cases")
        assert rib.n_days == 6


class TestParallelEquivalence:
    def test_process_pool_matches_serial(self, varying_truth, town_params):
        """The executor must not change the statistics, only the speed.

        Pinned to the scalar engine: the batched engine simulates in-process
        and bypasses (and warns about) a multi-worker executor.
        """
        cfg = CalibrationConfig(window_breaks=(10, 20),
                                n_parameter_draws=20, n_replicates=2,
                                resample_size=25, base_seed=13,
                                engine="binomial_leap")
        serial = calibrate(varying_truth.observations(), cfg,
                           base_params=town_params)
        with ProcessExecutor(max_workers=2) as ex:
            parallel = calibrate(varying_truth.observations(), cfg,
                                 base_params=town_params, executor=ex)
        assert np.array_equal(
            serial.final_posterior.values("theta"),
            parallel.final_posterior.values("theta"))
        assert np.array_equal(
            serial.final_posterior.values("rho"),
            parallel.final_posterior.values("rho"))


class TestCheckpointConsistency:
    def test_final_histories_contiguous(self, cases_only_result):
        for traj in cases_only_result.final_histories()[:10]:
            assert traj.start_day == 0
            assert traj.end_day == 30
            assert np.all(traj.infections >= 0)
