"""Unit tests for the scheduling-policy simulator."""

import numpy as np
import pytest

from repro.hpc import (compare_policies, simulate_static,
                       simulate_work_stealing)


class TestStaticScheduling:
    def test_uniform_costs_balanced(self):
        res = simulate_static(np.ones(8), 4, "block")
        assert res.makespan == pytest.approx(2.0)
        assert res.imbalance == pytest.approx(1.0)
        assert res.efficiency == pytest.approx(1.0)

    def test_block_suffers_on_gradient(self):
        costs = np.linspace(1, 10, 10)
        res = simulate_static(costs, 2, "block")
        # second block holds the heavy half
        assert res.worker_finish_times[1] > res.worker_finish_times[0]

    def test_cyclic_balances_gradient(self):
        costs = np.linspace(1, 10, 10)
        block = simulate_static(costs, 2, "block")
        cyclic = simulate_static(costs, 2, "cyclic")
        assert cyclic.makespan < block.makespan

    def test_assignment_indices_complete(self):
        res = simulate_static(np.ones(7), 3, "block")
        merged = sorted(i for part in res.assignments for i in part)
        assert merged == list(range(7))

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            simulate_static(np.ones(4), 2, "random")

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_static(np.array([-1.0]), 2)
        with pytest.raises(ValueError):
            simulate_static(np.ones(4), 0)


class TestWorkStealing:
    def test_dynamic_beats_block_on_skew(self):
        rng = np.random.Generator(np.random.PCG64(9))
        costs = rng.lognormal(0, 1.2, size=60)
        block = simulate_static(costs, 4, "block")
        dyn = simulate_work_stealing(costs, 4)
        assert dyn.makespan <= block.makespan

    def test_greedy_two_approximation(self):
        rng = np.random.Generator(np.random.PCG64(10))
        costs = rng.uniform(1, 5, size=50)
        res = simulate_work_stealing(costs, 4)
        lower_bound = max(costs.sum() / 4, costs.max())
        assert res.makespan <= 2 * lower_bound

    def test_chunked_claiming(self):
        res = simulate_work_stealing(np.ones(10), 2, chunk=5)
        assert res.makespan == pytest.approx(5.0)

    def test_all_tasks_assigned_once(self):
        res = simulate_work_stealing(np.ones(13), 3)
        merged = sorted(i for part in res.assignments for i in part)
        assert merged == list(range(13))

    def test_chunk_validated(self):
        with pytest.raises(ValueError):
            simulate_work_stealing(np.ones(4), 2, chunk=0)


class TestComparePolicies:
    def test_all_policies_present(self):
        out = compare_policies(np.ones(12), 3)
        assert set(out) == {"static_block", "static_cyclic", "dynamic"}

    def test_total_work_conserved(self):
        costs = np.linspace(1, 6, 12)
        out = compare_policies(costs, 3)
        for res in out.values():
            assert res.worker_finish_times.sum() == pytest.approx(costs.sum())
