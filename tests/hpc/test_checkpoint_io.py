"""Unit tests for the parallel checkpoint store."""

import pytest

from repro.hpc import CheckpointStore
from repro.seir import CheckpointError, StochasticSEIRModel


@pytest.fixture
def checkpoints(small_params):
    out = []
    for seed in range(3):
        model = StochasticSEIRModel(small_params, seed)
        model.run_until(10)
        out.append(model.checkpoint())
    return out


class TestCheckpointStore:
    def test_save_and_load_particle(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path, run_id="test")
        store.save(0, 0, checkpoints[0])
        loaded = store.load(0, 0)
        assert loaded.day == checkpoints[0].day
        assert loaded.seed == checkpoints[0].seed

    def test_save_window_bulk(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        store.save_window(0, checkpoints)
        assert store.particle_count(0) == 3
        loaded = store.load_window(0)
        assert [c.seed for c in loaded] == [c.seed for c in checkpoints]

    def test_load_missing_particle(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="missing"):
            store.load(0, 0)

    def test_load_missing_window(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="no checkpoints"):
            store.load_window(5)

    def test_particle_count_empty(self, tmp_path):
        assert CheckpointStore(tmp_path).particle_count(2) == 0

    def test_manifest_tracks_windows(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path, run_id="runA")
        store.save_window(0, checkpoints[:2])
        store.save_window(1, checkpoints)
        manifest = store.read_manifest()
        assert manifest.run_id == "runA"
        assert manifest.windows == {0: 2, 1: 3}
        assert manifest.latest_window() == 1

    def test_manifest_empty(self, tmp_path):
        manifest = CheckpointStore(tmp_path).read_manifest()
        assert manifest.windows == {}
        assert manifest.latest_window() is None

    def test_latest_restart_point(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        assert store.latest_restart_point() is None
        store.save_window(0, checkpoints)
        store.save_window(1, checkpoints[:1])
        window, cps = store.latest_restart_point()
        assert window == 1
        assert len(cps) == 1

    def test_restart_from_stored_checkpoint_runs(self, tmp_path, checkpoints,
                                                 small_params):
        store = CheckpointStore(tmp_path)
        store.save(0, 0, checkpoints[0])
        loaded = store.load(0, 0)
        model = StochasticSEIRModel.from_checkpoint(loaded)
        traj = model.run_until(15)
        assert traj.start_day == 10

    def test_negative_indices_rejected(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError):
            store.save(-1, 0, checkpoints[0])
        with pytest.raises(ValueError):
            store.save(0, -1, checkpoints[0])
