"""Unit tests for the parallel checkpoint store."""

import pytest

from repro.hpc import CheckpointStore
from repro.seir import CheckpointError, StochasticSEIRModel


@pytest.fixture
def checkpoints(small_params):
    out = []
    for seed in range(3):
        model = StochasticSEIRModel(small_params, seed)
        model.run_until(10)
        out.append(model.checkpoint())
    return out


class TestCheckpointStore:
    def test_save_and_load_particle(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path, run_id="test")
        store.save(0, 0, checkpoints[0])
        loaded = store.load(0, 0)
        assert loaded.day == checkpoints[0].day
        assert loaded.seed == checkpoints[0].seed

    def test_save_window_bulk(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        store.save_window(0, checkpoints)
        assert store.particle_count(0) == 3
        loaded = store.load_window(0)
        assert [c.seed for c in loaded] == [c.seed for c in checkpoints]

    def test_load_missing_particle(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="missing"):
            store.load(0, 0)

    def test_load_missing_window(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="no checkpoints"):
            store.load_window(5)

    def test_particle_count_empty(self, tmp_path):
        assert CheckpointStore(tmp_path).particle_count(2) == 0

    def test_manifest_tracks_windows(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path, run_id="runA")
        store.save_window(0, checkpoints[:2])
        store.save_window(1, checkpoints)
        manifest = store.read_manifest()
        assert manifest.run_id == "runA"
        assert manifest.windows == {0: 2, 1: 3}
        assert manifest.latest_window() == 1

    def test_manifest_empty(self, tmp_path):
        manifest = CheckpointStore(tmp_path).read_manifest()
        assert manifest.windows == {}
        assert manifest.latest_window() is None

    def test_latest_restart_point(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        assert store.latest_restart_point() is None
        store.save_window(0, checkpoints)
        store.save_window(1, checkpoints[:1])
        window, cps = store.latest_restart_point()
        assert window == 1
        assert len(cps) == 1

    def test_restart_from_stored_checkpoint_runs(self, tmp_path, checkpoints,
                                                 small_params):
        store = CheckpointStore(tmp_path)
        store.save(0, 0, checkpoints[0])
        loaded = store.load(0, 0)
        model = StochasticSEIRModel.from_checkpoint(loaded)
        traj = model.run_until(15)
        assert traj.start_day == 10

    def test_negative_indices_rejected(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError):
            store.save(-1, 0, checkpoints[0])
        with pytest.raises(ValueError):
            store.save(0, -1, checkpoints[0])


class TestDurability:
    """Atomic, fsync'd publication of checkpoints and store metadata."""

    def test_save_leaves_no_temp_files(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        store.save_window(0, checkpoints)
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    def test_torn_write_never_observed(self, tmp_path, checkpoints):
        """Overwriting an existing checkpoint is all-or-nothing: a reader
        racing the writer sees the old payload or the new one, never a
        truncated file."""
        store = CheckpointStore(tmp_path)
        path = store.save(0, 0, checkpoints[0])
        before = store.load(0, 0)
        store.save(0, 0, checkpoints[1])
        after = store.load(0, 0)
        assert before.seed == checkpoints[0].seed
        assert after.seed == checkpoints[1].seed
        # A torn file on disk fails loudly instead of parsing partially.
        payload = path.read_text()
        path.write_text(payload[: len(payload) // 2])
        with pytest.raises(CheckpointError, match="not valid JSON"):
            store.load(0, 0)


class TestWindowCompleteness:
    """Completion markers separate torn windows from resumable ones."""

    def test_unmarked_window_is_incomplete(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        store.save(0, 0, checkpoints[0])  # particles, but no marker
        assert not store.window_complete(0)
        assert store.expected_count(0) is None

    def test_marker_with_missing_particles_is_incomplete(self, tmp_path,
                                                         checkpoints):
        store = CheckpointStore(tmp_path)
        store.save_window(0, checkpoints)
        (store.root / "window_000" / "particle_000001.ckpt.json").unlink()
        assert not store.window_complete(0)

    def test_restart_point_skips_torn_window(self, tmp_path, checkpoints):
        """Regression: a crash mid-window used to be offered as a restart
        point; now only the previous *complete* window is."""
        store = CheckpointStore(tmp_path)
        store.save_window(0, checkpoints)
        store.save(1, 0, checkpoints[0])  # window 1 torn: no marker
        window, cps = store.latest_restart_point()
        assert window == 0
        assert len(cps) == 3

    def test_restart_point_none_when_all_torn(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        store.save(0, 0, checkpoints[0])
        assert store.latest_restart_point() is None

    def test_load_window_state_refuses_torn_window(self, tmp_path,
                                                   checkpoints):
        store = CheckpointStore(tmp_path)
        store.save(0, 0, checkpoints[0])
        with pytest.raises(CheckpointError, match="torn"):
            store.load_window_state(0)

    def test_save_window_state_round_trip(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        meta = {"window_index": 0, "params": [[0.3, 0.7]]}
        store.save_window_state(0, checkpoints, meta=meta)
        cps, loaded_meta = store.load_window_state(0)
        assert [c.seed for c in cps] == [c.seed for c in checkpoints]
        assert loaded_meta == meta

    def test_empty_window_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError, match="empty window"):
            store.save_window(0, [])

    def test_corrupt_marker_treated_as_absent(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        store.save_window(0, checkpoints)
        (store.root / "window_000" / "COMPLETE.json").write_text("{trunc")
        assert not store.window_complete(0)
        assert store.latest_restart_point() is None

    def test_manifest_records_completeness(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        store.save_window(0, checkpoints)
        store.save(1, 0, checkpoints[0])
        manifest = store.write_manifest()
        assert manifest.complete == {0: True, 1: False}
        assert manifest.latest_complete_window() == 0
        assert store.read_manifest().complete == {0: True, 1: False}


class TestRunMeta:
    """The store is bound to one run configuration fingerprint."""

    def test_first_validate_records(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.read_run_meta() is None
        store.validate_run_meta({"base_seed": 17, "engine": "x"})
        assert store.read_run_meta() == {"base_seed": 17, "engine": "x"}

    def test_matching_fingerprint_accepted(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.validate_run_meta({"base_seed": 17})
        store.validate_run_meta({"base_seed": 17})  # no raise

    def test_mismatch_refused_with_differing_keys(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.validate_run_meta({"base_seed": 17, "engine": "a"})
        with pytest.raises(CheckpointError,
                           match=r"different run configuration.*base_seed"):
            store.validate_run_meta({"base_seed": 18, "engine": "a"})


class TestPrune:
    def seal(self, store, index, checkpoints):
        store.save_window(index, checkpoints)

    def test_prune_keeps_newest_sealed(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        for w in range(4):
            self.seal(store, w, checkpoints)
        assert store.prune(keep_last=2) == [0, 1]
        assert store.stored_windows() == [2, 3]
        assert store.window_complete(2) and store.window_complete(3)
        manifest = store.read_manifest()
        assert sorted(manifest.windows) == [2, 3]

    def test_prune_never_deletes_unsealed(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        self.seal(store, 0, checkpoints)
        self.seal(store, 1, checkpoints)
        # Window 2 is torn: particles on disk but no completion marker.
        store.save(2, 0, checkpoints[0])
        assert store.prune(keep_last=1) == [0]
        assert store.stored_windows() == [1, 2]
        assert store.window_complete(1)
        assert not store.window_complete(2)

    def test_prune_never_deletes_latest_sealed(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        self.seal(store, 0, checkpoints)
        assert store.prune(keep_last=1) == []
        assert store.window_complete(0)

    def test_prune_noop_below_threshold(self, tmp_path, checkpoints):
        store = CheckpointStore(tmp_path)
        self.seal(store, 0, checkpoints)
        self.seal(store, 1, checkpoints)
        assert store.prune(keep_last=5) == []
        assert store.stored_windows() == [0, 1]

    def test_prune_rejects_bad_keep_last(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError, match="keep_last"):
            store.prune(keep_last=0)
