"""Unit tests for the fault-tolerance layer (repro/hpc/faults.py).

Covers the retry policy, deterministic fault plans, the chaos-injection
executor wrapper, failure-isolating ``map_each`` semantics, and retried
shard dispatch — including the acceptance property that a retried run is
bit-identical to a fault-free one.
"""

import numpy as np
import pytest

from repro.hpc import (ChaosExecutor, ChaosInjectedError, CorruptedResult,
                       Fault, FaultPlan, RetryPolicy, SerialExecutor,
                       ShardRetryError, ShardTask, TaskOutcome, ThreadExecutor,
                       dispatch_shards)
from repro.hpc.executor import (CAUSE_DROPPED, CAUSE_EXCEPTION, CAUSE_TIMEOUT)
from repro.hpc.faults import CAUSE_CORRUPT, FAULT_KINDS
from repro.hpc.sharding import _result_defect, run_shard
from repro.seir import DiseaseParameters


def double(x):
    return x * 2


def sleepy(x):
    import time
    time.sleep(0.5)
    return x


def make_tasks(n_shards=3, members=4, end_day=6):
    """Small fresh-start shard tasks (millisecond simulations)."""
    params = DiseaseParameters(population=5_000, initial_exposed=20)
    tasks = []
    for s in range(n_shards):
        seeds = np.arange(100 * s, 100 * s + members, dtype=np.int64)
        tasks.append(ShardTask(
            shard_id=s, params=params, seeds=seeds,
            thetas=np.full(members, 0.3), end_day=end_day,
            engine="binomial_leap_batched",
            engine_options={"steps_per_day": 2}, start_day=0))
    return tasks


def assert_shard_results_identical(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.shard_id == rb.shard_id
        assert np.array_equal(ra.batch.infections, rb.batch.infections)
        assert np.array_equal(ra.state.counts, rb.state.counts)
        assert np.array_equal(ra.state.seeds, rb.state.seeds)


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.timeout_seconds is None
        assert policy.fallback_serial

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="timeout_seconds"):
            RetryPolicy(timeout_seconds=0.0)
        with pytest.raises(ValueError, match="backoff_seconds"):
            RetryPolicy(backoff_seconds=-1.0)

    def test_linear_deterministic_backoff(self):
        policy = RetryPolicy(backoff_seconds=0.5)
        assert policy.backoff_for(1) == 0.0
        assert policy.backoff_for(2) == 0.5
        assert policy.backoff_for(3) == 1.0


class TestFaultPlan:
    def test_fault_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(kind="meteor", shard=0)
        with pytest.raises(ValueError, match="attempt"):
            Fault(kind="crash", shard=0, attempt=0)
        with pytest.raises(ValueError, match="delay_seconds"):
            Fault(kind="delay", shard=0, delay_seconds=-1.0)

    def test_scripted_lookup(self):
        plan = FaultPlan.scripted(Fault(kind="crash", shard=1, attempt=2))
        assert plan.fault_for(1, 2).kind == "crash"
        assert plan.fault_for(1, 1) is None
        assert plan.fault_for(0, 2) is None

    def test_seeded_reproducible(self):
        kwargs = dict(n_shards=40, rates={"crash": 0.2, "drop": 0.1},
                      max_attempts=2)
        a = FaultPlan.seeded(99, **kwargs)
        b = FaultPlan.seeded(99, **kwargs)
        assert a == b
        assert len(a.faults) > 0
        c = FaultPlan.seeded(100, **kwargs)
        assert a != c

    def test_seeded_draws_stay_in_bounds(self):
        plan = FaultPlan.seeded(7, n_shards=10,
                                rates={"crash": 0.3, "corrupt": 0.3},
                                max_attempts=3)
        for fault in plan.faults:
            assert 0 <= fault.shard < 10
            assert 1 <= fault.attempt <= 3
            assert fault.kind in ("crash", "corrupt")

    def test_seeded_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            FaultPlan.seeded(1, n_shards=0, rates={})
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultPlan.seeded(1, n_shards=2, rates={"gremlin": 0.5})
        with pytest.raises(ValueError, match="sum"):
            FaultPlan.seeded(1, n_shards=2, rates={"crash": 0.8, "drop": 0.6})

    def test_all_kinds_registered(self):
        assert set(FAULT_KINDS) == {"crash", "hard_exit", "timeout", "delay",
                                    "drop", "duplicate", "corrupt"}


class TestChaosExecutorMap:
    def test_crash_propagates_on_strict_path(self):
        chaos = ChaosExecutor(SerialExecutor(),
                              FaultPlan.scripted(Fault(kind="crash", shard=1)))
        with pytest.raises(ChaosInjectedError):
            chaos.map(double, [10, 11, 12])

    def test_drop_removes_result(self):
        chaos = ChaosExecutor(SerialExecutor(),
                              FaultPlan.scripted(Fault(kind="drop", shard=1)))
        assert chaos.map(double, [10, 11, 12]) == [20, 24]

    def test_duplicate_returns_result_twice(self):
        chaos = ChaosExecutor(
            SerialExecutor(),
            FaultPlan.scripted(Fault(kind="duplicate", shard=0)))
        assert chaos.map(double, [10, 11]) == [20, 20, 22]

    def test_corrupt_wraps_result(self):
        chaos = ChaosExecutor(
            SerialExecutor(),
            FaultPlan.scripted(Fault(kind="corrupt", shard=0)))
        out = chaos.map(double, [10, 11])
        assert out == [CorruptedResult(original=20), 22]

    def test_delay_still_succeeds(self):
        chaos = ChaosExecutor(
            SerialExecutor(),
            FaultPlan.scripted(Fault(kind="delay", shard=0,
                                     delay_seconds=0.01)))
        assert chaos.map(double, [5]) == [10]

    def test_attempt_counting_and_reset(self):
        plan = FaultPlan.scripted(Fault(kind="drop", shard=0, attempt=1))
        chaos = ChaosExecutor(SerialExecutor(), plan)
        assert chaos.map(double, [1]) == []          # attempt 1: injected
        assert chaos.map(double, [1]) == [2]         # attempt 2: clean
        assert [f.kind for f in chaos.injected] == ["drop"]
        chaos.reset()
        assert chaos.map(double, [1]) == []          # counts forgotten
        assert chaos.workers == 1


class TestChaosExecutorMapEach:
    def test_fault_kinds_surface_as_outcomes(self):
        plan = FaultPlan.scripted(Fault(kind="timeout", shard=0),
                                  Fault(kind="drop", shard=1),
                                  Fault(kind="crash", shard=2),
                                  Fault(kind="corrupt", shard=3),
                                  Fault(kind="duplicate", shard=4))
        chaos = ChaosExecutor(SerialExecutor(), plan)
        out = chaos.map_each(double, [0, 1, 2, 3, 4, 5])
        assert [o.cause for o in out] == [
            CAUSE_TIMEOUT, CAUSE_DROPPED, CAUSE_EXCEPTION, None, None, None]
        assert out[3].value == CorruptedResult(original=6)
        assert out[4].value == 8                      # duplicate: one outcome
        assert out[5].value == 10
        assert len(chaos.injected) == 5

    def test_tasks_keyed_by_shard_id_attribute(self):
        tasks = make_tasks(n_shards=2, members=2, end_day=3)
        plan = FaultPlan.scripted(Fault(kind="drop", shard=1))
        chaos = ChaosExecutor(SerialExecutor(), plan)
        out = chaos.map_each(run_shard, tasks)
        assert out[0].ok and out[0].value.shard_id == 0
        assert out[1].cause == CAUSE_DROPPED


class TestMapEachSemantics:
    def test_serial_isolates_exceptions(self):
        def boom(x):
            if x == 2:
                raise RuntimeError("boom")
            return x

        out = SerialExecutor().map_each(boom, [1, 2, 3])
        assert [o.ok for o in out] == [True, False, True]
        assert out[1].cause == CAUSE_EXCEPTION
        assert "boom" in out[1].error
        assert [o.value for o in out] == [1, None, 3]

    def test_thread_timeout_surfaces(self):
        with ThreadExecutor(max_workers=1) as ex:
            out = ex.map_each(sleepy, [1], timeout=0.05)
        assert out[0].cause == CAUSE_TIMEOUT

    def test_outcome_ok_property(self):
        assert TaskOutcome(value=3).ok
        assert not TaskOutcome(cause=CAUSE_TIMEOUT).ok


class TestResultValidation:
    def test_result_defects_detected(self):
        tasks = make_tasks(n_shards=2, members=3, end_day=3)
        good = run_shard(tasks[0])
        assert _result_defect(tasks[0], good) is None
        assert "not ShardResult" in _result_defect(tasks[0], CorruptedResult())
        assert "echoed shard id" in _result_defect(tasks[1], good)


class TestRetriedDispatch:
    def test_retry_is_bit_identical_to_fault_free(self):
        tasks = make_tasks()
        clean = dispatch_shards(SerialExecutor(), tasks)
        plan = FaultPlan.scripted(
            Fault(kind="crash", shard=0, attempt=1),
            Fault(kind="drop", shard=1, attempt=1),
            Fault(kind="corrupt", shard=2, attempt=1))
        chaos = ChaosExecutor(SerialExecutor(), plan)
        failures = []
        retried = dispatch_shards(chaos, tasks,
                                  retry=RetryPolicy(max_attempts=4,
                                                    fallback_serial=False),
                                  on_failure=failures.append)
        assert_shard_results_identical(clean, retried)
        causes = {(f.shard_id, f.attempt): f.cause for f in failures}
        assert causes == {(0, 1): CAUSE_EXCEPTION, (1, 1): CAUSE_DROPPED,
                          (2, 1): CAUSE_CORRUPT}

    def test_serial_fallback_rescues_final_attempt(self):
        """The last attempt runs in-process, bypassing even a fault plan
        scripted to kill every pooled attempt."""
        tasks = make_tasks(n_shards=2)
        clean = dispatch_shards(SerialExecutor(), tasks)
        plan = FaultPlan.scripted(Fault(kind="crash", shard=0, attempt=1),
                                  Fault(kind="crash", shard=0, attempt=2))
        chaos = ChaosExecutor(SerialExecutor(), plan)
        retried = dispatch_shards(chaos, tasks,
                                  retry=RetryPolicy(max_attempts=2))
        assert_shard_results_identical(clean, retried)

    def test_exhaustion_raises_with_history(self):
        tasks = make_tasks(n_shards=2)
        plan = FaultPlan.scripted(Fault(kind="drop", shard=1, attempt=1),
                                  Fault(kind="drop", shard=1, attempt=2))
        chaos = ChaosExecutor(SerialExecutor(), plan)
        with pytest.raises(ShardRetryError, match=r"shards \[1\]") as info:
            dispatch_shards(chaos, tasks,
                            retry=RetryPolicy(max_attempts=2,
                                              fallback_serial=False))
        failures = info.value.failures
        assert [(f.shard_id, f.attempt, f.cause) for f in failures] == \
            [(1, 1, CAUSE_DROPPED), (1, 2, CAUSE_DROPPED)]

    def test_single_attempt_policy_fails_fast_but_structured(self):
        tasks = make_tasks(n_shards=2)
        plan = FaultPlan.scripted(Fault(kind="crash", shard=0))
        chaos = ChaosExecutor(SerialExecutor(), plan)
        with pytest.raises(ShardRetryError):
            dispatch_shards(chaos, tasks, retry=RetryPolicy(max_attempts=1))

    def test_no_retry_policy_keeps_legacy_strict_path(self):
        tasks = make_tasks(n_shards=2)
        plan = FaultPlan.scripted(Fault(kind="crash", shard=0))
        chaos = ChaosExecutor(SerialExecutor(), plan)
        with pytest.raises(ChaosInjectedError):
            dispatch_shards(chaos, tasks)
