"""Unit tests for the MPI-like SPMD communicator.

SPMD functions must be module-level so they can be pickled/forked to
worker processes.
"""

import numpy as np
import pytest

from repro.hpc import SpmdError, run_spmd
from repro.hpc.partition import block_partition


def spmd_identity(comm):
    return (comm.rank, comm.size)


def spmd_bcast(comm):
    payload = {"msg": "hello"} if comm.rank == 0 else None
    return comm.bcast(payload, root=0)


def spmd_scatter_gather(comm):
    chunks = [[i, i * 10] for i in range(comm.size)] if comm.rank == 0 else None
    mine = comm.scatter(chunks, root=0)
    return comm.gather(sum(mine), root=0)


def spmd_allgather(comm):
    return comm.allgather(comm.rank * 2)


def spmd_allreduce(comm):
    return (comm.allreduce(comm.rank + 1, op="sum"),
            comm.allreduce(comm.rank, op="max"),
            comm.allreduce(float(-comm.rank - 1), op="logsumexp"))


def spmd_barrier_then_value(comm):
    comm.barrier()
    return comm.rank


def spmd_weight_normalisation(comm):
    """The distributed weight-normalisation pattern of the SMC driver."""
    all_weights = np.array([-1.0, -2.0, -3.0, -4.0])
    chunks = block_partition(4, comm.size) if comm.rank == 0 else None
    mine = comm.scatter(chunks, root=0)
    local = float(np.logaddexp.reduce(all_weights[mine])) if len(mine) else float("-inf")
    total = comm.allreduce(local, op="logsumexp")
    return total


def spmd_raises(comm):
    if comm.rank == 1:
        raise ValueError("rank 1 exploded")
    return comm.rank


class TestRunSpmd:
    def test_ranks_and_size(self):
        out = run_spmd(spmd_identity, 3)
        assert out == [(0, 3), (1, 3), (2, 3)]

    def test_single_rank(self):
        assert run_spmd(spmd_identity, 1) == [(0, 1)]

    def test_size_validated(self):
        with pytest.raises(ValueError):
            run_spmd(spmd_identity, 0)

    def test_bcast(self):
        out = run_spmd(spmd_bcast, 2)
        assert out == [{"msg": "hello"}, {"msg": "hello"}]

    def test_scatter_gather(self):
        out = run_spmd(spmd_scatter_gather, 2)
        assert out[0] == [0 + 0, 1 + 10]
        assert out[1] is None

    def test_allgather(self):
        out = run_spmd(spmd_allgather, 3)
        assert out == [[0, 2, 4]] * 3

    def test_allreduce_ops(self):
        out = run_spmd(spmd_allreduce, 3)
        total, biggest, lse = out[0]
        assert total == 6
        assert biggest == 2
        assert lse == pytest.approx(
            float(np.logaddexp.reduce([-1.0, -2.0, -3.0])))
        assert all(o == out[0] for o in out)

    def test_barrier(self):
        assert run_spmd(spmd_barrier_then_value, 2) == [0, 1]

    def test_distributed_weight_normalisation(self):
        out = run_spmd(spmd_weight_normalisation, 2)
        expected = float(np.logaddexp.reduce([-1.0, -2.0, -3.0, -4.0]))
        assert out[0] == pytest.approx(expected)
        assert out[1] == pytest.approx(expected)

    def test_rank_exception_raises_spmderror(self):
        with pytest.raises(SpmdError, match="rank 1 exploded"):
            run_spmd(spmd_raises, 2)
