"""Unit tests for tree reductions."""

import math

import numpy as np
import pytest

from repro.hpc import (allreduce_sum, logsumexp_pair, merge_logsumexp,
                       merge_weighted_mean, tree_reduce)


class TestTreeReduce:
    def test_matches_fold_for_associative_op(self):
        items = list(range(1, 20))
        assert tree_reduce(items, lambda a, b: a + b) == sum(items)

    def test_single_item(self):
        assert tree_reduce([42], lambda a, b: a + b) == 42

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tree_reduce([], lambda a, b: a + b)

    def test_odd_lengths(self):
        for n in (2, 3, 5, 7, 9):
            assert tree_reduce(list(range(n)), lambda a, b: a + b) == sum(range(n))


class TestLogSumExpMerge:
    def test_pair_matches_numpy(self):
        a, b = -3.0, -1.5
        assert logsumexp_pair(a, b) == pytest.approx(
            np.log(np.exp(a) + np.exp(b)))

    def test_neg_inf_identity(self):
        assert logsumexp_pair(-math.inf, -2.0) == -2.0
        assert logsumexp_pair(-2.0, -math.inf) == -2.0
        assert logsumexp_pair(-math.inf, -math.inf) == -math.inf

    def test_merge_matches_global(self):
        rng = np.random.Generator(np.random.PCG64(1))
        values = rng.normal(-100, 10, size=23)
        # split into 4 rank-partials then merge
        partials = [float(np.logaddexp.reduce(chunk))
                    for chunk in np.array_split(values, 4)]
        merged = merge_logsumexp(partials)
        assert merged == pytest.approx(float(np.logaddexp.reduce(values)))

    def test_association_order_irrelevant(self):
        values = [-5.0, -3.0, -10.0, -1.0, -7.0]
        left = merge_logsumexp(values)
        right = merge_logsumexp(list(reversed(values)))
        assert left == pytest.approx(right)


class TestWeightedMeanMerge:
    def test_matches_global_mean(self):
        rng = np.random.Generator(np.random.PCG64(2))
        v = rng.normal(size=40)
        w = rng.uniform(0.1, 1.0, size=40)
        partials = []
        for vi, wi in zip(np.array_split(v, 5), np.array_split(w, 5)):
            partials.append((float(wi.sum()),
                             float((vi * wi).sum() / wi.sum())))
        total, mean = merge_weighted_mean(partials)
        assert total == pytest.approx(w.sum())
        assert mean == pytest.approx(float((v * w).sum() / w.sum()))

    def test_zero_weight_partials(self):
        total, mean = merge_weighted_mean([(0.0, 0.0), (2.0, 5.0)])
        assert total == 2.0
        assert mean == 5.0


class TestAllreduceSum:
    def test_sums_arrays(self):
        arrays = [np.full(4, float(i)) for i in range(5)]
        out = allreduce_sum(arrays)
        assert np.allclose(out, 10.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            allreduce_sum([np.zeros(3), np.zeros(4)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            allreduce_sum([])
