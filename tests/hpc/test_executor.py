"""Unit tests for execution backends."""

import os

import pytest

from repro.hpc import (ProcessExecutor, SerialExecutor, ThreadExecutor,
                       default_executor, make_executor)
from repro.hpc.executor import (CAUSE_EXCEPTION, CAUSE_POOL_BROKEN,
                                _auto_chunksize)


def square(x):
    return x * x


def fail_on_three(x):
    if x == 3:
        raise RuntimeError("boom")
    return x


def die_on_three(x):
    """Kill the worker process outright (simulates OOM-kill / preemption)."""
    if x == 3:
        os._exit(1)
    return x


class TestSerialExecutor:
    def test_map_order(self):
        ex = SerialExecutor()
        assert ex.map(square, range(5)) == [0, 1, 4, 9, 16]
        assert ex.workers == 1

    def test_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            SerialExecutor().map(fail_on_three, [1, 2, 3])

    def test_empty(self):
        assert SerialExecutor().map(square, []) == []

    def test_context_manager(self):
        with SerialExecutor() as ex:
            assert ex.map(square, [2]) == [4]


class TestProcessExecutor:
    def test_map_order_preserved(self):
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.map(square, range(20)) == [x * x for x in range(20)]

    def test_exception_propagates(self):
        with ProcessExecutor(max_workers=2) as ex:
            with pytest.raises(RuntimeError, match="boom"):
                ex.map(fail_on_three, [1, 2, 3, 4])

    def test_pool_reused_across_maps(self):
        with ProcessExecutor(max_workers=2) as ex:
            ex.map(square, [1])
            pool_a = ex._pool
            ex.map(square, [2])
            assert ex._pool is pool_a

    def test_close_idempotent(self):
        ex = ProcessExecutor(max_workers=1)
        ex.map(square, [1])
        ex.close()
        ex.close()

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=0)

    def test_empty(self):
        with ProcessExecutor(max_workers=1) as ex:
            assert ex.map(square, []) == []


class TestProcessExecutorFaults:
    """Failure semantics: broken pools must be discarded, not cached."""

    def test_broken_pool_rebuilt_on_next_map(self):
        """Regression: a BrokenProcessPool used to stay cached in _pool,
        poisoning every later map on the same executor."""
        with ProcessExecutor(max_workers=1) as ex:
            from concurrent.futures.process import BrokenProcessPool
            with pytest.raises(BrokenProcessPool):
                ex.map(die_on_three, [1, 2, 3, 4])
            assert ex._pool is None
            assert ex.map(square, [5, 6]) == [25, 36]

    def test_map_each_isolates_worker_exception(self):
        with ProcessExecutor(max_workers=1) as ex:
            out = ex.map_each(fail_on_three, [1, 2, 3, 4])
        assert [o.ok for o in out] == [True, True, False, True]
        assert out[2].cause == CAUSE_EXCEPTION
        assert "boom" in out[2].error
        assert [o.value for o in out] == [1, 2, None, 4]

    def test_map_each_surfaces_pool_loss_and_recovers(self):
        with ProcessExecutor(max_workers=1) as ex:
            out = ex.map_each(die_on_three, [1, 2, 3, 4])
            assert any(o.cause == CAUSE_POOL_BROKEN for o in out)
            assert ex._pool is None
            # The executor stays usable: the pool is lazily rebuilt.
            again = ex.map_each(square, [3])
        assert again[0].ok and again[0].value == 9


class TestThreadExecutor:
    def test_map(self):
        with ThreadExecutor(max_workers=2) as ex:
            assert ex.map(square, range(6)) == [x * x for x in range(6)]
            assert ex.workers == 2

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ThreadExecutor(max_workers=-1)


class TestFactories:
    def test_make_executor(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("process", max_workers=1),
                          ProcessExecutor)
        assert isinstance(make_executor("thread", max_workers=1),
                          ThreadExecutor)

    def test_make_executor_unknown(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("gpu")

    def test_default_small_workload_serial(self):
        assert isinstance(default_executor(n_tasks_hint=4), SerialExecutor)

    def test_default_large_workload_parallel_when_multicore(self):
        ex = default_executor(n_tasks_hint=10_000)
        if (os.cpu_count() or 1) > 1:
            assert isinstance(ex, ProcessExecutor)
        ex.close()

    def test_auto_chunksize(self):
        assert _auto_chunksize(1000, 2) == 125
        assert _auto_chunksize(3, 8) == 1
