"""Unit tests for partitioning utilities."""

import numpy as np
import pytest

from repro.hpc import (block_partition, chunk_sizes, cyclic_partition,
                       lpt_partition, partition_bounds)


class TestChunkSizes:
    def test_even_split(self):
        assert chunk_sizes(10, 5) == [2, 2, 2, 2, 2]

    def test_remainder_goes_first(self):
        assert chunk_sizes(11, 4) == [3, 3, 3, 2]

    def test_more_parts_than_items(self):
        assert chunk_sizes(2, 5) == [1, 1, 0, 0, 0]

    def test_zero_items(self):
        assert chunk_sizes(0, 3) == [0, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_sizes(-1, 2)
        with pytest.raises(ValueError):
            chunk_sizes(5, 0)


def assert_partition_complete(parts, n):
    """Every index appears exactly once across parts."""
    merged = np.concatenate([p for p in parts]) if parts else np.array([])
    assert sorted(merged.tolist()) == list(range(n))


class TestBlockPartition:
    def test_complete_and_disjoint(self):
        assert_partition_complete(block_partition(17, 4), 17)

    def test_blocks_contiguous(self):
        for p in block_partition(12, 3):
            if len(p) > 1:
                assert np.all(np.diff(p) == 1)

    def test_bounds_consistent(self):
        bounds = partition_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]


class TestCyclicPartition:
    def test_complete_and_disjoint(self):
        assert_partition_complete(cyclic_partition(17, 4), 17)

    def test_round_robin_stride(self):
        parts = cyclic_partition(10, 3)
        assert list(parts[0]) == [0, 3, 6, 9]
        assert list(parts[1]) == [1, 4, 7]

    def test_single_part(self):
        parts = cyclic_partition(5, 1)
        assert list(parts[0]) == [0, 1, 2, 3, 4]


class TestLptPartition:
    def test_complete_and_disjoint(self):
        costs = np.arange(1.0, 14.0)
        assert_partition_complete(lpt_partition(costs, 4), 13)

    def test_balances_skewed_costs(self):
        """LPT must beat block partitioning on a sorted cost gradient."""
        costs = np.linspace(1, 20, 16)
        lpt_loads = [costs[p].sum() for p in lpt_partition(costs, 4)]
        block_loads = [costs[p].sum() for p in block_partition(16, 4)]
        assert max(lpt_loads) < max(block_loads)

    def test_lpt_within_4_3_of_ideal(self):
        rng = np.random.Generator(np.random.PCG64(5))
        costs = rng.uniform(1, 10, size=40)
        loads = [costs[p].sum() for p in lpt_partition(costs, 4)]
        ideal = costs.sum() / 4
        assert max(loads) <= (4 / 3) * ideal + costs.max() / 4 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            lpt_partition(np.array([[1.0]]), 2)
        with pytest.raises(ValueError):
            lpt_partition(np.array([-1.0]), 2)


class TestShardBounds:
    def test_default_single_shard(self):
        from repro.hpc import shard_bounds
        assert shard_bounds(10) == [(0, 10)]

    def test_n_shards_even_chunking(self):
        from repro.hpc import shard_bounds
        assert shard_bounds(10, n_shards=4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_no_empty_shards_when_overpartitioned(self):
        """n_particles < n_shards clamps the part count: no empty shards."""
        from repro.hpc import shard_bounds
        bounds = shard_bounds(3, n_shards=8)
        assert bounds == [(0, 1), (1, 2), (2, 3)]
        assert all(hi > lo for lo, hi in bounds)

    def test_shard_size_caps_every_shard(self):
        from repro.hpc import shard_bounds
        for n in (1, 5, 11, 12, 13, 100):
            bounds = shard_bounds(n, shard_size=4)
            sizes = [hi - lo for lo, hi in bounds]
            assert all(1 <= s <= 4 for s in sizes)
            assert sum(sizes) == n
            assert max(sizes) - min(sizes) <= 1

    def test_bounds_cover_contiguously(self):
        from repro.hpc import shard_bounds
        bounds = shard_bounds(17, n_shards=5)
        assert bounds[0][0] == 0 and bounds[-1][1] == 17
        assert all(a[1] == b[0] for a, b in zip(bounds, bounds[1:]))

    def test_zero_items_no_shards(self):
        from repro.hpc import shard_bounds
        assert shard_bounds(0, n_shards=3) == []

    def test_validation(self):
        from repro.hpc import shard_bounds
        with pytest.raises(ValueError):
            shard_bounds(5, shard_size=2, n_shards=2)
        with pytest.raises(ValueError):
            shard_bounds(5, shard_size=0)
        with pytest.raises(ValueError):
            shard_bounds(5, n_shards=0)
        with pytest.raises(ValueError):
            shard_bounds(-1)
