"""Unit tests for the baseline calibration methods."""

import numpy as np
import pytest

from repro.baselines import (abc_rejection, grid_posterior,
                             random_walk_metropolis,
                             single_shot_importance_sampling,
                             sqrt_count_distance)
from repro.core import paper_first_window_prior, paper_observation_model
from repro.data import PiecewiseConstant
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth


@pytest.fixture(scope="module")
def truth():
    params = DiseaseParameters(population=30_000, initial_exposed=60)
    return make_ground_truth(
        params=params, horizon=24, seed=31,
        theta_schedule=PiecewiseConstant.constant(0.3),
        rho_schedule=PiecewiseConstant.constant(0.7))


class TestSingleShot:
    def test_runs_and_summarises(self, truth):
        res = single_shot_importance_sampling(
            truth.observations(), truth.params, paper_first_window_prior(),
            paper_observation_model(), start_day=10, end_day=24,
            n_parameter_draws=20, n_replicates=2, resample_size=25,
            base_seed=1)
        assert len(res.posterior) == 25
        s = res.summary()
        assert 0 < s["ess_fraction"] <= 1
        assert 0.1 <= s["theta"]["mean"] <= 0.5

    def test_histories_cover_burn_in(self, truth):
        res = single_shot_importance_sampling(
            truth.observations(), truth.params, paper_first_window_prior(),
            paper_observation_model(), start_day=10, end_day=20,
            n_parameter_draws=10, n_replicates=1, resample_size=10)
        p = res.posterior[0]
        assert p.history.start_day == 0
        assert p.segment.start_day == 10


class TestABC:
    def test_distance_properties(self):
        y = np.array([100.0, 200.0])
        assert sqrt_count_distance(y, y) == 0.0
        assert sqrt_count_distance(y, y * 2) > 0

    def test_distance_shape_mismatch(self):
        with pytest.raises(ValueError):
            sqrt_count_distance(np.zeros(2), np.zeros(3))

    def test_rejection_quantile_acceptance(self, truth):
        res = abc_rejection(truth.observations(), truth.params,
                            paper_first_window_prior(), start_day=10,
                            end_day=24, n_proposals=40,
                            accept_quantile=0.25, base_seed=2)
        assert res.n_proposals == 40
        assert res.n_accepted == pytest.approx(10, abs=2)
        assert res.acceptance_rate == pytest.approx(0.25, abs=0.06)
        assert res.posterior is not None

    def test_explicit_tolerance(self, truth):
        res = abc_rejection(truth.observations(), truth.params,
                            paper_first_window_prior(), start_day=10,
                            end_day=24, n_proposals=30, tolerance=1e9)
        assert res.n_accepted == 30  # everything within a huge ball

    def test_accepted_distances_below_tolerance(self, truth):
        res = abc_rejection(truth.observations(), truth.params,
                            paper_first_window_prior(), start_day=10,
                            end_day=24, n_proposals=30, accept_quantile=0.2)
        assert np.sum(res.distances <= res.tolerance) == res.n_accepted

    def test_invalid_quantile(self, truth):
        with pytest.raises(ValueError):
            abc_rejection(truth.observations(), truth.params,
                          paper_first_window_prior(), start_day=10,
                          end_day=24, n_proposals=5, accept_quantile=0.0)


class TestMCMC:
    def test_chain_shape_and_acceptance(self, truth):
        res = random_walk_metropolis(
            truth.observations(), truth.params, paper_first_window_prior(),
            paper_observation_model(bias_mode="mean"), start_day=10,
            end_day=20, n_steps=30, n_replicates=1, base_seed=3)
        assert res.samples["theta"].shape == (30,)
        assert 0.0 <= res.acceptance_rate <= 1.0
        assert res.posterior_samples("theta").shape == (30 - res.n_burn_in,)

    def test_chain_stays_in_support(self, truth):
        res = random_walk_metropolis(
            truth.observations(), truth.params, paper_first_window_prior(),
            paper_observation_model(bias_mode="mean"), start_day=10,
            end_day=20, n_steps=30, n_replicates=1, base_seed=4)
        assert np.all(res.samples["theta"] >= 0.1)
        assert np.all(res.samples["theta"] <= 0.5)
        assert np.all(res.samples["rho"] <= 1.0)

    def test_credible_interval_ordering(self, truth):
        res = random_walk_metropolis(
            truth.observations(), truth.params, paper_first_window_prior(),
            paper_observation_model(bias_mode="mean"), start_day=10,
            end_day=20, n_steps=24, n_replicates=1, base_seed=5)
        lo, hi = res.credible_interval("theta")
        assert lo <= res.posterior_mean("theta") + 0.2
        assert lo <= hi

    def test_validation(self, truth):
        with pytest.raises(ValueError):
            random_walk_metropolis(
                truth.observations(), truth.params,
                paper_first_window_prior(),
                paper_observation_model(), start_day=10, end_day=20,
                n_steps=1)


class TestGridPosterior:
    def test_posterior_normalised(self, truth):
        grid = grid_posterior(
            truth.observations(), truth.params, paper_observation_model(
                bias_mode="mean"),
            start_day=10, end_day=20,
            theta_grid=np.linspace(0.15, 0.45, 5),
            rho_grid=np.linspace(0.4, 1.0, 4),
            n_replicates=2, base_seed=6)
        assert grid.posterior.sum() == pytest.approx(1.0)
        assert grid.posterior.shape == (5, 4)

    def test_mode_near_truth(self, truth):
        grid = grid_posterior(
            truth.observations(), truth.params, paper_observation_model(
                bias_mode="mean"),
            start_day=10, end_day=24,
            theta_grid=np.linspace(0.1, 0.5, 9),
            rho_grid=np.linspace(0.3, 1.0, 8),
            n_replicates=3, base_seed=7)
        theta_mode, _rho_mode = grid.mode()
        assert theta_mode == pytest.approx(0.30, abs=0.1)

    def test_marginals_sum_to_one(self, truth):
        grid = grid_posterior(
            truth.observations(), truth.params, paper_observation_model(
                bias_mode="mean"),
            start_day=10, end_day=20,
            theta_grid=np.linspace(0.2, 0.4, 3),
            rho_grid=np.linspace(0.5, 0.9, 3), n_replicates=1)
        assert grid.marginal_theta().sum() == pytest.approx(1.0)
        assert grid.marginal_rho().sum() == pytest.approx(1.0)

    def test_grid_validation(self, truth):
        with pytest.raises(ValueError):
            grid_posterior(truth.observations(), truth.params,
                           paper_observation_model(), start_day=10,
                           end_day=20, theta_grid=np.zeros((2, 2)),
                           rho_grid=np.linspace(0, 1, 3))
