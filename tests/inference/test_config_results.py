"""Unit tests for the high-level configuration and result objects."""

import numpy as np
import pytest

from repro.core import SMCConfig
from repro.inference import CalibrationConfig, paper_calibration_config


class TestCalibrationConfig:
    def test_defaults_build_core_objects(self):
        cfg = CalibrationConfig()
        assert len(cfg.schedule()) == 4
        assert set(cfg.prior().names) == {"theta", "rho"}
        assert set(cfg.jitter().names) == {"theta", "rho"}
        assert set(cfg.observation_model().names) == {"cases", "deaths"}
        assert isinstance(cfg.smc_config(), SMCConfig)

    def test_paper_schedule_default(self):
        cfg = paper_calibration_config()
        labels = [w.label() for w in cfg.schedule()]
        assert labels == ["Days 20-33", "Days 34-47", "Days 48-61",
                          "Days 62-75"]

    def test_engine_options_only_for_leap(self):
        leap = CalibrationConfig(engine="binomial_leap", steps_per_day=2)
        assert leap.smc_config().engine_options == {"steps_per_day": 2}
        ssa = CalibrationConfig(engine="gillespie")
        assert ssa.smc_config().engine_options == {}

    def test_disease_overrides_applied(self):
        cfg = CalibrationConfig(disease_overrides={"population": 1000,
                                                   "initial_exposed": 10})
        assert cfg.disease_params().population == 1000

    def test_round_trip(self):
        cfg = CalibrationConfig(n_parameter_draws=7, sigma=2.0)
        restored = CalibrationConfig.from_dict(cfg.to_dict())
        assert restored == cfg

    def test_temper_and_resample_policy_round_trip(self):
        cfg = CalibrationConfig(
            temper_degenerate=True, temper_threshold=0.1,
            temper_ess_floor=0.25, temper_resampler="stratified",
            resample_size_policy="ess",
            resample_size_policy_options={"target_low": 0.2,
                                          "target_high": 0.6})
        restored = CalibrationConfig.from_dict(cfg.to_dict())
        assert restored == cfg
        smc = restored.smc_config()
        assert smc.temper_degenerate
        assert smc.temper_threshold == 0.1
        assert smc.temper_ess_floor == 0.25
        assert smc.temper_resampler == "stratified"
        assert smc.resample_size_policy == "ess"

    def test_scaled(self):
        cfg = CalibrationConfig(n_parameter_draws=100, resample_size=50)
        big = cfg.scaled(10)
        assert big.n_parameter_draws == 1000
        assert big.resample_size == 500
        assert big.n_replicates == cfg.n_replicates

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            CalibrationConfig().scaled(0)

    def test_executor_construction(self):
        ex = CalibrationConfig(executor="serial").make_executor()
        assert ex.workers == 1

    def test_retry_policy_off_by_default(self):
        cfg = CalibrationConfig()
        assert cfg.retry_policy() is None
        assert cfg.smc_config().retry is None

    def test_retry_policy_built_from_knobs(self):
        cfg = CalibrationConfig(retry_attempts=3, retry_timeout=30.0,
                                retry_backoff=0.5)
        policy = cfg.retry_policy()
        assert policy.max_attempts == 3
        assert policy.timeout_seconds == 30.0
        assert policy.backoff_seconds == 0.5
        assert cfg.smc_config().retry == policy
        # A timeout alone also enables fault-tolerant dispatch.
        assert CalibrationConfig(retry_timeout=10.0).retry_policy() is not None

    def test_checkpoint_store_built_from_dir(self, tmp_path):
        assert CalibrationConfig().checkpoint_store() is None
        cfg = CalibrationConfig(checkpoint_dir=str(tmp_path / "ck"),
                                base_seed=7)
        store = cfg.checkpoint_store()
        assert store.run_id == "seed7"
        assert store.root == tmp_path / "ck"

    def test_fault_tolerance_round_trip(self):
        cfg = CalibrationConfig(retry_attempts=2, retry_backoff=0.1,
                                checkpoint_dir="ckpts", resume=True)
        assert CalibrationConfig.from_dict(cfg.to_dict()) == cfg


class TestCalibrationResult:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.data import PiecewiseConstant
        from repro.inference import calibrate
        from repro.seir import DiseaseParameters
        from repro.sim import make_ground_truth

        params = DiseaseParameters(population=30_000, initial_exposed=60)
        truth = make_ground_truth(
            params=params, horizon=30, seed=11,
            theta_schedule=PiecewiseConstant.constant(0.3),
            rho_schedule=PiecewiseConstant.constant(0.7))
        cfg = CalibrationConfig(window_breaks=(10, 20, 30),
                                n_parameter_draws=25, n_replicates=2,
                                resample_size=30, base_seed=2)
        return calibrate(truth.observations(include_deaths=True), cfg,
                         base_params=params)

    def test_structure(self, result):
        assert result.n_windows == 2
        assert len(result.final_posterior) == 30
        assert result.wall_time_seconds > 0

    def test_parameter_track(self, result):
        track = result.parameter_track("theta")
        assert track.means.shape == (2,)
        assert track.ci90.shape == (2, 2)
        assert np.all(track.ci90[:, 0] <= track.ci90[:, 1])
        assert track.window_labels == ("Days 10-19", "Days 20-29")

    def test_track_covers_helper(self, result):
        track = result.parameter_track("theta")
        lo, hi = track.ci90[0]
        assert track.covers(0, (lo + hi) / 2)
        assert not track.covers(0, hi + 1.0)

    def test_posterior_ribbon_spans_history(self, result):
        rib = result.posterior_ribbon("cases")
        assert rib.start_day == 0
        assert rib.n_days == 30
        assert np.all(rib.band(0.05) <= rib.band(0.95))

    def test_window_ribbon(self, result):
        rib = result.window_ribbon(1, "cases")
        assert rib.start_day == 20
        assert rib.n_days == 10

    def test_summary_and_describe(self, result):
        s = result.summary()
        assert s["n_windows"] == 2
        assert "theta" in s["parameters"]
        text = result.describe()
        assert "Days 10-19" in text

    def test_save_summary(self, result, tmp_path):
        import json
        path = tmp_path / "summary.json"
        result.save_summary(path)
        payload = json.loads(path.read_text())
        assert payload["n_windows"] == 2

    def test_ess_fractions(self, result):
        fr = result.ess_fractions()
        assert fr.shape == (2,)
        assert np.all((fr > 0) & (fr <= 1))

    def test_resample_sizes_and_tempered_windows(self, result):
        assert result.resample_sizes().tolist() == [30, 30]
        assert result.tempered_windows() == []  # tempering off by default
        s = result.summary()
        assert s["resample_sizes"] == [30, 30]
        assert s["tempered_windows"] == []

    def test_window_count_mismatch_rejected(self, result):
        from repro.inference import CalibrationResult
        with pytest.raises(ValueError):
            CalibrationResult(schedule=result.schedule,
                              windows=result.windows[:1],
                              config_payload={})

    def test_resumed_from_defaults_to_none(self, result):
        assert result.resumed_from is None
        assert result.summary()["resumed_from"] is None


class TestCalibrateCheckpointing:
    """calibrate() wiring of the durable checkpoint/resume path."""

    @pytest.fixture(scope="class")
    def truth(self):
        from repro.data import PiecewiseConstant
        from repro.seir import DiseaseParameters
        from repro.sim import make_ground_truth

        params = DiseaseParameters(population=30_000, initial_exposed=60)
        return make_ground_truth(
            params=params, horizon=30, seed=11,
            theta_schedule=PiecewiseConstant.constant(0.3),
            rho_schedule=PiecewiseConstant.constant(0.7))

    def config(self, tmp_path, **overrides):
        return CalibrationConfig(window_breaks=(10, 20, 30),
                                 n_parameter_draws=25, n_replicates=2,
                                 resample_size=30, base_seed=2,
                                 checkpoint_dir=str(tmp_path / "ck"),
                                 **overrides)

    def test_resume_reproduces_run(self, truth, tmp_path):
        import numpy as np

        from repro.inference import calibrate

        first = calibrate(truth.observations(), self.config(tmp_path),
                          base_params=truth.params)
        resumed = calibrate(truth.observations(),
                            self.config(tmp_path, resume=True),
                            base_params=truth.params)
        assert first.resumed_from is None
        assert resumed.resumed_from == first.n_windows - 1
        assert resumed.summary()["resumed_from"] == first.n_windows - 1
        for wa, wb in zip(first.windows, resumed.windows):
            assert np.array_equal(wa.posterior.values("theta"),
                                  wb.posterior.values("theta"))
            assert wa.diagnostics.to_dict() == wb.diagnostics.to_dict()


class TestScenarioResultCompat:
    """Scenario-era result plumbing stays back-compatible.

    Pre-scenario artefacts (constructor calls, stored summaries,
    diagnostics payloads) never mentioned a scenario; they must keep their
    exact meaning — implicitly "baseline" — while sweep results route one
    CalibrationResult per scenario."""

    @pytest.fixture(scope="class")
    def sweep_result(self):
        from repro.core.scenarios import ScenarioOverride, ScenarioSpec
        from repro.data import PiecewiseConstant
        from repro.inference import calibrate_scenarios
        from repro.seir import DiseaseParameters
        from repro.sim import make_ground_truth

        params = DiseaseParameters(population=30_000, initial_exposed=60)
        truth = make_ground_truth(
            params=params, horizon=30, seed=11,
            theta_schedule=PiecewiseConstant.constant(0.3),
            rho_schedule=PiecewiseConstant.constant(0.7))
        mild20 = ScenarioSpec("mild20", overrides=(
            ScenarioOverride("mild_fraction", 0.97, start_day=20),))
        cfg = CalibrationConfig(window_breaks=(10, 20, 30),
                                n_parameter_draws=25, n_replicates=2,
                                resample_size=30, base_seed=2)
        return calibrate_scenarios(truth.observations(include_deaths=True),
                                   scenarios=("baseline", mild20),
                                   config=cfg, base_params=params)

    def test_scenario_field_defaults_to_baseline(self, sweep_result):
        from repro.inference import CalibrationResult
        ref = sweep_result[0]
        legacy = CalibrationResult(schedule=ref.schedule, windows=ref.windows,
                                   config_payload={})
        assert legacy.scenario == "baseline"
        assert legacy.summary()["scenario"] == "baseline"

    def test_summary_carries_scenario(self, sweep_result):
        assert sweep_result["baseline"].summary()["scenario"] == "baseline"
        assert sweep_result["mild20"].summary()["scenario"] == "mild20"

    def test_getitem_by_name_and_index(self, sweep_result):
        assert sweep_result.names == ["baseline", "mild20"]
        assert sweep_result[0] is sweep_result["baseline"]
        assert sweep_result[1] is sweep_result["mild20"]
        assert len(sweep_result) == 2
        assert [r.scenario for r in sweep_result] == ["baseline", "mild20"]
        with pytest.raises(KeyError, match="nope"):
            sweep_result["nope"]

    def test_duplicate_scenarios_rejected(self, sweep_result):
        from repro.inference import ScenarioSweepResult
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioSweepResult(results=(sweep_result[0], sweep_result[0]))

    def test_window_zero_deduplicated(self, sweep_result):
        # mild20 only diverges at day 20: window 0 is shared work.
        assert sweep_result.computed_windows == 3
        assert sweep_result.reused_windows == 1
        assert np.array_equal(
            sweep_result["baseline"].windows[0].posterior.values("theta"),
            sweep_result["mild20"].windows[0].posterior.values("theta"))

    def test_sweep_summary_round_trip(self, sweep_result, tmp_path):
        import json
        path = tmp_path / "sweep.json"
        sweep_result.save_summary(path)
        payload = json.loads(path.read_text())
        assert payload["scenarios"] == ["baseline", "mild20"]
        assert payload["computed_windows"] == 3
        assert payload["reused_windows"] == 1
        assert payload["results"]["mild20"]["scenario"] == "mild20"

    def test_diagnostics_payload_round_trip(self, sweep_result):
        from repro.core.diagnostics import WindowDiagnostics
        diag = sweep_result[0].windows[0].diagnostics
        assert WindowDiagnostics.from_dict(diag.to_dict()) == diag

    def test_diagnostics_tolerate_pre_scenario_payloads(self, sweep_result):
        """Payloads written before the optional keys existed still load."""
        from repro.core.diagnostics import WindowDiagnostics
        payload = sweep_result[0].windows[0].diagnostics.to_dict()
        for newer in ("particle_steps", "temper_schedule", "temper_stage_ess",
                      "shard_failures", "shard_failure_causes"):
            payload.pop(newer)
        restored = WindowDiagnostics.from_dict(payload)
        assert restored.n_particles == \
            sweep_result[0].windows[0].diagnostics.n_particles
        assert restored.shard_failures == 0
        assert restored.temper_schedule == ()
