"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig2_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.command == "fig2"
        assert args.horizon == 100

    def test_fig4_knobs(self):
        args = build_parser().parse_args(
            ["fig4", "--draws", "50", "--replicates", "2",
             "--resample", "60", "--executor", "serial"])
        assert args.draws == 50
        assert args.replicates == 2
        assert args.resample == 60
        assert args.executor == "serial"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])


class TestCommands:
    def test_fig2_writes_series(self, tmp_path, capsys):
        code = main(["fig2", "--out", str(tmp_path), "--horizon", "30"])
        assert code == 0
        assert (tmp_path / "fig2_series.csv").exists()
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_fig3_writes_summary(self, tmp_path, capsys):
        code = main(["fig3", "--out", str(tmp_path), "--draws", "8",
                     "--replicates", "1", "--resample", "10",
                     "--executor", "serial"])
        assert code == 0
        payload = json.loads((tmp_path / "fig3_summary.json").read_text())
        assert "theta" in payload
        assert 0 < payload["ess_fraction"] <= 1
