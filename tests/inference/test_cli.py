"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig2_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.command == "fig2"
        assert args.horizon == 100

    def test_fig4_knobs(self):
        args = build_parser().parse_args(
            ["fig4", "--draws", "50", "--replicates", "2",
             "--resample", "60", "--executor", "serial"])
        assert args.draws == 50
        assert args.replicates == 2
        assert args.resample == 60
        assert args.executor == "serial"

    def test_temper_and_resample_policy_knobs(self):
        args = build_parser().parse_args(
            ["fig4", "--temper", "--temper-threshold", "0.1",
             "--temper-floor", "0.3", "--resample-policy", "ess",
             "--ess-low", "0.05", "--ess-high", "0.4"])
        assert args.temper
        assert args.temper_threshold == 0.1
        assert args.temper_floor == 0.3
        assert args.resample_policy == "ess"

    def test_temper_defaults_off(self):
        args = build_parser().parse_args(["fig5"])
        assert not args.temper
        assert args.resample_policy == "fixed"

    def test_size_budget_policy_requires_step_budget(self):
        args = build_parser().parse_args(
            ["fig4", "--size-policy", "budget"])
        from repro.cli import _size_policy_options
        with pytest.raises(SystemExit, match="step-budget"):
            _size_policy_options(args)

    def test_resample_policy_rejects_budget(self):
        """A particle-step budget cannot bind the posterior (it is never
        re-simulated), so the CLI does not offer it for this role."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--resample-policy", "budget"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_fault_tolerance_knobs(self):
        args = build_parser().parse_args(
            ["fig4", "--checkpoint-dir", "ckpts", "--resume",
             "--retry-attempts", "3", "--retry-timeout", "30",
             "--retry-backoff", "0.5"])
        from repro.cli import _fault_config_kwargs
        kwargs = _fault_config_kwargs(args)
        assert kwargs["checkpoint_dir"] == "ckpts"
        assert kwargs["resume"]
        assert kwargs["retry_attempts"] == 3
        assert kwargs["retry_timeout"] == 30.0
        assert kwargs["retry_backoff"] == 0.5

    def test_fault_tolerance_defaults_off(self):
        args = build_parser().parse_args(["fig5"])
        from repro.cli import _fault_config_kwargs
        kwargs = _fault_config_kwargs(args)
        assert kwargs == {"retry_attempts": 1, "retry_timeout": None,
                          "retry_backoff": 0.0, "checkpoint_dir": None,
                          "resume": False, "checkpoint_keep_last": None}

    def test_resume_requires_checkpoint_dir(self):
        args = build_parser().parse_args(["fig4", "--resume"])
        from repro.cli import _fault_config_kwargs
        with pytest.raises(SystemExit, match="checkpoint-dir"):
            _fault_config_kwargs(args)


class TestCommands:
    def test_fig2_writes_series(self, tmp_path, capsys):
        code = main(["fig2", "--out", str(tmp_path), "--horizon", "30"])
        assert code == 0
        assert (tmp_path / "fig2_series.csv").exists()
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_fig3_writes_summary(self, tmp_path, capsys):
        code = main(["fig3", "--out", str(tmp_path), "--draws", "8",
                     "--replicates", "1", "--resample", "10",
                     "--executor", "serial"])
        assert code == 0
        payload = json.loads((tmp_path / "fig3_summary.json").read_text())
        assert "theta" in payload
        assert 0 < payload["ess_fraction"] <= 1


class TestScenarioFlags:
    def test_scenario_flags_parse(self):
        args = build_parser().parse_args(
            ["fig4", "--scenario", "baseline",
             "--scenario", "milder_variant_d34"])
        assert args.scenario == ["baseline", "milder_variant_d34"]
        assert args.scenario_set is None

    def test_scenario_set_parses(self):
        args = build_parser().parse_args(["fig5", "--scenario-set", "default"])
        assert args.scenario_set == "default"

    def test_flags_default_to_single_run(self):
        from repro.cli import _requested_scenarios
        args = build_parser().parse_args(["fig4"])
        assert _requested_scenarios(args) is None

    def test_both_flags_rejected(self):
        from repro.cli import _requested_scenarios
        args = build_parser().parse_args(
            ["fig4", "--scenario", "baseline", "--scenario-set", "default"])
        with pytest.raises(SystemExit, match="mutually exclusive"):
            _requested_scenarios(args)

    def test_unknown_scenario_rejected(self):
        from repro.cli import _requested_scenarios
        args = build_parser().parse_args(["fig4", "--scenario", "warp_drive"])
        with pytest.raises(SystemExit, match="warp_drive"):
            _requested_scenarios(args)

    def test_unknown_set_rejected(self):
        from repro.cli import _requested_scenarios
        args = build_parser().parse_args(["fig4", "--scenario-set", "nope"])
        with pytest.raises(SystemExit, match="nope"):
            _requested_scenarios(args)

    def test_set_expands_to_names(self):
        from repro.cli import _requested_scenarios
        args = build_parser().parse_args(["fig4", "--scenario-set", "default"])
        names = _requested_scenarios(args)
        assert names is not None
        assert "baseline" in names
        assert names == sorted(names)

    def test_scenarios_command_lists_builtins(self, capsys):
        code = main(["scenarios"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "milder_variant_d34" in out
        assert "default" in out
