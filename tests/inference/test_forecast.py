"""Unit tests for posterior predictive forecasting."""

import pytest

from repro.core import (SMCConfig, SequentialCalibrator, WindowSchedule,
                        paper_first_window_prior, paper_observation_model,
                        paper_window_jitter)
from repro.data import PiecewiseConstant
from repro.inference import forecast_from_posterior
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth


@pytest.fixture(scope="module")
def posterior():
    params = DiseaseParameters(population=30_000, initial_exposed=60)
    truth = make_ground_truth(
        params=params, horizon=20, seed=11,
        theta_schedule=PiecewiseConstant.constant(0.3),
        rho_schedule=PiecewiseConstant.constant(0.7))
    calib = SequentialCalibrator(
        base_params=params, prior=paper_first_window_prior(),
        jitter=paper_window_jitter(),
        observation_model=paper_observation_model(),
        schedule=WindowSchedule.from_breaks([10, 20]),
        config=SMCConfig(n_parameter_draws=15, n_replicates=2,
                         resample_size=20, base_seed=6))
    return calib.run(truth.observations())[0].posterior


class TestForecast:
    def test_horizon_and_count(self, posterior):
        fc = forecast_from_posterior(posterior, horizon_days=8)
        assert fc.start_day == 20
        assert fc.horizon_days == 8
        assert len(fc) == 20
        for traj in fc.trajectories:
            assert traj.start_day == 20
            assert len(traj) == 8

    def test_multiple_continuations_per_particle(self, posterior):
        fc = forecast_from_posterior(posterior, horizon_days=5,
                                     n_per_particle=2)
        assert len(fc) == 40

    def test_ribbon(self, posterior):
        fc = forecast_from_posterior(posterior, horizon_days=5)
        rib = fc.ribbon("cases")
        assert rib.start_day == 20
        assert rib.n_days == 5

    def test_deterministic_given_base_seed(self, posterior):
        import numpy as np
        a = forecast_from_posterior(posterior, 5, base_seed=1)
        b = forecast_from_posterior(posterior, 5, base_seed=1)
        assert np.array_equal(a.trajectories[0].infections,
                              b.trajectories[0].infections)

    def test_different_base_seed_differs(self, posterior):
        import numpy as np
        a = forecast_from_posterior(posterior, 8, base_seed=1)
        b = forecast_from_posterior(posterior, 8, base_seed=2)
        different = any(
            not np.array_equal(x.infections, y.infections)
            for x, y in zip(a.trajectories, b.trajectories))
        assert different

    def test_validation(self, posterior):
        with pytest.raises(ValueError):
            forecast_from_posterior(posterior, 0)
        with pytest.raises(ValueError):
            forecast_from_posterior(posterior, 5, n_per_particle=0)

    def test_missing_checkpoints_rejected(self):
        from repro.core import Particle, ParticleEnsemble
        bare = ParticleEnsemble([Particle(params={"theta": 0.3}, seed=1)])
        with pytest.raises(ValueError, match="checkpoint"):
            forecast_from_posterior(bare, 5)

    def test_path_validation(self, posterior):
        with pytest.raises(ValueError, match="path"):
            forecast_from_posterior(posterior, 5, path="warp")


class TestShardedBatchedForecast:
    """The batched forecast path: sharded whole-cloud restarts."""

    def test_no_per_particle_dispatch(self, posterior):
        """Acceptance: no longer one scalar task per particle — the serial
        auto policy submits a single whole-cloud shard."""
        from repro.hpc import SerialExecutor

        class SpyExecutor(SerialExecutor):
            task_counts = []

            def map(self, fn, tasks):
                tasks = list(tasks)
                SpyExecutor.task_counts.append(len(tasks))
                return super().map(fn, tasks)

        fc = forecast_from_posterior(posterior, horizon_days=6,
                                     executor=SpyExecutor())
        assert len(fc) == len(posterior) == 20
        assert SpyExecutor.task_counts == [1]

    def test_batched_is_the_auto_path(self, posterior):
        """Calibrator checkpoints are leap-format, so auto == batched."""
        import numpy as np
        auto = forecast_from_posterior(posterior, 6, base_seed=3)
        batched = forecast_from_posterior(posterior, 6, base_seed=3,
                                          path="batched")
        for a, b in zip(auto.trajectories, batched.trajectories):
            assert np.array_equal(a.infections, b.infections)

    def test_scalar_batched_distributional_parity(self, posterior):
        """Acceptance: batched forecast overlaps the scalar oracle's
        credible intervals (paths share seeds but not draw order)."""
        import numpy as np
        scalar = forecast_from_posterior(posterior, 10, base_seed=3,
                                         path="scalar", n_per_particle=3)
        batched = forecast_from_posterior(posterior, 10, base_seed=3,
                                          path="batched", n_per_particle=3)
        for channel in ("cases", "deaths"):
            rib_s = scalar.ribbon(channel, quantiles=(0.05, 0.5, 0.95))
            rib_b = batched.ribbon(channel, quantiles=(0.05, 0.5, 0.95))
            lo_s, hi_s = rib_s.band(0.05), rib_s.band(0.95)
            lo_b, hi_b = rib_b.band(0.05), rib_b.band(0.95)
            overlap = (lo_b <= hi_s) & (lo_s <= hi_b)
            assert overlap.all(), f"{channel}: disjoint forecast bands"
            # Medians track each other within the ensemble spread.
            med_gap = np.abs(rib_s.band(0.5) - rib_b.band(0.5))
            spread = np.maximum(hi_s - lo_s, 1.0)
            assert (med_gap <= spread).all()

    def test_bit_identical_across_executors_for_fixed_layout(self, posterior):
        import numpy as np
        from repro.hpc import ProcessExecutor, SerialExecutor
        serial = forecast_from_posterior(posterior, 6, base_seed=5,
                                         shard_size=7,
                                         executor=SerialExecutor())
        with ProcessExecutor(max_workers=2) as pool:
            pooled = forecast_from_posterior(posterior, 6, base_seed=5,
                                             shard_size=7, executor=pool)
        for a, b in zip(serial.trajectories, pooled.trajectories):
            assert np.array_equal(a.infections, b.infections)
            assert np.array_equal(a.deaths, b.deaths)

    def test_shard_layout_only_rekeys_streams(self, posterior):
        """Different layouts give different bits but the same start/shape."""
        import numpy as np
        one = forecast_from_posterior(posterior, 6, base_seed=5, n_shards=1)
        many = forecast_from_posterior(posterior, 6, base_seed=5,
                                       shard_size=3)
        assert len(one) == len(many)
        assert any(not np.array_equal(a.infections, b.infections)
                   for a, b in zip(one.trajectories, many.trajectories))

    def test_shard_knob_validation(self, posterior):
        with pytest.raises(ValueError, match="not both"):
            forecast_from_posterior(posterior, 5, shard_size=4, n_shards=2)
        with pytest.raises(ValueError, match="n_shards"):
            forecast_from_posterior(posterior, 5, n_shards="3")
        with pytest.raises(ValueError, match="shard_size"):
            forecast_from_posterior(posterior, 5, shard_size=0)

    def test_explicit_batched_rejects_schedule_checkpoints(self):
        """A transmission schedule cannot ride the batched restart; the
        explicit path refuses instead of silently dropping it."""
        from repro.core import Particle, ParticleEnsemble
        from repro.data import PiecewiseConstant
        from repro.seir import DiseaseParameters, StochasticSEIRModel

        params = DiseaseParameters(population=3000, initial_exposed=20)
        schedule = PiecewiseConstant.constant(0.25)
        particles = []
        for seed in (1, 2):
            model = StochasticSEIRModel(params, seed,
                                        theta_schedule=schedule)
            model.run_until(5)
            particles.append(Particle(params={"theta": 0.3, "rho": 0.7},
                                      seed=seed,
                                      checkpoint=model.checkpoint()))
        posterior = ParticleEnsemble(particles)
        with pytest.raises(ValueError, match="transmission schedule"):
            forecast_from_posterior(posterior, 4, path="batched")
        # auto falls back to the scalar path, which honours the schedule.
        fc = forecast_from_posterior(posterior, 4)
        assert len(fc) == 2

    def test_auto_falls_back_to_scalar_for_mixed_day_checkpoints(self):
        """Checkpoints at different days can't share a batch clock; auto
        must keep forecasting them via the scalar path."""
        from repro.core import Particle, ParticleEnsemble
        from repro.seir import DiseaseParameters, StochasticSEIRModel

        params = DiseaseParameters(population=3000, initial_exposed=20)
        particles = []
        for seed, day in ((1, 5), (2, 7)):
            model = StochasticSEIRModel(params, seed)
            model.run_until(day)
            particles.append(Particle(params={"theta": 0.3, "rho": 0.7},
                                      seed=seed,
                                      checkpoint=model.checkpoint()))
        posterior = ParticleEnsemble(particles)
        fc = forecast_from_posterior(posterior, horizon_days=4)
        assert len(fc) == 2
        with pytest.raises(ValueError, match="sharing one day"):
            forecast_from_posterior(posterior, 4, path="batched")

    def test_auto_falls_back_to_scalar_for_non_leap_checkpoints(self):
        """Non-leap checkpoints (e.g. event-driven) still forecast."""
        import numpy as np
        from repro.core import Particle, ParticleEnsemble
        from repro.seir import DiseaseParameters, StochasticSEIRModel

        params = DiseaseParameters(population=3000, initial_exposed=20)
        particles = []
        for seed in (1, 2, 3):
            model = StochasticSEIRModel(params, seed, engine="event_driven")
            model.run_until(5)
            particles.append(Particle(params={"theta": 0.3, "rho": 0.7},
                                      seed=seed,
                                      checkpoint=model.checkpoint()))
        posterior = ParticleEnsemble(particles)
        fc = forecast_from_posterior(posterior, horizon_days=4)
        assert len(fc) == 3
        assert fc.start_day == 5
        for traj in fc.trajectories:
            assert len(traj) == 4
            assert np.all(np.isfinite(traj.infections))


class TestForecastScenarios:
    """forecast_scenarios: CRN fan-out over per-scenario posteriors."""

    def test_crn_identical_posteriors_identical_forecasts(self, posterior):
        import numpy as np
        from repro.inference import forecast_scenarios
        fcs = forecast_scenarios({"a": posterior, "b": posterior},
                                 horizon_days=6, base_seed=4)
        assert list(fcs) == ["a", "b"]
        for ta, tb in zip(fcs["a"].trajectories, fcs["b"].trajectories):
            assert np.array_equal(ta.infections, tb.infections)
            assert np.array_equal(ta.deaths, tb.deaths)

    def test_canonical_sorted_order(self, posterior):
        from repro.inference import forecast_scenarios
        fcs = forecast_scenarios(
            {"zeta": posterior, "alpha": posterior, "mid": posterior},
            horizon_days=4)
        assert list(fcs) == ["alpha", "mid", "zeta"]

    def test_matches_single_scenario_call(self, posterior):
        import numpy as np
        from repro.inference import forecast_scenarios
        alone = forecast_from_posterior(posterior, 5, base_seed=9)
        swept = forecast_scenarios({"only": posterior}, 5, base_seed=9)
        for a, b in zip(alone.trajectories, swept["only"].trajectories):
            assert np.array_equal(a.infections, b.infections)
