"""Unit tests for posterior predictive forecasting."""

import pytest

from repro.core import (SMCConfig, SequentialCalibrator, WindowSchedule,
                        paper_first_window_prior, paper_observation_model,
                        paper_window_jitter)
from repro.data import PiecewiseConstant
from repro.inference import forecast_from_posterior
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth


@pytest.fixture(scope="module")
def posterior():
    params = DiseaseParameters(population=30_000, initial_exposed=60)
    truth = make_ground_truth(
        params=params, horizon=20, seed=11,
        theta_schedule=PiecewiseConstant.constant(0.3),
        rho_schedule=PiecewiseConstant.constant(0.7))
    calib = SequentialCalibrator(
        base_params=params, prior=paper_first_window_prior(),
        jitter=paper_window_jitter(),
        observation_model=paper_observation_model(),
        schedule=WindowSchedule.from_breaks([10, 20]),
        config=SMCConfig(n_parameter_draws=15, n_replicates=2,
                         resample_size=20, base_seed=6))
    return calib.run(truth.observations())[0].posterior


class TestForecast:
    def test_horizon_and_count(self, posterior):
        fc = forecast_from_posterior(posterior, horizon_days=8)
        assert fc.start_day == 20
        assert fc.horizon_days == 8
        assert len(fc) == 20
        for traj in fc.trajectories:
            assert traj.start_day == 20
            assert len(traj) == 8

    def test_multiple_continuations_per_particle(self, posterior):
        fc = forecast_from_posterior(posterior, horizon_days=5,
                                     n_per_particle=2)
        assert len(fc) == 40

    def test_ribbon(self, posterior):
        fc = forecast_from_posterior(posterior, horizon_days=5)
        rib = fc.ribbon("cases")
        assert rib.start_day == 20
        assert rib.n_days == 5

    def test_deterministic_given_base_seed(self, posterior):
        import numpy as np
        a = forecast_from_posterior(posterior, 5, base_seed=1)
        b = forecast_from_posterior(posterior, 5, base_seed=1)
        assert np.array_equal(a.trajectories[0].infections,
                              b.trajectories[0].infections)

    def test_different_base_seed_differs(self, posterior):
        import numpy as np
        a = forecast_from_posterior(posterior, 8, base_seed=1)
        b = forecast_from_posterior(posterior, 8, base_seed=2)
        different = any(
            not np.array_equal(x.infections, y.infections)
            for x, y in zip(a.trajectories, b.trajectories))
        assert different

    def test_validation(self, posterior):
        with pytest.raises(ValueError):
            forecast_from_posterior(posterior, 0)
        with pytest.raises(ValueError):
            forecast_from_posterior(posterior, 5, n_per_particle=0)

    def test_missing_checkpoints_rejected(self):
        from repro.core import Particle, ParticleEnsemble
        bare = ParticleEnsemble([Particle(params={"theta": 0.3}, seed=1)])
        with pytest.raises(ValueError, match="checkpoint"):
            forecast_from_posterior(bare, 5)
