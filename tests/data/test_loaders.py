"""Unit tests for CSV observation loaders."""

import pytest

from repro.data import (load_series_csv, load_wide_csv,
                        observation_set_from_csv, TimeSeries)
from repro.viz import write_series_csv


@pytest.fixture
def wide_csv(tmp_path):
    path = tmp_path / "wide.csv"
    path.write_text("day,cases,deaths\n3,10,0\n4,12,1\n5,15,0\n")
    return path


@pytest.fixture
def tidy_csv(tmp_path):
    path = tmp_path / "tidy.csv"
    path.write_text("day,series,value\n3,cases,10\n4,cases,12\n"
                    "3,deaths,0\n4,deaths,1\n")
    return path


class TestWideLoader:
    def test_loads_streams(self, wide_csv):
        out = load_wide_csv(wide_csv)
        assert set(out) == {"cases", "deaths"}
        assert out["cases"].start_day == 3
        assert list(out["cases"].values) == [10.0, 12.0, 15.0]

    def test_missing_day_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t,cases\n1,2\n")
        with pytest.raises(ValueError, match="'day'"):
            load_wide_csv(path)

    def test_no_stream_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("day\n1\n")
        with pytest.raises(ValueError, match="no stream"):
            load_wide_csv(path)

    def test_empty_cells_are_gaps(self, tmp_path):
        path = tmp_path / "gap.csv"
        path.write_text("day,cases\n1,5\n2,\n3,7\n")
        with pytest.raises(ValueError, match="missing days"):
            load_wide_csv(path)
        out = load_wide_csv(path, fill_gaps=0.0)
        assert list(out["cases"].values) == [5.0, 0.0, 7.0]


class TestTidyLoader:
    def test_loads_streams(self, tidy_csv):
        out = load_series_csv(tidy_csv)
        assert set(out) == {"cases", "deaths"}
        assert list(out["deaths"].values) == [0.0, 1.0]

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("day,value\n1,2\n")
        with pytest.raises(ValueError, match="needs columns"):
            load_series_csv(path)

    def test_duplicate_days_rejected(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text("day,series,value\n1,cases,2\n1,cases,3\n")
        with pytest.raises(ValueError, match="duplicate"):
            load_series_csv(path)

    def test_gap_detection(self, tmp_path):
        path = tmp_path / "gap.csv"
        path.write_text("day,series,value\n1,cases,2\n3,cases,3\n")
        with pytest.raises(ValueError, match="missing days"):
            load_series_csv(path)
        out = load_series_csv(path, fill_gaps=0.0)
        assert list(out["cases"].values) == [2.0, 0.0, 3.0]

    def test_round_trip_with_export(self, tmp_path):
        path = tmp_path / "rt.csv"
        original = {"cases": TimeSeries(2, [4.0, 5.0], name="cases")}
        write_series_csv(path, original)
        out = load_series_csv(path)
        assert out["cases"] == TimeSeries(2, [4.0, 5.0], name="cases")


class TestObservationSetFromCsv:
    def test_default_paper_wiring(self, wide_csv):
        obs = observation_set_from_csv(wide_csv)
        assert obs["cases"].biased
        assert not obs["deaths"].biased
        assert obs["deaths"].channel == "deaths"

    def test_tidy_layout(self, tidy_csv):
        obs = observation_set_from_csv(tidy_csv, layout="tidy")
        assert set(obs.names) == {"cases", "deaths"}

    def test_unknown_layout(self, wide_csv):
        with pytest.raises(ValueError, match="layout"):
            observation_set_from_csv(wide_csv, layout="jsonl")

    def test_unconfigured_stream_rejected(self, tmp_path):
        path = tmp_path / "extra.csv"
        path.write_text("day,cases,hospital\n1,2,3\n")
        with pytest.raises(ValueError, match="no channel/bias"):
            observation_set_from_csv(path)

    def test_custom_stream_config(self, tmp_path):
        path = tmp_path / "icu.csv"
        path.write_text("day,icu\n1,3\n2,4\n")
        obs = observation_set_from_csv(
            path, stream_config={"icu": ("icu_census", False)})
        assert obs["icu"].channel == "icu_census"
        assert not obs["icu"].biased

    def test_calibration_from_csv_runs(self, tmp_path):
        """End-to-end: export synthetic observations, reload, calibrate."""
        from repro.data import PiecewiseConstant
        from repro.inference import CalibrationConfig, calibrate
        from repro.seir import DiseaseParameters
        from repro.sim import make_ground_truth

        params = DiseaseParameters(population=30_000, initial_exposed=60)
        truth = make_ground_truth(
            params=params, horizon=20, seed=5,
            theta_schedule=PiecewiseConstant.constant(0.3),
            rho_schedule=PiecewiseConstant.constant(0.7))
        path = tmp_path / "obs.csv"
        write_series_csv(path, {"cases": truth.observed_cases})
        obs = observation_set_from_csv(path, layout="tidy")
        cfg = CalibrationConfig(window_breaks=(8, 20), n_parameter_draws=10,
                                n_replicates=2, resample_size=10, base_seed=3)
        result = calibrate(obs, cfg, base_params=params)
        assert result.n_windows == 1
