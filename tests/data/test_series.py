"""Unit tests for the TimeSeries container."""

import numpy as np
import pytest

from repro.data import TimeSeries, align, concat


def make(start=0, values=(1.0, 2.0, 3.0), name="cases"):
    return TimeSeries(start, np.array(values), name=name)


class TestConstruction:
    def test_values_stored_as_float64(self):
        ts = TimeSeries(0, [1, 2, 3])
        assert ts.values.dtype == np.float64

    def test_values_are_readonly(self):
        ts = make()
        with pytest.raises(ValueError):
            ts.values[0] = 99.0

    def test_rejects_2d_values(self):
        with pytest.raises(ValueError, match="1-d"):
            TimeSeries(0, np.zeros((2, 2)))

    def test_accepts_generic_iterable(self):
        ts = TimeSeries(3, (x for x in [1.0, 2.0]))
        assert len(ts) == 2

    def test_zeros_constructor(self):
        ts = TimeSeries.zeros(5, 4, name="deaths")
        assert ts.start_day == 5
        assert ts.total() == 0.0
        assert ts.name == "deaths"

    def test_zeros_rejects_negative_length(self):
        with pytest.raises(ValueError):
            TimeSeries.zeros(0, -1)

    def test_empty_series_allowed(self):
        ts = TimeSeries(0, [])
        assert len(ts) == 0
        assert ts.end_day == 0


class TestIndexing:
    def test_day_axis(self):
        ts = make(start=10)
        assert list(ts.days) == [10, 11, 12]
        assert ts.end_day == 13

    def test_value_on(self):
        ts = make(start=10)
        assert ts.value_on(11) == 2.0

    def test_value_on_out_of_range(self):
        ts = make(start=10)
        with pytest.raises(KeyError):
            ts.value_on(13)
        with pytest.raises(KeyError):
            ts.value_on(9)

    def test_iteration(self):
        assert list(make()) == [1.0, 2.0, 3.0]


class TestWindowing:
    def test_window_basic(self):
        ts = make(start=10)
        w = ts.window(11, 13)
        assert w.start_day == 11
        assert list(w.values) == [2.0, 3.0]

    def test_window_full_range(self):
        ts = make(start=10)
        assert ts.window(10, 13) == ts

    def test_window_out_of_range_raises(self):
        ts = make(start=10)
        with pytest.raises(ValueError, match="not contained"):
            ts.window(9, 12)
        with pytest.raises(ValueError, match="not contained"):
            ts.window(10, 14)

    def test_window_reversed_raises(self):
        ts = make(start=10)
        with pytest.raises(ValueError):
            ts.window(12, 11)

    def test_head_tail(self):
        ts = TimeSeries(0, np.arange(10.0))
        assert list(ts.head(3).values) == [0.0, 1.0, 2.0]
        assert list(ts.tail(2).values) == [8.0, 9.0]

    def test_aligned_with(self):
        a = TimeSeries(0, np.arange(10.0))
        b = TimeSeries(5, np.arange(10.0))
        a2, b2 = a.aligned_with(b)
        assert a2.start_day == b2.start_day == 5
        assert len(a2) == len(b2) == 5

    def test_aligned_with_disjoint_raises(self):
        a = TimeSeries(0, [1.0, 2.0])
        b = TimeSeries(10, [1.0])
        with pytest.raises(ValueError, match="overlap"):
            a.aligned_with(b)


class TestArithmetic:
    def test_add_series(self):
        out = make() + make()
        assert list(out.values) == [2.0, 4.0, 6.0]

    def test_add_scalar(self):
        out = make() + 1
        assert list(out.values) == [2.0, 3.0, 4.0]

    def test_subtract(self):
        out = make() - make()
        assert out.total() == 0.0

    def test_multiply_scalar(self):
        out = make() * 2.0
        assert list(out.values) == [2.0, 4.0, 6.0]

    def test_divide(self):
        out = make() / 2.0
        assert list(out.values) == [0.5, 1.0, 1.5]

    def test_misaligned_add_raises(self):
        with pytest.raises(ValueError, match="not aligned"):
            make(start=0) + make(start=1)

    def test_map_preserves_length(self):
        out = make().map(np.sqrt)
        assert np.allclose(out.values, np.sqrt([1.0, 2.0, 3.0]))

    def test_map_length_change_rejected(self):
        with pytest.raises(ValueError):
            make().map(lambda v: v[:-1])

    def test_equality_and_hash(self):
        assert make() == make()
        assert hash(make()) == hash(make())
        assert make() != make(start=1)


class TestAggregations:
    def test_total_mean_max_min(self):
        ts = make()
        assert ts.total() == 6.0
        assert ts.mean() == 2.0
        assert ts.max() == 3.0
        assert ts.min() == 1.0

    def test_argmax_day(self):
        ts = TimeSeries(5, [1.0, 9.0, 2.0])
        assert ts.argmax_day() == 6

    def test_cumulative(self):
        out = make().cumulative()
        assert list(out.values) == [1.0, 3.0, 6.0]

    def test_diff_inverts_cumulative(self):
        ts = TimeSeries(0, [3.0, 1.0, 4.0, 1.0, 5.0])
        round_trip = ts.cumulative().diff()
        assert np.allclose(round_trip.values, ts.values)

    def test_rolling_mean_window1_is_identity(self):
        ts = make()
        assert np.allclose(ts.rolling_mean(1).values, ts.values)

    def test_rolling_mean_partial_start(self):
        ts = TimeSeries(0, [2.0, 4.0, 6.0])
        rm = ts.rolling_mean(2)
        assert np.allclose(rm.values, [2.0, 3.0, 5.0])

    def test_rolling_mean_invalid_window(self):
        with pytest.raises(ValueError):
            make().rolling_mean(0)

    def test_clip_nonnegative(self):
        ts = TimeSeries(0, [-1.0, 2.0])
        assert list(ts.clip_nonnegative().values) == [0.0, 2.0]

    def test_round_counts(self):
        ts = TimeSeries(0, [1.4, 2.6])
        assert list(ts.round_counts().values) == [1.0, 3.0]

    def test_shift(self):
        ts = make(start=0).shift(5)
        assert ts.start_day == 5
        assert list(ts.values) == [1.0, 2.0, 3.0]


class TestSerialisation:
    def test_round_trip(self):
        ts = make(start=7)
        assert TimeSeries.from_dict(ts.to_dict()) == ts

    def test_dict_is_json_safe(self):
        import json
        json.dumps(make().to_dict())


class TestModuleHelpers:
    def test_align_restricts_to_common_range(self):
        a = TimeSeries(0, np.arange(10.0))
        b = TimeSeries(3, np.arange(10.0))
        c = TimeSeries(5, np.arange(3.0))
        out = align([a, b, c])
        assert all(s.start_day == 5 and s.end_day == 8 for s in out)

    def test_align_empty_list(self):
        assert align([]) == []

    def test_align_disjoint_raises(self):
        with pytest.raises(ValueError):
            align([TimeSeries(0, [1.0]), TimeSeries(5, [1.0])])

    def test_concat_adjacent(self):
        a = TimeSeries(0, [1.0, 2.0])
        b = TimeSeries(2, [3.0])
        out = concat(a, b)
        assert list(out.values) == [1.0, 2.0, 3.0]
        assert out.start_day == 0

    def test_concat_gap_raises(self):
        a = TimeSeries(0, [1.0])
        b = TimeSeries(2, [1.0])
        with pytest.raises(ValueError, match="cannot concat"):
            concat(a, b)
