"""Unit tests for piecewise-constant schedules."""

import numpy as np
import pytest

from repro.data import FIG2_RHO_SCHEDULE, FIG2_THETA_SCHEDULE, PiecewiseConstant


class TestConstruction:
    def test_constant(self):
        s = PiecewiseConstant.constant(0.3)
        assert s(0) == 0.3
        assert s(1000) == 0.3
        assert s.n_segments == 1

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="len"):
            PiecewiseConstant(breakpoints=(10,), values=(1.0,))

    def test_non_increasing_breakpoints_raise(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            PiecewiseConstant(breakpoints=(10, 10), values=(1.0, 2.0, 3.0))

    def test_from_segments(self):
        s = PiecewiseConstant.from_segments([(0, 0.3), (34, 0.27), (48, 0.25)])
        assert s.breakpoints == (34, 48)
        assert s.values == (0.3, 0.27, 0.25)

    def test_from_segments_empty_raises(self):
        with pytest.raises(ValueError):
            PiecewiseConstant.from_segments([])


class TestEvaluation:
    def test_scalar_evaluation_at_boundaries(self):
        s = PiecewiseConstant(breakpoints=(34, 48), values=(1.0, 2.0, 3.0))
        assert s(33) == 1.0
        assert s(34) == 2.0
        assert s(47) == 2.0
        assert s(48) == 3.0

    def test_array_evaluation(self):
        s = PiecewiseConstant(breakpoints=(2,), values=(1.0, 5.0))
        out = s(np.array([0, 1, 2, 3]))
        assert list(out) == [1.0, 1.0, 5.0, 5.0]

    def test_scalar_return_type(self):
        s = PiecewiseConstant.constant(0.5)
        assert isinstance(s(3), float)

    def test_segment_index(self):
        s = PiecewiseConstant(breakpoints=(34, 48), values=(1.0, 2.0, 3.0))
        assert s.segment_index(0) == 0
        assert s.segment_index(34) == 1
        assert s.segment_index(100) == 2

    def test_segment_bounds(self):
        s = PiecewiseConstant(breakpoints=(34, 48), values=(1.0, 2.0, 3.0))
        assert s.segment_bounds(60) == [(0, 34), (34, 48), (48, 60)]

    def test_segment_bounds_truncated_horizon(self):
        s = PiecewiseConstant(breakpoints=(34, 48), values=(1.0, 2.0, 3.0))
        assert s.segment_bounds(40) == [(0, 34), (34, 40)]


class TestSerialisation:
    def test_round_trip(self):
        s = PiecewiseConstant(breakpoints=(3, 7), values=(0.1, 0.2, 0.3))
        assert PiecewiseConstant.from_dict(s.to_dict()) == s


class TestPaperSchedules:
    def test_fig2_theta_values(self):
        """Section V-A: 0.30 d0-33, 0.27 d34-47, 0.25 d48-61, 0.40 d62+."""
        assert FIG2_THETA_SCHEDULE(0) == 0.30
        assert FIG2_THETA_SCHEDULE(33) == 0.30
        assert FIG2_THETA_SCHEDULE(34) == 0.27
        assert FIG2_THETA_SCHEDULE(47) == 0.27
        assert FIG2_THETA_SCHEDULE(48) == 0.25
        assert FIG2_THETA_SCHEDULE(61) == 0.25
        assert FIG2_THETA_SCHEDULE(62) == 0.40
        assert FIG2_THETA_SCHEDULE(99) == 0.40

    def test_fig2_rho_values(self):
        """Section V-A: 0.6, 0.7, 0.85, 0.8 on the same horizons."""
        assert FIG2_RHO_SCHEDULE(0) == 0.60
        assert FIG2_RHO_SCHEDULE(34) == 0.70
        assert FIG2_RHO_SCHEDULE(48) == 0.85
        assert FIG2_RHO_SCHEDULE(62) == 0.80
