"""Observation validation: defect detection, loader wiring, API gate."""

import math

import numpy as np
import pytest

from repro.data import (ObservationSet, ObservationSource, TimeSeries,
                        ObservationValidationError, find_defects,
                        find_row_defects, find_series_defects,
                        validate_observations)
from repro.data.loaders import _series_from_pairs


def series(values, start=0, name="cases"):
    return TimeSeries(start, np.asarray(values, dtype=float), name=name)


def obs_set(values, name="cases"):
    return ObservationSet.of(ObservationSource(name, series(values, name=name)))


class TestFindSeriesDefects:
    def test_clean_series_has_no_defects(self):
        assert find_series_defects(series([1.0, 2.0, 0.0])) == []

    def test_nan_is_reported_with_day(self):
        defects = find_series_defects(series([1.0, math.nan, 3.0], start=10))
        assert len(defects) == 1
        assert defects[0].day == 11
        assert defects[0].reason == "nan_value"
        assert defects[0].stream == "cases"

    def test_negative_is_reported(self):
        (defect,) = find_series_defects(series([1.0, -4.0]))
        assert defect.reason == "negative_value"
        assert "-4.0" in defect.detail

    def test_infinity_is_reported(self):
        (defect,) = find_series_defects(series([math.inf, 1.0]))
        assert defect.reason == "non_finite_value"

    def test_explicit_name_overrides_series_name(self):
        (defect,) = find_series_defects(series([-1.0]), name="deaths")
        assert defect.stream == "deaths"


class TestValidateObservations:
    def test_clean_set_returned_unchanged(self):
        obs = obs_set([1.0, 2.0])
        assert validate_observations(obs) is obs

    def test_defective_set_raises_with_every_defect(self):
        obs = ObservationSet.of(
            ObservationSource("cases", series([1.0, math.nan])),
            ObservationSource("deaths", series([-2.0, 0.0], name="deaths"),
                              biased=False))
        with pytest.raises(ObservationValidationError) as err:
            validate_observations(obs)
        reasons = {(d.stream, d.reason) for d in err.value.defects}
        assert reasons == {("cases", "nan_value"), ("deaths", "negative_value")}
        assert "cases[day 1]" in str(err.value)

    def test_find_defects_orders_by_stream(self):
        obs = ObservationSet.of(
            ObservationSource("cases", series([math.nan])),
            ObservationSource("deaths", series([-1.0], name="deaths"),
                              biased=False))
        defects = find_defects(obs)
        assert [d.stream for d in defects] == ["cases", "deaths"]

    def test_defect_round_trips_to_dict(self):
        (defect,) = find_defects(obs_set([-3.0]))
        d = defect.to_dict()
        assert d == {"stream": "cases", "day": 0,
                     "reason": "negative_value", "detail": d["detail"]}


class TestFindRowDefects:
    def test_accepts_parseable_clean_rows(self):
        accepted, defects = find_row_defects("cases", [(0, "3"), ("1", 4.5)])
        assert accepted == [(0, 3.0), (1, 4.5)]
        assert defects == []

    def test_malformed_day_and_value_are_quarantined(self):
        accepted, defects = find_row_defects(
            "cases", [("not-a-day", 1.0), (2, "oops"), (3, 5.0)])
        assert accepted == [(3, 5.0)]
        assert [d.reason for d in defects] == ["malformed", "malformed"]
        assert defects[0].day is None
        assert defects[1].day == 2

    def test_duplicates_within_batch_and_against_seen(self):
        accepted, defects = find_row_defects(
            "cases", [(5, 1.0), (5, 2.0), (6, 3.0)], seen_days=[6])
        assert accepted == [(5, 1.0)]
        assert [d.reason for d in defects] == ["duplicate_day",
                                               "duplicate_day"]

    def test_bad_values_are_quarantined_not_accepted(self):
        accepted, defects = find_row_defects(
            "cases", [(0, math.nan), (1, -2.0), (2, math.inf), (3, 1.0)])
        assert accepted == [(3, 1.0)]
        assert [d.reason for d in defects] == [
            "nan_value", "negative_value", "non_finite_value"]


class TestLoaderWiring:
    def test_series_from_pairs_rejects_nan(self):
        with pytest.raises(ObservationValidationError, match="nan_value"):
            _series_from_pairs("cases", [(0, 1.0), (1, math.nan)],
                               fill_gaps=None)

    def test_series_from_pairs_rejects_negative(self):
        with pytest.raises(ObservationValidationError, match="negative"):
            _series_from_pairs("cases", [(0, -1.0)], fill_gaps=None)

    def test_wide_csv_rejects_nan_cell(self, tmp_path):
        from repro.data import load_wide_csv
        path = tmp_path / "obs.csv"
        path.write_text("day,cases\n0,5\n1,nan\n")
        with pytest.raises(ObservationValidationError, match="nan_value"):
            load_wide_csv(path)

    def test_tidy_csv_rejects_negative(self, tmp_path):
        from repro.data import load_series_csv
        path = tmp_path / "obs.csv"
        path.write_text("day,series,value\n0,cases,5\n1,cases,-2\n")
        with pytest.raises(ObservationValidationError, match="negative"):
            load_series_csv(path)

    def test_clean_csv_still_loads(self, tmp_path):
        from repro.data import observation_set_from_csv
        path = tmp_path / "obs.csv"
        path.write_text("day,cases,deaths\n0,5,1\n1,6,0\n")
        obs = observation_set_from_csv(path)
        assert obs.names == ("cases", "deaths")


class TestApiGate:
    def test_calibrate_rejects_defective_observations(self):
        from repro.inference import calibrate
        with pytest.raises(ObservationValidationError):
            calibrate(obs_set([1.0, math.nan, 2.0]))
