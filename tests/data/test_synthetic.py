"""Unit tests for synthetic observation generation (binomial thinning)."""

import numpy as np
import pytest

from repro.data import (PiecewiseConstant, TimeSeries, binomial_thin,
                        make_observed_series, mean_thin)


def counts(n=50, scale=100.0, start=0):
    rng = np.random.Generator(np.random.PCG64(7))
    return TimeSeries(start, rng.poisson(scale, size=n).astype(float),
                      name="cases")


class TestBinomialThin:
    def test_observed_never_exceeds_true(self, rng):
        ts = counts()
        obs = binomial_thin(ts, 0.7, rng)
        assert np.all(obs.values <= ts.values)
        assert np.all(obs.values >= 0)

    def test_rho_one_is_identity(self, rng):
        ts = counts()
        obs = binomial_thin(ts, 1.0, rng)
        assert np.array_equal(obs.values, np.rint(ts.values))

    def test_rho_zero_gives_zeros(self, rng):
        obs = binomial_thin(counts(), 0.0, rng)
        assert obs.total() == 0.0

    def test_mean_close_to_rho_fraction(self, rng):
        ts = counts(n=400, scale=1000.0)
        obs = binomial_thin(ts, 0.6, rng)
        assert obs.total() == pytest.approx(0.6 * ts.total(), rel=0.02)

    def test_scheduled_rho(self, rng):
        ts = TimeSeries(0, np.full(20, 10_000.0))
        sched = PiecewiseConstant(breakpoints=(10,), values=(0.2, 0.9))
        obs = binomial_thin(ts, sched, rng)
        early = obs.values[:10].mean()
        late = obs.values[10:].mean()
        assert early == pytest.approx(2000, rel=0.1)
        assert late == pytest.approx(9000, rel=0.05)

    def test_invalid_rho_rejected(self, rng):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            binomial_thin(counts(), 1.5, rng)

    def test_negative_counts_rejected(self, rng):
        ts = TimeSeries(0, [-1.0, 2.0])
        with pytest.raises(ValueError, match="negative"):
            binomial_thin(ts, 0.5, rng)

    def test_name_prefixed(self, rng):
        assert binomial_thin(counts(), 0.5, rng).name == "observed_cases"


class TestMeanThin:
    def test_exact_expectation(self):
        ts = counts()
        obs = mean_thin(ts, 0.25)
        assert np.allclose(obs.values, 0.25 * ts.values)

    def test_scheduled(self):
        ts = TimeSeries(0, np.full(4, 100.0))
        sched = PiecewiseConstant(breakpoints=(2,), values=(0.5, 1.0))
        obs = mean_thin(ts, sched)
        assert list(obs.values) == [50.0, 50.0, 100.0, 100.0]


class TestMakeObservedSeries:
    def test_sample_mode(self, rng):
        obs = make_observed_series(counts(), 0.5, rng, mode="sample")
        assert np.all(obs.values <= counts().values)

    def test_mean_mode(self, rng):
        obs = make_observed_series(counts(), 0.5, rng, mode="mean")
        assert np.allclose(obs.values, 0.5 * counts().values)

    def test_reporting_lag_shifts_days(self, rng):
        obs = make_observed_series(counts(start=0), 0.5, rng,
                                   reporting_lag_days=3)
        assert obs.start_day == 3

    def test_unknown_mode_rejected(self, rng):
        with pytest.raises(ValueError, match="mode"):
            make_observed_series(counts(), 0.5, rng, mode="magic")
