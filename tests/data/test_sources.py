"""Unit tests for observation sources and sets."""

import numpy as np
import pytest

from repro.data import (CASES, DEATHS, ObservationSet, ObservationSource,
                        TimeSeries)


def source(name="cases", start=0, n=10, channel=CASES, biased=True):
    return ObservationSource(name, TimeSeries(start, np.arange(float(n))),
                             channel=channel, biased=biased)


class TestObservationSource:
    def test_basic_fields(self):
        s = source()
        assert s.name == "cases"
        assert s.channel == CASES
        assert s.biased

    def test_unknown_channel_rejected(self):
        with pytest.raises(ValueError, match="unknown channel"):
            source(channel="icecream")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            source(name="")

    def test_window(self):
        s = source(n=10).window(2, 5)
        assert s.series.start_day == 2
        assert len(s.series) == 3
        assert s.name == "cases"

    def test_round_trip(self):
        s = source(channel=DEATHS, biased=False, name="deaths")
        restored = ObservationSource.from_dict(s.to_dict())
        assert restored.name == s.name
        assert restored.channel == DEATHS
        assert restored.biased is False
        assert restored.series == s.series


class TestObservationSet:
    def test_of_constructor_and_lookup(self):
        obs = ObservationSet.of(source(), source(name="deaths", channel=DEATHS))
        assert len(obs) == 2
        assert "cases" in obs
        assert obs["deaths"].channel == DEATHS

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ObservationSet.of(source(), source())

    def test_missing_lookup_raises(self):
        obs = ObservationSet.of(source())
        with pytest.raises(KeyError):
            obs["deaths"]

    def test_names_order_preserved(self):
        obs = ObservationSet.of(source(name="b"), source(name="a"))
        assert obs.names == ("b", "a")

    def test_common_day_range(self):
        obs = ObservationSet.of(source(start=0, n=10),
                                source(name="deaths", start=5, n=10,
                                       channel=DEATHS))
        assert obs.start_day == 5
        assert obs.end_day == 10

    def test_empty_set_range_raises(self):
        obs = ObservationSet.of()
        with pytest.raises(ValueError):
            _ = obs.start_day

    def test_window_slices_every_stream(self):
        obs = ObservationSet.of(source(n=10),
                                source(name="deaths", n=10, channel=DEATHS))
        w = obs.window(2, 6)
        assert all(s.series.start_day == 2 and len(s.series) == 4 for s in w)

    def test_with_source(self):
        obs = ObservationSet.of(source())
        obs2 = obs.with_source(source(name="deaths", channel=DEATHS))
        assert len(obs) == 1  # original untouched
        assert len(obs2) == 2

    def test_series_by_name(self):
        obs = ObservationSet.of(source())
        assert set(obs.series_by_name()) == {"cases"}

    def test_round_trip(self):
        obs = ObservationSet.of(source(), source(name="deaths", channel=DEATHS))
        restored = ObservationSet.from_dict(obs.to_dict())
        assert restored.names == obs.names
