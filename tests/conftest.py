"""Shared fixtures: small, fast parameterisations for unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.seir import DiseaseParameters


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for test randomness."""
    return np.random.Generator(np.random.PCG64(12345))


@pytest.fixture
def small_params() -> DiseaseParameters:
    """A town-scale parameter set that keeps simulations in milliseconds."""
    return DiseaseParameters(population=20_000, initial_exposed=40)


@pytest.fixture
def tiny_params() -> DiseaseParameters:
    """A village-scale set for the exact (event-count-bound) engines."""
    return DiseaseParameters(population=2_000, initial_exposed=20)
