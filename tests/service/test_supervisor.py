"""The supervision loop: bit-identity under kills and chaos, degradation.

Acceptance properties (see ISSUE/docs/service.md):

* a service run killed at any point and restarted resumes to artifacts
  **byte-identical** to a straight-through run — including a kill landing
  between the checkpoint seal and the artifact seal;
* window-step crashes inside the restart budget leave artifacts
  byte-identical; budget exhaustion is sticky and degrades reads to the
  last sealed artifact, tagged stale-with-age;
* a torn artifact is never served.
"""

import numpy as np
import pytest

from repro.core import (SequentialCalibrator, SMCConfig, WindowSchedule,
                        paper_first_window_prior, paper_observation_model,
                        paper_window_jitter)
from repro.data import PiecewiseConstant
from repro.hpc import CheckpointStore, RetryPolicy
from repro.seir import CheckpointError, DiseaseParameters
from repro.sim import make_ground_truth
from repro.service import (ArtifactStore, CalibrationService, ChaosCalibrator,
                           ObservationBuffer, ServiceConfig, ServiceFaultPlan,
                           WindowFault, tear_artifact)

BREAKS = (8, 15, 22)
N_WINDOWS = len(BREAKS) - 1


@pytest.fixture(scope="module")
def truth():
    params = DiseaseParameters(population=50_000, initial_exposed=100)
    return make_ground_truth(params=params, horizon=25, seed=321,
                             theta_schedule=PiecewiseConstant.constant(0.30),
                             rho_schedule=PiecewiseConstant.constant(0.7))


def make_calibrator(truth, base_seed=11):
    return SequentialCalibrator(
        base_params=truth.params,
        prior=paper_first_window_prior(),
        jitter=paper_window_jitter(),
        observation_model=paper_observation_model(),
        schedule=WindowSchedule.from_breaks(list(BREAKS)),
        config=SMCConfig(n_parameter_draws=10, n_replicates=2,
                         resample_size=12, base_seed=base_seed, n_shards=2,
                         engine="binomial_leap_batched"))


def make_service(truth, root, *, plan=None, config=None, base_seed=11,
                 **kwargs):
    cal = make_calibrator(truth, base_seed=base_seed)
    if plan is not None:
        cal = ChaosCalibrator(cal, plan, sleep=lambda _s: None)
    return CalibrationService(
        cal, CheckpointStore(root / "ckpt"), ArtifactStore(root / "art"),
        config or ServiceConfig(restart=RetryPolicy(max_attempts=2),
                                horizon_days=4),
        sleep=lambda _s: None, **kwargs)


def filled_buffer(truth, *, frontier=0, up_to_day=None):
    buf = ObservationBuffer({"cases": ("cases", True)}, frontier=frontier)
    cases = truth.observations()["cases"].series
    rows = [(int(d), float(v)) for d, v in zip(cases.days, cases.values)
            if up_to_day is None or d < up_to_day]
    assert buf.add_rows("cases", rows) == []
    return buf


def artifact_bytes(root):
    return {i: (root / "art" / f"window_{i:03d}" / "forecast.json").read_bytes()
            for i in range(N_WINDOWS)}


@pytest.fixture(scope="module")
def baseline(truth, tmp_path_factory):
    """One straight-through service run; everything else compares to it."""
    root = tmp_path_factory.mktemp("baseline")
    service = make_service(truth, root)
    assert service.resume() is None
    events = service.tick(filled_buffer(truth))
    assert service.done and service.failed_window is None
    return service, root, events


class TestStraightThrough:
    def test_all_windows_seal_in_order(self, baseline):
        service, root, events = baseline
        assert [e.kind for e in events] == \
            ["window_complete", "published"] * N_WINDOWS
        assert ArtifactStore(root / "art").sealed_windows() == \
            list(range(N_WINDOWS))
        assert CheckpointStore(root / "ckpt").stored_windows() == \
            list(range(N_WINDOWS))

    def test_head_read_is_fresh(self, baseline, truth):
        service, _root, _events = baseline
        read = service.read_forecast(filled_buffer(truth))
        assert read.window_index == N_WINDOWS - 1
        assert not read.stale and read.windows_behind == 0
        assert read.age_seconds >= 0.0

    def test_payload_is_servable_and_complete(self, baseline):
        service, _root, _events = baseline
        payload = service.read_forecast().payload
        assert payload["window_index"] == N_WINDOWS - 1
        assert payload["horizon_days"] == 4
        bands = payload["channels"]["cases"]["quantiles"]
        assert set(bands) == {"0.05", "0.25", "0.5", "0.75", "0.95"}
        assert all(len(band) == 4 for band in bands.values())
        assert payload["posterior_summary"]["n_particles"] == 12
        assert payload["diagnostics"]["shard_failures"] == 0

    def test_service_matches_batch_run_bitwise(self, baseline, truth,
                                               tmp_path):
        """Streaming one window at a time is the batch run, bit for bit."""
        service, root, _events = baseline
        batch_store = CheckpointStore(tmp_path / "ckpt")
        make_calibrator(truth).run(truth.observations(), store=batch_store)
        service_store = CheckpointStore(root / "ckpt")
        for index in range(N_WINDOWS):
            assert batch_store.load_window_meta(index) == \
                service_store.load_window_meta(index)


class TestKillAndRestart:
    def test_kill_after_window_seal_resumes_bit_identical(self, baseline,
                                                          truth, tmp_path):
        service, base_root, _events = baseline
        # phase 1: only window 0's data has arrived; then the process dies
        first = make_service(truth, tmp_path)
        first.tick(filled_buffer(truth, up_to_day=BREAKS[1]))
        assert first.next_window_index == 1
        del first  # the "crash": all in-memory state is gone

        # phase 2: fresh process, resume from disk, full spool re-scan
        second = make_service(truth, tmp_path)
        resumed = second.resume()
        assert resumed is not None and resumed.window_index == 0
        second.tick(filled_buffer(truth, frontier=BREAKS[1]))
        assert second.done
        assert artifact_bytes(tmp_path) == artifact_bytes(base_root)

    def test_kill_between_checkpoint_and_artifact_heals(self, baseline,
                                                        truth, tmp_path):
        """The one crash point where the stores disagree: the checkpoint
        sealed but the artifact did not.  Resume must re-publish it,
        byte-identical."""
        import shutil
        service, base_root, _events = baseline
        first = make_service(truth, tmp_path)
        first.tick(filled_buffer(truth, up_to_day=BREAKS[1]))
        shutil.rmtree(tmp_path / "art" / "window_000")  # artifact never landed
        del first

        second = make_service(truth, tmp_path)
        second.resume()
        kinds = [e.kind for e in second.events]
        assert kinds == ["resumed", "republished"]
        second.tick(filled_buffer(truth, frontier=BREAKS[1]))
        assert artifact_bytes(tmp_path) == artifact_bytes(base_root)

    def test_resume_on_fresh_store_is_none(self, truth, tmp_path):
        assert make_service(truth, tmp_path).resume() is None

    def test_store_from_other_run_is_refused(self, baseline, truth):
        _service, root, _events = baseline
        with pytest.raises(CheckpointError, match="different run"):
            make_service(truth, root, base_seed=999)


class TestChaos:
    def test_crash_within_budget_is_bit_identical(self, baseline, truth,
                                                  tmp_path):
        plan = ServiceFaultPlan.scripted(
            WindowFault("crash", window=1, attempt=1))
        service = make_service(truth, tmp_path, plan=plan)
        events = service.tick(filled_buffer(truth))
        assert service.done
        assert "window_restart" in [e.kind for e in events]
        assert service.calibrator.injected == {0: 1, 1: 2}
        _base_service, base_root, _events = baseline
        assert artifact_bytes(tmp_path) == artifact_bytes(base_root)

    def test_budget_exhaustion_is_sticky_and_reads_degrade(self, truth,
                                                           tmp_path):
        plan = ServiceFaultPlan.scripted(
            WindowFault("crash", window=1, attempt=1),
            WindowFault("crash", window=1, attempt=2))
        service = make_service(truth, tmp_path, plan=plan)
        buffer = filled_buffer(truth)
        events = service.tick(buffer)
        assert service.failed_window == 1 and not service.done
        assert [e.kind for e in events] == \
            ["window_complete", "published", "window_restart", "window_failed"]
        # degraded read: the sealed window 0 serves, tagged stale-with-age
        read = service.read_forecast(buffer)
        assert read.window_index == 0
        assert read.stale and read.windows_behind == 1
        assert read.age_seconds >= 0.0
        # holding position: further ticks do nothing
        assert service.tick(buffer) == []

    def test_fresh_budget_after_restart_recovers(self, baseline, truth,
                                                 tmp_path):
        """The daemon-restart story: sticky failure, new process, clean
        finish — and still bit-identical artifacts."""
        plan = ServiceFaultPlan.scripted(
            WindowFault("crash", window=1, attempt=1),
            WindowFault("crash", window=1, attempt=2))
        first = make_service(truth, tmp_path, plan=plan)
        first.tick(filled_buffer(truth))
        assert first.failed_window == 1
        del first

        second = make_service(truth, tmp_path)  # no faults this time
        resumed = second.resume()
        assert resumed is not None and resumed.window_index == 0
        second.tick(filled_buffer(truth, frontier=BREAKS[1]))
        assert second.done
        _base_service, base_root, _events = baseline
        assert artifact_bytes(tmp_path) == artifact_bytes(base_root)

    def test_seeded_plan_is_reproducible(self):
        kwargs = dict(n_windows=6, rates={"crash": 0.5}, max_attempts=2)
        a = ServiceFaultPlan.seeded(7, **kwargs)
        b = ServiceFaultPlan.seeded(7, **kwargs)
        c = ServiceFaultPlan.seeded(8, **kwargs)
        assert a == b
        assert a != c
        assert a.faults  # at 50% over 12 cells, silence would be a bug

    def test_torn_head_is_never_served(self, truth, tmp_path):
        service = make_service(truth, tmp_path)
        buffer = filled_buffer(truth)
        service.tick(buffer)
        tear_artifact(service.artifacts, N_WINDOWS - 1)
        read = service.read_forecast(buffer)
        assert read.window_index == N_WINDOWS - 2
        assert read.stale and read.windows_behind == 1


class TestDeadline:
    def test_slow_window_degrades_but_completes(self, truth, tmp_path):
        class TickingClock:
            def __init__(self, step):
                self.now, self.step = 0.0, step

            def __call__(self):
                self.now += self.step
                return self.now

        config = ServiceConfig(
            restart=RetryPolicy(max_attempts=2, timeout_seconds=1.0),
            horizon_days=4)
        service = make_service(truth, tmp_path, config=config,
                               clock=TickingClock(step=3.0))
        events = service.tick(filled_buffer(truth))
        assert service.done  # a deadline miss never discards the result
        missed = [e for e in events if e.kind == "deadline_missed"]
        assert len(missed) == N_WINDOWS
        assert "falling behind" in missed[0].detail


class TestRetentionAndPartialFeeds:
    def test_keep_last_prunes_both_stores_and_resume_survives(self, truth,
                                                              tmp_path):
        config = ServiceConfig(restart=RetryPolicy(max_attempts=2),
                               horizon_days=4, keep_last=1)
        service = make_service(truth, tmp_path, config=config)
        events = service.tick(filled_buffer(truth))
        assert "pruned" in [e.kind for e in events]
        assert ArtifactStore(tmp_path / "art").sealed_windows() == \
            [N_WINDOWS - 1]
        assert CheckpointStore(tmp_path / "ckpt").stored_windows() == \
            [N_WINDOWS - 1]
        del service
        # resume needs only the newest sealed window — pruning can't hurt it
        second = make_service(truth, tmp_path, config=config)
        resumed = second.resume()
        assert resumed is not None and \
            resumed.window_index == N_WINDOWS - 1
        assert second.done

    def test_windows_wait_for_their_data(self, truth, tmp_path):
        service = make_service(truth, tmp_path)
        empty = ObservationBuffer({"cases": ("cases", True)})
        assert service.tick(empty) == []
        assert service.next_window_index == 0
        assert not service.ready(empty)
        # half of window 0 is not enough
        partial = filled_buffer(truth, up_to_day=BREAKS[0] + 3)
        assert service.tick(partial) == []
        # the moment coverage completes, the window runs
        full = filled_buffer(truth, up_to_day=BREAKS[1])
        assert service.ready(full)
        events = service.tick(full)
        assert [e.kind for e in events] == ["window_complete", "published"]
        assert full.frontier == BREAKS[1]

    def test_expected_head_tracks_ingest_not_calibration(self, truth,
                                                         tmp_path):
        service = make_service(truth, tmp_path)
        assert service.expected_head() == -1
        buffer = filled_buffer(truth)  # both windows' data present
        assert service.expected_head(buffer) == N_WINDOWS - 1
