"""Crash-safe artifact publication: seals, torn reads, degradation."""

import json

import pytest

from repro.service import ArtifactStore, TornArtifactError, tear_artifact


def payload_for(index):
    return {"window_index": index, "forecast": [1.0, 2.0, float(index)]}


class TestPublishAndSeal:
    def test_publish_seals_and_loads_back(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.publish(0, payload_for(0))
        assert store.sealed_windows() == [0]
        assert store.validate(0)
        assert store.load(0) == payload_for(0)

    def test_artifact_bytes_are_canonical(self, tmp_path):
        """Bytes are a pure function of the payload: key order, two stores,
        two publishes — all byte-identical."""
        a = ArtifactStore(tmp_path / "a")
        b = ArtifactStore(tmp_path / "b")
        a.publish(0, {"z": 1, "a": [2, 3], "m": {"y": 1, "x": 2}})
        b.publish(0, {"m": {"x": 2, "y": 1}, "a": [2, 3], "z": 1})
        fa = (a.window_dir(0) / "forecast.json").read_bytes()
        fb = (b.window_dir(0) / "forecast.json").read_bytes()
        assert fa == fb

    def test_latest_pointer_tracks_the_head(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.publish(0, payload_for(0))
        store.publish(1, payload_for(1))
        latest = json.loads((tmp_path / "LATEST.json").read_text())
        assert latest == {"window_index": 1}
        # re-publishing an older window must not move the pointer back
        store.publish(0, payload_for(0))
        latest = json.loads((tmp_path / "LATEST.json").read_text())
        assert latest == {"window_index": 1}

    def test_unsealed_window_is_invisible(self, tmp_path):
        store = ArtifactStore(tmp_path)
        directory = store.window_dir(2)
        directory.mkdir(parents=True)
        (directory / "forecast.json").write_text("{}")
        assert store.sealed_windows() == []
        assert store.read_latest() is None


class TestTornArtifacts:
    def test_load_raises_on_torn_payload(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.publish(0, payload_for(0))
        tear_artifact(store, 0)
        assert not store.validate(0)
        with pytest.raises(TornArtifactError, match="window 0"):
            store.load(0)

    def test_read_latest_serves_around_a_torn_head(self, tmp_path):
        """The degradation contract: a torn head is skipped, the previous
        sealed window is served, tagged stale."""
        store = ArtifactStore(tmp_path)
        store.publish(0, payload_for(0))
        store.publish(1, payload_for(1))
        tear_artifact(store, 1)
        read = store.read_latest(expected_window=1)
        assert read is not None
        assert read.window_index == 0
        assert read.payload == payload_for(0)
        assert read.stale
        assert read.windows_behind == 1
        assert read.age_seconds >= 0.0

    def test_read_latest_none_when_everything_is_torn(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.publish(0, payload_for(0))
        tear_artifact(store, 0)
        assert store.read_latest() is None


class TestDegradedReads:
    def test_fresh_head_read_is_not_stale(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.publish(0, payload_for(0))
        read = store.read_latest(expected_window=0)
        assert not read.stale and read.windows_behind == 0

    def test_behind_the_expected_head_is_stale_with_distance(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.publish(0, payload_for(0))
        read = store.read_latest(expected_window=3)
        assert read.stale and read.windows_behind == 3

    def test_no_expectation_means_freshest_is_fresh(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.publish(4, payload_for(4))
        read = store.read_latest()
        assert read.window_index == 4 and not read.stale


class TestPrune:
    def test_prune_keeps_newest_sealed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for i in range(4):
            store.publish(i, payload_for(i))
        assert store.prune(keep_last=2) == [0, 1]
        assert store.sealed_windows() == [2, 3]
        assert store.load(3) == payload_for(3)

    def test_prune_requires_positive_keep(self, tmp_path):
        with pytest.raises(ValueError, match=">= 1"):
            ArtifactStore(tmp_path).prune(0)

    def test_prune_ignores_unsealed_directories(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.publish(0, payload_for(0))
        store.publish(1, payload_for(1))
        torn = store.window_dir(5)
        torn.mkdir(parents=True)
        (torn / "forecast.json").write_text("{")
        assert store.prune(keep_last=1) == [0]
        assert torn.exists()  # unsealed dirs are never GC'd
