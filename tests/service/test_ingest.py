"""Supervised intake: validation, quarantine, ordering, spool re-scan."""

import json

import numpy as np
import pytest

from repro.service import IngestError, ObservationBuffer, SpoolIngest
from repro.service.ingest import REASON_OUT_OF_ORDER, REASON_UNKNOWN_STREAM

CASES_ONLY = {"cases": ("cases", True)}


def write_spool(spool_dir, name, rows):
    """Write one immutable spool file (write-then-rename contract)."""
    spool_dir.mkdir(parents=True, exist_ok=True)
    tmp = spool_dir / (name + ".tmp")
    lines = ["day,series,value"] + [f"{d},{s},{v}" for d, s, v in rows]
    tmp.write_text("\n".join(lines) + "\n")
    tmp.rename(spool_dir / name)


class TestObservationBuffer:
    def test_accepts_valid_rows_and_assembles_windows(self):
        buf = ObservationBuffer(CASES_ONLY)
        assert buf.add_rows("cases", [(d, float(10 + d))
                                      for d in range(5, 12)]) == []
        assert buf.covered(5, 12)
        assert not buf.covered(5, 13)
        obs = buf.observation_set(5, 12)
        assert obs["cases"].series.start_day == 5
        assert list(obs["cases"].series.values) == [
            float(10 + d) for d in range(5, 12)]

    def test_rejects_bad_values_with_structured_errors(self):
        buf = ObservationBuffer(CASES_ONLY)
        errors = buf.add_rows("cases", [(1, 5.0), (2, float("nan")),
                                        (3, -4.0), ("x", 1.0), (1, 6.0)])
        assert {e.reason for e in errors} == \
            {"nan_value", "negative_value", "malformed", "duplicate_day"}
        # the good row landed, the bad ones did not
        assert buf.covered(1, 2)
        assert buf.missing_days(1, 4)["cases"] == [2, 3]

    def test_unknown_stream_is_rejected_whole(self):
        buf = ObservationBuffer(CASES_ONLY)
        errors = buf.add_rows("wastewater", [(1, 2.0)])
        assert len(errors) == 1
        assert errors[0].reason == REASON_UNKNOWN_STREAM
        assert "wastewater" in errors[0].detail

    def test_advanced_frontier_rejects_late_arrivals(self):
        buf = ObservationBuffer(CASES_ONLY)
        buf.add_rows("cases", [(d, 1.0) for d in range(0, 8)])
        buf.advance_frontier(8)
        errors = buf.add_rows("cases", [(3, 9.0), (8, 2.0)])
        assert [e.reason for e in errors] == ["duplicate_day"]
        # a late *new* day below the frontier (never seen before)
        buf2 = ObservationBuffer(CASES_ONLY)
        buf2.add_rows("cases", [(d, 1.0) for d in range(0, 7)])
        buf2.advance_frontier(8)
        late = buf2.add_rows("cases", [(7, 2.0)])
        assert [e.reason for e in late] == [REASON_OUT_OF_ORDER]

    def test_initial_frontier_history_is_silently_skipped(self):
        """A restarted daemon re-reads history; history is not an error."""
        buf = ObservationBuffer(CASES_ONLY, frontier=10)
        errors = buf.add_rows("cases", [(3, 1.0), (4, float("nan")),
                                        (10, 5.0)])
        assert errors == []          # days < 10 skipped, even invalid ones
        assert buf.covered(10, 11)
        assert not buf.covered(9, 11)

    def test_frontier_cannot_retreat(self):
        buf = ObservationBuffer(CASES_ONLY, frontier=5)
        with pytest.raises(ValueError, match="only advance"):
            buf.advance_frontier(4)

    def test_observation_set_requires_full_coverage(self):
        buf = ObservationBuffer(CASES_ONLY)
        buf.add_rows("cases", [(0, 1.0), (2, 1.0)])
        with pytest.raises(ValueError, match="missing"):
            buf.observation_set(0, 3)

    def test_multi_stream_coverage_needs_every_stream(self):
        buf = ObservationBuffer()  # default: cases + deaths
        buf.add_rows("cases", [(d, 1.0) for d in range(0, 4)])
        assert not buf.covered(0, 4)
        buf.add_rows("deaths", [(d, 0.0) for d in range(0, 4)])
        assert buf.covered(0, 4)
        obs = buf.observation_set(0, 4)
        assert obs["cases"].biased and not obs["deaths"].biased


class TestSpoolIngest:
    def test_scan_reads_each_file_once(self, tmp_path):
        spool = tmp_path / "spool"
        write_spool(spool, "a.csv", [(d, "cases", 1.0) for d in range(0, 5)])
        buf = ObservationBuffer(CASES_ONLY)
        ingest = SpoolIngest(spool, buf)
        assert ingest.scan() == []
        # second scan is a no-op: no duplicate_day storm from re-reading
        assert ingest.scan() == []
        write_spool(spool, "b.csv", [(d, "cases", 1.0) for d in range(5, 9)])
        assert ingest.scan() == []
        assert buf.covered(0, 9)

    def test_rejections_are_quarantined_as_jsonl(self, tmp_path):
        spool = tmp_path / "spool"
        quarantine = tmp_path / "q" / "rejects.jsonl"
        write_spool(spool, "bad.csv",
                    [(0, "cases", 1.0), (1, "cases", "nan"),
                     (2, "cases", -3.0), (0, "wastewater", 9.0)])
        buf = ObservationBuffer(CASES_ONLY)
        ingest = SpoolIngest(spool, buf, quarantine_path=quarantine)
        errors = ingest.scan()
        assert {e.reason for e in errors} == \
            {"nan_value", "negative_value", REASON_UNKNOWN_STREAM}
        records = [json.loads(line)
                   for line in quarantine.read_text().splitlines()]
        assert len(records) == len(errors)
        assert all(r["source"] == "bad.csv" for r in records)
        # the calibrator-facing buffer holds only the good row
        assert buf.covered(0, 1) and not buf.covered(0, 2)

    def test_structurally_broken_file_is_one_error_not_a_crash(self, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        (spool / "broken.csv").write_text("not,a,spool,header\n1,2,3,4\n")
        ingest = SpoolIngest(spool, ObservationBuffer(CASES_ONLY))
        errors = ingest.scan()
        assert len(errors) == 1
        assert errors[0].reason == "malformed"
        assert errors[0].source == "broken.csv"

    def test_missing_spool_dir_is_quietly_empty(self, tmp_path):
        ingest = SpoolIngest(tmp_path / "nope", ObservationBuffer(CASES_ONLY))
        assert ingest.scan() == []

    def test_restart_rescan_is_deterministic(self, tmp_path):
        """Fresh process + full re-scan rebuilds the same buffer state."""
        spool = tmp_path / "spool"
        write_spool(spool, "a.csv", [(d, "cases", float(d))
                                     for d in range(0, 10)])
        write_spool(spool, "b.csv", [(d, "cases", float(d))
                                     for d in range(10, 15)])

        first = ObservationBuffer(CASES_ONLY)
        SpoolIngest(spool, first).scan()
        first.advance_frontier(10)  # a window sealed; then we "crash"

        resumed = ObservationBuffer(CASES_ONLY, frontier=10)
        errors = SpoolIngest(spool, resumed).scan()
        assert errors == []  # re-read history is skipped, not flagged
        a = first.observation_set(10, 15)["cases"].series.values
        b = resumed.observation_set(10, 15)["cases"].series.values
        assert np.array_equal(a, b)


class TestIngestError:
    def test_render_and_dict_roundtrip(self):
        err = IngestError(stream="cases", day=4, reason="nan_value",
                          detail="not a number", source="f.csv")
        assert "f.csv" in err.render() and "day 4" in err.render()
        assert err.to_dict()["reason"] == "nan_value"
