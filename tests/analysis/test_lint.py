"""The linter linted: rule-by-rule assertions over the bug-shape fixtures.

The fixtures reproduce the repo's two documented reproducibility bugs —
PR 1's rogue RNG construction and PR 5's stream-tag aliasing — plus one
example per remaining rule family.  Each test pins *which* rule fires
*where*, so a rule that silently stops matching its bug shape fails here
rather than in a future post-mortem.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.lint import classify_path, main

SRC = str(Path(__file__).parents[2] / "src")
FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"


def rules_by_file(violations) -> dict[str, list[str]]:
    out: dict[str, list[str]] = {}
    for v in violations:
        out.setdefault(Path(v.path).name, []).append(v.rule)
    return out


class TestRuleFamilies:
    def test_rogue_rng_shape_pr1(self):
        """Every RNG construction path in the PR 1 fixture trips REPRO101."""
        violations = run_lint([str(BAD / "core" / "rogue_rng.py")],
                              select=["REPRO101"])
        lines = sorted(v.line for v in violations)
        assert all(v.rule == "REPRO101" for v in violations)
        # 2 import-level (stdlib random, numpy.random import-from) plus
        # 4 construction calls (default_rng x3 routes, SeedSequence) plus
        # the stdlib random.random() draw.
        assert len(violations) == 7, [v.render() for v in violations]
        assert lines[0] <= 8  # the imports are flagged where they happen

    def test_literal_tag_shape_pr5(self):
        """The PR 5 aliasing fixture: literal, unregistered, and missing
        tags all trip REPRO102; the bare constant assignment REPRO103."""
        path = str(BAD / "core" / "literal_tag.py")
        v102 = run_lint([path], select=["REPRO102"])
        v103 = run_lint([path], select=["REPRO103"])
        assert len(v102) == 5, [v.render() for v in v102]
        assert {v.rule for v in v102} == {"REPRO102"}
        # both bare constants (stream + purpose patterns)
        assert len(v103) == 2, [v.render() for v in v103]

    def test_duplicate_registration(self):
        violations = run_lint([str(BAD / "duplicate_tags.py")],
                              select=["REPRO104"])
        assert len(violations) == 1
        v = violations[0]
        assert "41" in v.message and "alpha" in v.message \
            and "beta" in v.message

    def test_determinism_hazards(self):
        path = str(BAD / "core" / "wall_clock.py")
        v201 = run_lint([path], select=["REPRO201"])
        v202 = run_lint([path], select=["REPRO202"])
        assert len(v201) == 2, [v.render() for v in v201]  # time + datetime
        assert len(v202) == 2, [v.render() for v in v202]  # fromiter + for
        # the sorted() path must NOT be flagged
        flagged_lines = {v.line for v in v202}
        sorted_line = next(
            i + 1 for i, text in enumerate(
                (BAD / "core" / "wall_clock.py").read_text().splitlines())
            if "sorted(seed_pool)" in text)
        assert sorted_line not in flagged_lines

    def test_executor_hygiene(self):
        path = str(BAD / "hpc" / "closure_dispatch.py")
        v301 = run_lint([path], select=["REPRO301"])
        v302 = run_lint([path], select=["REPRO302"])
        assert len(v301) == 2, [v.render() for v in v301]  # lambda + closure
        assert len(v302) == 2, [v.render() for v in v302]  # append + comp

    def test_typed_core_annotations(self):
        violations = run_lint([str(BAD / "core" / "untyped.py")],
                              select=["REPRO401"])
        messages = {v.message.split("(")[0] for v in violations}
        assert len(violations) == 3, [v.render() for v in violations]
        assert any("missing_everything" in m for m in messages)
        assert any("missing_return" in m for m in messages)
        assert any("method_missing_arg" in m for m in messages)
        # `self` must not be demanded
        assert not any("self" in v.message for v in violations)

    def test_clean_fixture_is_clean(self):
        assert run_lint([str(GOOD)]) == []


class TestPathClassification:
    def test_seeding_is_the_only_rng_site(self):
        ctx = classify_path(Path("src/repro/seir/seeding.py"))
        assert ctx.rng_allowed and ctx.deterministic and ctx.typed

    def test_core_is_typed_and_deterministic(self):
        ctx = classify_path(Path("src/repro/core/weights.py"))
        assert not ctx.rng_allowed and ctx.deterministic and ctx.typed

    def test_seir_is_deterministic_but_not_typed(self):
        ctx = classify_path(Path("src/repro/seir/tauleap.py"))
        assert not ctx.rng_allowed and ctx.deterministic and not ctx.typed

    def test_fixture_mirror_inherits_rules(self):
        ctx = classify_path(BAD / "core" / "untyped.py")
        assert ctx.typed and ctx.deterministic

    def test_outside_subsystems_gets_base_rules_only(self):
        ctx = classify_path(Path("src/repro/viz/ascii.py"))
        assert not (ctx.rng_allowed or ctx.deterministic or ctx.typed)


class TestCli:
    def test_exit_zero_on_repo(self):
        assert main([SRC]) == 0

    def test_exit_nonzero_on_bug_fixtures(self, capsys):
        assert main([str(BAD)]) == 1
        out = capsys.readouterr().out
        assert "REPRO101" in out and "REPRO102" in out

    def test_select_filters(self, capsys):
        assert main([str(BAD / "core" / "untyped.py"),
                     "--select", "REPRO1"]) == 0
        assert main([str(BAD / "core" / "untyped.py"),
                     "--select", "REPRO4"]) == 1

    def test_json_output(self, capsys):
        import json
        main([str(BAD / "duplicate_tags.py"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload and payload[0]["rule"] == "REPRO104"

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in ("REPRO101", "REPRO201", "REPRO301", "REPRO401"):
            assert family in out

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint(["no/such/path"])


class TestSelfApplication:
    def test_repo_source_tree_is_contract_clean(self):
        """The enforced guarantee: the shipped tree has zero violations."""
        assert run_lint([SRC]) == []

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        violations = run_lint([str(bad)])
        assert len(violations) == 1 and violations[0].rule == "REPRO000"


class TestAllowDirectives:
    """The scoped '# repro-allow: RULE reason' waiver mechanism (REPRO203)."""

    MISUSE = BAD / "core" / "allow_misuse.py"
    ALLOWED = GOOD / "core" / "allowed_clock.py"

    def test_valid_directives_silence_exactly_their_line(self):
        """Trailing, standalone, and comment-separated directives all bind
        to the violating line; nothing else is reported."""
        assert run_lint([str(self.ALLOWED)]) == []

    def test_broken_directives_excuse_nothing(self):
        """A reason-less, unknown-rule, or malformed directive leaves the
        underlying REPRO201 violation standing."""
        v201 = run_lint([str(self.MISUSE)], select=["REPRO201"])
        assert len(v201) == 3, [v.render() for v in v201]

    def test_every_misuse_shape_is_flagged(self):
        v203 = run_lint([str(self.MISUSE)], select=["REPRO203"])
        assert len(v203) == 5, [v.render() for v in v203]
        messages = " | ".join(v.message for v in v203)
        assert "unused" in messages
        assert "no reason" in messages
        assert "REPRO999" in messages
        assert "repro-allow: RULEID" in messages  # the malformed shape hint
        assert "REPRO203" in messages  # the unwaivable-rule attempt

    def test_unused_directive_points_at_its_own_line(self):
        v203 = run_lint([str(self.MISUSE)], select=["REPRO203"])
        unused = [v for v in v203 if "unused" in v.message]
        assert len(unused) == 1
        source_lines = self.MISUSE.read_text().splitlines()
        directive_line = next(
            i + 1 for i, text in enumerate(source_lines)
            if "nothing below actually violates" in text)
        assert unused[0].line == directive_line

    def test_directive_does_not_blanket_the_file(self, tmp_path):
        """One directive waives one line; a second violation elsewhere in
        the same file still fires."""
        core = tmp_path / "core"
        core.mkdir()
        mod = core / "two_clocks.py"
        mod.write_text(
            "import time\n"
            "\n"
            "\n"
            "def allowed() -> float:\n"
            "    # repro-allow: REPRO201 excused once\n"
            "    return time.time()\n"
            "\n"
            "\n"
            "def not_allowed() -> float:\n"
            "    return time.time()\n")
        violations = run_lint([str(mod)], select=["REPRO2"])
        assert len(violations) == 1
        assert violations[0].rule == "REPRO201"
        assert violations[0].line == 10

    def test_prose_mentioning_repro_allow_is_ignored(self, tmp_path):
        core = tmp_path / "core"
        core.mkdir()
        mod = core / "prose.py"
        mod.write_text(
            "# This module documents the repro-allow mechanism in prose.\n"
            "X: int = 1\n")
        assert run_lint([str(mod)]) == []

    def test_directives_inside_strings_are_not_parsed(self, tmp_path):
        core = tmp_path / "core"
        core.mkdir()
        mod = core / "stringy.py"
        mod.write_text(
            'DOC: str = "# repro-allow: REPRO201 not a real directive"\n')
        assert run_lint([str(mod)]) == []

    def test_service_is_a_deterministic_subsystem(self):
        ctx = classify_path(Path("src/repro/service/artifacts.py"))
        assert ctx.deterministic and not ctx.typed


class TestSelectValidation:
    """Regression: an unknown --select prefix used to silently select
    nothing, which in CI reads as a clean run."""

    def test_unknown_selector_raises(self):
        with pytest.raises(ValueError, match="REPOR1"):
            run_lint([str(BAD / "duplicate_tags.py")], select=["REPOR1"])

    def test_unknown_selector_is_cli_exit_2(self, capsys):
        assert main([str(BAD / "duplicate_tags.py"),
                     "--select", "REPOR1"]) == 2
        assert "REPOR1" in capsys.readouterr().err

    def test_known_prefix_still_selects_families(self):
        violations = run_lint([str(BAD / "duplicate_tags.py")],
                              select=["REPRO1"])
        assert violations and all(v.rule.startswith("REPRO1")
                                  for v in violations)

    def test_flow_family_selectors_are_valid_prefixes(self):
        """REPRO5xx lives in the shared catalogue, so selecting it is not
        a usage error even though the per-file lint never emits it."""
        assert run_lint([str(BAD / "duplicate_tags.py")],
                        select=["REPRO5"]) == []


class TestDeterministicPartsExtension:
    """inference/ joined the REPRO201/202 surface; perf_counter and
    monotonic joined the wall-clock set."""

    def test_inference_is_deterministic(self):
        ctx = classify_path(Path("src/repro/inference/api.py"))
        assert ctx.deterministic and not ctx.typed

    def test_perf_counter_is_a_wall_clock_read(self, tmp_path):
        part = tmp_path / "inference"
        part.mkdir()
        mod = part / "timing.py"
        mod.write_text(
            "import time\n"
            "\n"
            "\n"
            "def measure():\n"
            "    return time.perf_counter() + time.monotonic()\n")
        violations = run_lint([str(mod)], select=["REPRO201"])
        assert len(violations) == 2, [v.render() for v in violations]

    def test_shipped_inference_wall_time_is_waived_with_reasons(self):
        """The four perf_counter reads in inference/api.py survive only
        through scoped repro-allow directives — and those must be in
        active use, not stale."""
        api = Path(SRC) / "repro" / "inference" / "api.py"
        assert run_lint([str(api)]) == []
        directives = [line for line in api.read_text().splitlines()
                      if "repro-allow: REPRO201" in line]
        assert len(directives) == 4
        assert all("metadata" in d for d in directives)


class TestOutputFormats:
    def test_sarif_format(self, tmp_path):
        report = tmp_path / "lint.sarif"
        assert main([str(BAD / "duplicate_tags.py"), "--format", "sarif",
                     "--output", str(report)]) == 1
        import json
        payload = json.loads(report.read_text())
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["results"][0]["ruleId"] == "REPRO104"

    def test_output_flag_writes_text_report(self, tmp_path):
        report = tmp_path / "lint.txt"
        assert main([str(BAD / "duplicate_tags.py"),
                     "--output", str(report)]) == 1
        assert "REPRO104" in report.read_text()


class TestScenarioTagFixtures:
    """This PR's scenario stream (bank tag 5) guarded by the same rules
    that caught the PR 5 window-stream aliasing."""

    def test_scenario_tag_misuse_shapes(self):
        path = str(BAD / "core" / "scenario_tag.py")
        v102 = run_lint([path], select=["REPRO102"])
        v103 = run_lint([path], select=["REPRO103"])
        # literal mix_seed tag, unregistered constant, literal purpose
        assert len(v102) == 3, [v.render() for v in v102]
        assert {v.rule for v in v102} == {"REPRO102"}
        # the bare `_SCENARIO_STREAM = 5` assignment
        assert len(v103) == 1, [v.render() for v in v103]

    def test_scenario_tag_double_claim(self):
        violations = run_lint([str(BAD / "scenario_duplicate_tags.py")],
                              select=["REPRO104"])
        assert len(violations) == 1
        message = violations[0].message
        assert "5" in message
        assert "scenario_x" in message and "scenario_y" in message

    def test_shipped_scenario_module_is_clean(self):
        """The real implementation registers its tag properly."""
        scenarios = Path(SRC) / "repro" / "core" / "scenarios.py"
        seeding = Path(SRC) / "repro" / "seir" / "seeding.py"
        assert run_lint([str(scenarios), str(seeding)]) == []
