"""Generators crossing the executor payload boundary (REPRO503 x3).

Three escape shapes: a payload dataclass declaring a generator-typed
field, a bank-derived generator embedded in the dispatched task
expressions, and a dispatch target whose signature demands a generator
parameter.  In every case the pickled generator state forks the stream
per worker and breaks the ``(base_seed, shard layout)`` contract.
"""

from dataclasses import dataclass

import numpy as np

from repro.seir.seeding import register_ancillary_purpose

_PURPOSE_LEAK = register_ancillary_purpose("payload_leak", 7703)


@dataclass(frozen=True)
class LeakyTask:
    member: int
    rng: np.random.Generator  # generator field riding the payload


def run_leaky(task):
    return task.rng.normal()


def run_with_rng(member: int, rng: np.random.Generator) -> float:
    return float(rng.normal()) + member


def launch(executor, bank, n):
    rng = bank.ancillary_generator(purpose=_PURPOSE_LEAK)
    tasks = [LeakyTask(member=i, rng=rng) for i in range(n)]
    return executor.map(run_leaky, tasks)


def launch_param(executor, members):
    return executor.map(run_with_rng, members)
