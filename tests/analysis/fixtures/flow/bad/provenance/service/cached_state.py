"""Generator state cached on a long-lived service object (REPRO502 x2).

Service/supervisor objects live across calibration windows by design, so
both escape shapes here turn a transient stream into cross-window state:
the generator-typed dataclass field declares the intent, and the
``start`` method realises it by storing the bank-derived stream on
``self``.
"""

import numpy as np

from repro.seir.seeding import register_ancillary_purpose

_PURPOSE_SERVICE_NOISE = register_ancillary_purpose("service_noise", 7702)


class NoiseService:
    rng: np.random.Generator  # generator-typed field on service state

    def start(self, bank):
        # stores the stream for the service's whole lifetime
        self._rng = bank.ancillary_generator(purpose=_PURPOSE_SERVICE_NOISE)

    def tick(self, n):
        return self._rng.normal(size=n)
