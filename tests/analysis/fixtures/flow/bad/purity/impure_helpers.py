"""Helper half of the cross-file impurity fixture: one effect per rule.

Each function carries exactly one of the four effect classes the purity
pass rejects inside dispatch closures — wall-clock (REPRO511), ambient
RNG (REPRO512), a mutable module-global write (REPRO513), and filesystem
access outside the declared stores (REPRO514).
"""

import time

import numpy as np

_CALLS = 0


def stamp():
    return time.time()  # REPRO511: retried shards see different values


def draw_legacy():
    return float(np.random.rand())  # REPRO512: hidden global RandomState


def bump_counter():
    global _CALLS
    _CALLS += 1  # REPRO513: per-worker state the payload never carried


def spill(value):
    with open("/tmp/spill.txt", "w") as fh:  # REPRO514: undeclared store
        fh.write(str(value))
