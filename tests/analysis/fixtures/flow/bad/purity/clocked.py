"""Dispatcher half of the cross-file impurity fixture.

``run_task`` itself contains no effect — every impurity hides one call
away in ``impure_helpers``, which is exactly the distance at which the
per-file REPRO2xx rules go blind.  The flow pass walks the closure and
anchors one violation per effect at the offending helper line.
"""

from dataclasses import dataclass

from impure_helpers import bump_counter, draw_legacy, spill, stamp


@dataclass(frozen=True)
class NoisyTask:
    member: int
    seed: int


def run_task(task):
    started = stamp()
    noise = draw_legacy()
    bump_counter()
    spill(noise)
    return started + noise + task.seed


def launch(executor, tasks):
    return executor.map(run_task, tasks)
