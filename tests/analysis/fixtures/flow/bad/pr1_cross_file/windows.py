"""Consumer half of the cross-file PR 1 reproduction.

The module-level ``_NOISE`` cache is exactly the PR 1 bug: a stream
derived once and reused across every window, so each window re-serves the
same draws instead of advancing its own substream.  Because the generator
construction lives behind ``rngtools.noise_rng`` in another file, the
per-file lint sees only a call to an ordinary helper — zero findings.
The interprocedural pass types the helper's return and flags this line as
REPRO501.
"""

from rngtools import noise_rng

from repro.seir.seeding import SeedSequenceBank

_BANK = SeedSequenceBank(base_seed=1234)

_NOISE = noise_rng(_BANK)  # cached across windows: the PR 1 bug, cross-file


def draw_window_noise(n):
    return _NOISE.normal(size=n)
