"""Helper half of the cross-file PR 1 reproduction.

This file is individually blameless: the purpose tag is registered, the
generator comes from the seed bank, and there is no ``numpy.random`` call
for the per-file lint to notice.  The missing return annotation is the
crux — ``repro lint`` cannot type ``noise_rng``'s return value, so the
caller-side cache in ``windows.py`` looks like an ordinary assignment to
it.  The flow pass infers the return type from the returned expression.
"""

from repro.seir.seeding import register_ancillary_purpose

_PURPOSE_WINDOW_NOISE = register_ancillary_purpose("window_noise", 7701)


def noise_rng(bank):
    """Derive the window-noise stream from the bank (untyped return)."""
    return bank.ancillary_generator(purpose=_PURPOSE_WINDOW_NOISE)
