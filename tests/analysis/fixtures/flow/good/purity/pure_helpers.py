"""Helper half of the clean cross-file pipeline: pure arithmetic only."""


def scale(value, factor):
    return value * factor


def combine(a, b):
    return a + b
