"""Dispatcher half of the clean cross-file pipeline.

The closure (``run_task`` -> ``scale``/``combine``) is a pure function of
the task dataclass; the flow pass certifies it with zero effects and a
fully resolved closure.
"""

from dataclasses import dataclass

from pure_helpers import combine, scale


@dataclass(frozen=True)
class CleanTask:
    member: int
    seed: int


def run_task(task):
    return combine(scale(task.member, 2.0), float(task.seed))


def launch(executor, tasks):
    return executor.map(run_task, tasks)
