"""Consumer half of the fixed PR 1 shape.

The stream is derived where it is consumed, every call, from the bank the
caller passes in — nothing outlives a window, so the flow pass has
nothing to flag even though the same cross-file helper is involved.
"""

from rngtools import noise_rng


def draw_window_noise(bank, n):
    rng = noise_rng(bank)
    return rng.normal(size=n)
