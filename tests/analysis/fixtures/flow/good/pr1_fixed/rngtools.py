"""Helper half of the fixed PR 1 shape — identical to the bad variant.

The helper was never the problem; the caller's module-level cache was.
Registering the same ``(window_noise, 7701)`` pair as the bad fixture is
deliberate: idempotent re-registration doubles as the cross-fixture pin.
"""

from repro.seir.seeding import register_ancillary_purpose

_PURPOSE_WINDOW_NOISE = register_ancillary_purpose("window_noise", 7701)


def noise_rng(bank):
    """Derive the window-noise stream from the bank (untyped return)."""
    return bank.ancillary_generator(purpose=_PURPOSE_WINDOW_NOISE)
