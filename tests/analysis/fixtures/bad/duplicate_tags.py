"""Fixture: two registrations claiming one (domain, tag) for different
stream names — the aliasing the import-time registry guard rejects, caught
here statically (REPRO104) even though this module is never imported."""

from repro.seir.seeding import register_stream_tag

_ALPHA_STREAM = register_stream_tag("alpha", 41)
_BETA_STREAM = register_stream_tag("beta", 41)
