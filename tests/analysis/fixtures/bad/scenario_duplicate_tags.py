"""Fixture: a second consumer claiming the scenario bank tag (5) under a
different stream name — the collision REPRO104 must flag statically before
the import-time registry guard ever gets a chance to."""

from repro.seir.seeding import register_stream_tag

_SCENARIO_X_STREAM = register_stream_tag("scenario_x", 5)
_SCENARIO_Y_STREAM = register_stream_tag("scenario_y", 5)
