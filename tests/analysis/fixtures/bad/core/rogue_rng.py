"""Fixture reproducing the PR 1 bug shape: RNG construction outside the
seed bank.  The original defect reused a cross-window ancillary stream by
building a private generator instead of asking the bank for a purposed one.
Every construction path below must trip REPRO101."""

import numpy as np
from numpy.random import SeedSequence, default_rng
import random

from numpy import random as np_random


def private_generator(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def private_seed_sequence(seed: int) -> SeedSequence:
    return np.random.SeedSequence(seed)


def aliased_generator(seed: int) -> np.random.Generator:
    return default_rng(seed)


def module_aliased(seed: int) -> np.random.Generator:
    return np_random.default_rng(seed)


def stdlib_draw() -> float:
    return random.random()
