"""Fixture: determinism hazards inside a deterministic subsystem —
wall-clock reads (REPRO201) and arrays built from unordered sets
(REPRO202)."""

import time
from datetime import datetime

import numpy as np


def stamp_run() -> float:
    return time.time()


def stamp_run_iso() -> str:
    return datetime.now().isoformat()


def seeds_from_set(raw: list) -> np.ndarray:
    return np.fromiter(set(raw), dtype=np.int64)


def iterate_unsorted(names: list) -> list:
    out = []
    for name in {n for n in names}:
        out.append(name)
    return out


def sorted_is_fine(seed_pool: set) -> np.ndarray:
    # Not a violation: sorted() fixes the order before the array is built.
    return np.array(sorted(seed_pool))
