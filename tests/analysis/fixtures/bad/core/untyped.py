"""Fixture: incomplete signature annotations in a typed-core path
(REPRO401)."""


def missing_everything(values, weights):
    return sum(values) + sum(weights)


def missing_return(values: list):
    del values


def annotated(values: list) -> int:
    return len(values)


class Holder:
    def method_missing_arg(self, q) -> float:
        return float(q)

    def fine(self, q: float) -> float:
        return q
