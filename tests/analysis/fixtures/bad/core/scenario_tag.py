"""Fixture guarding the scenario stream tag (bank tag 5, this PR).

The scenario axis earns its own reserved stream; the exact failure mode
that aliased the window streams in PR 5 — a bare integer tag nothing
checks — must keep tripping REPRO102/103 when written against the new
tag, so scenario seeds can never silently collide with window streams."""

from repro.seir.seeding import SeedSequenceBank, mix_seed

# REPRO103: the scenario tag assigned bare instead of registered.
_SCENARIO_STREAM = 5


def scenario_seed(base_seed: int, scenario_key: int) -> int:
    # REPRO102: literal scenario tag in the reserved position.
    return mix_seed(base_seed, 5, scenario_key)


def scenario_seed_via_constant(base_seed: int, scenario_key: int) -> int:
    # REPRO102: named, but the constant was never registered.
    return mix_seed(base_seed, _SCENARIO_STREAM, scenario_key)


def scenario_rng(bank: SeedSequenceBank, scenario_key: int) -> object:
    # REPRO102: literal purpose standing in for the scenario tag.
    return bank.ancillary_generator(purpose=5)
