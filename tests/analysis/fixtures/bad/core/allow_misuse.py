"""Fixture: every way to misuse a ``repro-allow`` directive (REPRO203).

An unused directive, a reason-less one, an unknown rule id, a missing
colon, and an attempt to waive the waiver rule itself — and except for
the unused case, the underlying REPRO201 violation must still fire,
because a broken directive excuses nothing."""

import time


def unused_directive(x: float) -> float:
    # repro-allow: REPRO201 nothing below actually violates the rule
    return x + 1.0


def reasonless(sealed_at: float) -> float:
    # repro-allow: REPRO201
    return time.time() - sealed_at


def unknown_rule() -> float:
    # repro-allow: REPRO999 no such rule exists
    return time.time()


def missing_colon() -> float:
    # repro-allow REPRO201 the colon is mandatory
    return time.time()


def unwaivable() -> int:
    # repro-allow: REPRO203 the waiver rule cannot waive itself
    return 0
