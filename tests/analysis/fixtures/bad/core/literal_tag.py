"""Fixture reproducing the PR 5 bug shape: integer-literal and
unregistered stream tags.  ``window_restart_seed``/``window_draw_seed``
aliased because their tags were bare integers nothing checked; every tag
use below must trip REPRO102, and the bare-assigned constant REPRO103."""

from repro.seir.seeding import SeedSequenceBank, mix_seed

# REPRO103: a stream constant assigned without registration — exactly how
# the aliasing bug survived review.
_WINDOW_DRAW_STREAM = 3
_PURPOSE_LOCAL = 7


def draw_seed(base_seed: int, window_index: int) -> int:
    # REPRO102: literal tag in the reserved position.
    return mix_seed(base_seed, 3, window_index)


def restart_seed(base_seed: int, window_index: int) -> int:
    # REPRO102: named, but the constant was never registered.
    return mix_seed(base_seed, _WINDOW_DRAW_STREAM, window_index)


def tagless(base_seed: int) -> int:
    # REPRO102: no stream tag at all.
    return mix_seed(base_seed)


def thinning_rng(bank: SeedSequenceBank) -> object:
    # REPRO102: literal ancillary purpose.
    return bank.ancillary_generator(10)


def local_purpose_rng(bank: SeedSequenceBank) -> object:
    # REPRO102: unregistered purpose constant.
    return bank.ancillary_generator(purpose=_PURPOSE_LOCAL)
