"""Fixture: executor payload hygiene violations — lambdas and closures
dispatched through an Executor (REPRO301) and raw tuple payloads instead of
declared dataclass tasks (REPRO302)."""

from repro.hpc.executor import Executor


def dispatch_lambda(executor: Executor, values: list) -> list:
    return executor.map(lambda v: v + 1, values)


def dispatch_closure(executor: Executor, values: list, offset: int) -> list:
    def _shift(v: int) -> int:
        return v + offset

    return executor.map(_shift, values)


def run_member(task: tuple) -> int:
    payload, seed = task
    return len(payload) + seed


def dispatch_tuples(executor: Executor, payloads: list) -> list:
    tasks = []
    for i, payload in enumerate(payloads):
        tasks.append((payload, i))
    return executor.map(run_member, tasks)


def dispatch_tuple_comprehension(executor: Executor, payloads: list) -> list:
    tasks = [(payload, i) for i, payload in enumerate(payloads)]
    return executor.map(run_member, tasks)
