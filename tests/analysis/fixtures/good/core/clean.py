"""Fixture: a fully contract-compliant module — registered stream tags,
no RNG construction, dataclass executor payloads, complete annotations.
The linter must report nothing here."""

from dataclasses import dataclass

import numpy as np

from repro.hpc.executor import Executor
from repro.seir.seeding import (SeedSequenceBank, mix_seed,
                                register_ancillary_purpose,
                                register_stream_tag)

_CLEAN_STREAM = register_stream_tag("clean_fixture", 9900)
_PURPOSE_CLEAN = register_ancillary_purpose("clean_fixture_purpose", 9901)


@dataclass(frozen=True)
class MemberTask:
    payload: dict
    seed: int


def run_member(task: MemberTask) -> int:
    return len(task.payload) + task.seed


def draw_seed(base_seed: int, window_index: int) -> int:
    return mix_seed(base_seed, _CLEAN_STREAM, window_index)


def purposed_rng(bank: SeedSequenceBank) -> np.random.Generator:
    return bank.ancillary_generator(purpose=_PURPOSE_CLEAN)


def dispatch(executor: Executor, payloads: list) -> list:
    tasks = [MemberTask(payload=p, seed=i) for i, p in enumerate(payloads)]
    return executor.map(run_member, tasks)


def ordered_from_set(seed_pool: set) -> np.ndarray:
    return np.array(sorted(seed_pool))
