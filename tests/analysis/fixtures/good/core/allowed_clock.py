"""Fixture: wall-clock reads excused by scoped ``repro-allow`` directives
— each directive carries a reason and covers exactly the violating line,
so the linter must report nothing here (neither REPRO201 nor REPRO203)."""

import time


def artifact_age(sealed_at: float) -> float:
    # repro-allow: REPRO201 staleness age is wall-clock by definition
    return time.time() - sealed_at


def stamp_log_line() -> float:
    return time.time()  # repro-allow: REPRO201 operator log timestamp only


def binding_skips_comments(sealed_at: float) -> float:
    # repro-allow: REPRO201 wall-clock by definition
    # (an intervening comment line does not break the binding)
    return time.time() - sealed_at
