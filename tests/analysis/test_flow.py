"""The flow pass tested: cross-file bug shapes, certificates, cache, CLI.

The central claim — asserted, not narrated — is that the interprocedural
pass catches the PR 1 rogue-stream bug *across file boundaries* where the
per-file lint provably reports nothing, and that the shipped tree holds
the purity contract at every executor dispatch site.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.flow import run_flow
from repro.analysis.flow.report import main

SRC = str(Path(__file__).parents[2] / "src")
FLOW_FIXTURES = Path(__file__).parent / "fixtures" / "flow"
BAD = FLOW_FIXTURES / "bad"
GOOD = FLOW_FIXTURES / "good"

#: Module-level task functions the shipped tree dispatches through the
#: Executor protocol; every one must carry a pure certificate.
SHIPPED_DISPATCH_TARGETS = {
    "repro.hpc.sharding.run_shard",
    "repro.sim.ensemble._run_member_task",
    "repro.core.smc._run_first_window_task",
    "repro.core.smc._run_continuation_task",
}


class TestPR1CrossFile:
    """The acceptance-criterion pair: flow catches what lint misses."""

    PR1 = str(BAD / "pr1_cross_file")

    def test_lint_provably_misses_the_cross_file_rogue_stream(self):
        """Both halves are individually lint-clean — the construction
        hides behind an untyped helper in another file."""
        assert run_lint([self.PR1]) == []

    def test_flow_catches_it_as_repro501(self):
        violations, _ = run_flow([self.PR1])
        assert [v.rule for v in violations] == ["REPRO501"]
        v = violations[0]
        assert v.path.endswith("windows.py")
        assert "_NOISE" in v.message and "PR 1" in v.message

    def test_fixed_variant_is_clean(self):
        violations, _ = run_flow([str(GOOD / "pr1_fixed")])
        assert violations == []


class TestProvenance:
    def test_service_state_escapes(self):
        """Generator-typed field + self-attribute store: exactly two
        REPRO502 findings in the service fixture."""
        violations, _ = run_flow([str(BAD / "provenance")],
                                 select=["REPRO502"])
        assert len(violations) == 2, [v.render() for v in violations]
        assert all(v.path.endswith("cached_state.py") for v in violations)

    def test_payload_escapes(self):
        """Generator field on the payload class, generator embedded in the
        task expression, generator parameter on the dispatch target:
        exactly three REPRO503 findings."""
        violations, _ = run_flow([str(BAD / "provenance")],
                                 select=["REPRO503"])
        assert len(violations) == 3, [v.render() for v in violations]
        messages = " | ".join(v.message for v in violations)
        assert "field" in messages
        assert "embedded" in messages
        assert "parameter" in messages

    def test_nothing_else_fires_on_the_provenance_fixture(self):
        violations, _ = run_flow([str(BAD / "provenance")])
        assert {v.rule for v in violations} == {"REPRO502", "REPRO503"}
        assert len(violations) == 5


class TestPurity:
    def test_one_violation_per_effect_class(self):
        """The dispatcher is effect-free; each helper one file away
        carries exactly one effect, anchored at the helper's line."""
        violations, _ = run_flow([str(BAD / "purity")])
        assert sorted(v.rule for v in violations) == [
            "REPRO511", "REPRO512", "REPRO513", "REPRO514"]
        assert all(v.path.endswith("impure_helpers.py")
                   for v in violations)
        # the trace names both the dispatch site and the target
        assert all("clocked.py" in v.message and "run_task" in v.message
                   for v in violations)

    def test_impure_certificate_records_the_closure(self):
        _, certs = run_flow([str(BAD / "purity")])
        assert len(certs) == 1
        cert = certs[0]
        assert cert["pure"] is False
        assert cert["target"] == "clocked.run_task"
        assert "impure_helpers.stamp" in cert["closure"]
        assert len(cert["effects"]) == 4
        assert {e["rule"] for e in cert["effects"]} == {
            "REPRO511", "REPRO512", "REPRO513", "REPRO514"}

    def test_clean_pipeline_gets_a_pure_certificate(self):
        violations, certs = run_flow([str(GOOD / "purity")])
        assert violations == []
        assert len(certs) == 1
        cert = certs[0]
        assert cert["pure"] is True
        assert cert["closure"] == ["clean_pipeline.run_task",
                                   "pure_helpers.combine",
                                   "pure_helpers.scale"]
        assert cert["unresolved_calls"] == []


class TestSelfApplication:
    def test_shipped_tree_is_flow_clean(self):
        """The enforced guarantee: zero interprocedural findings on src/."""
        violations, _ = run_flow([SRC])
        assert violations == [], [v.render() for v in violations]

    def test_every_shipped_dispatch_target_is_certified_pure(self):
        _, certs = run_flow([SRC])
        by_target: dict[str, list[dict]] = {}
        for cert in certs:
            by_target.setdefault(cert["target"], []).append(cert)
        for target in SHIPPED_DISPATCH_TARGETS:
            assert target in by_target, sorted(by_target)
            assert all(c["pure"] for c in by_target[target])

    def test_certificates_declare_their_soundness_boundary(self):
        """Dynamic engine construction must show up as unresolved calls,
        not be silently absorbed into a 'pure' verdict."""
        _, certs = run_flow([SRC])
        shard = next(c for c in certs
                     if c["target"] == "repro.hpc.sharding.run_shard")
        assert shard["unresolved_calls"], shard


class TestWaivers:
    def _write_waivable_pair(self, root: Path) -> None:
        (root / "rngtools.py").write_text(
            "def noise_rng(bank):\n"
            "    return bank.ancillary_generator()\n")
        (root / "windows.py").write_text(
            "from rngtools import noise_rng\n"
            "from repro.seir.seeding import SeedSequenceBank\n"
            "\n"
            "_BANK = SeedSequenceBank(base_seed=7)\n"
            "# repro-allow: REPRO501 fixture exercising the flow waiver path\n"
            "_NOISE = noise_rng(_BANK)\n")

    def test_repro_allow_waives_flow_findings(self, tmp_path):
        self._write_waivable_pair(tmp_path)
        violations, _ = run_flow([str(tmp_path)])
        assert violations == []

    def test_lint_does_not_flag_flow_directives_as_unused(self, tmp_path):
        """The two passes share the directive syntax but own disjoint rule
        families; lint must not report a REPRO5xx waiver as unused."""
        self._write_waivable_pair(tmp_path)
        assert run_lint([str(tmp_path)]) == []

    def test_unused_flow_directive_is_flagged_by_flow(self, tmp_path):
        (tmp_path / "clean.py").write_text(
            "# repro-allow: REPRO501 nothing here violates it\n"
            "X = 1\n")
        violations, _ = run_flow([str(tmp_path)])
        assert [v.rule for v in violations] == ["REPRO203"]
        assert "unused" in violations[0].message


class TestCache:
    def test_flow_cache_round_trip(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold_v, cold_c = run_flow([str(BAD / "purity")],
                                  cache_dir=str(cache_dir))
        assert any(cache_dir.rglob("*.json"))
        warm_v, warm_c = run_flow([str(BAD / "purity")],
                                  cache_dir=str(cache_dir))
        assert [v.__dict__ for v in warm_v] == [v.__dict__ for v in cold_v]
        assert warm_c == cold_c

    def test_flow_cache_select_applies_after_the_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_flow([str(BAD / "purity")], cache_dir=str(cache_dir))
        only_511, _ = run_flow([str(BAD / "purity")],
                               cache_dir=str(cache_dir),
                               select=["REPRO511"])
        assert [v.rule for v in only_511] == ["REPRO511"]

    def test_flow_cache_misses_on_content_change(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        mod = tree / "mod.py"
        mod.write_text("X = 1\n")
        cache_dir = tmp_path / "cache"
        v0, _ = run_flow([str(tree)], cache_dir=str(cache_dir))
        assert v0 == []
        mod.write_text(
            "from repro.seir.seeding import SeedSequenceBank\n"
            "_RNG = SeedSequenceBank(base_seed=3).ancillary_generator()\n")
        v1, _ = run_flow([str(tree)], cache_dir=str(cache_dir))
        assert [v.rule for v in v1] == ["REPRO501"]

    def test_lint_cache_round_trip(self, tmp_path):
        cache_dir = tmp_path / "cache"
        fixtures = str(Path(__file__).parent / "fixtures" / "bad")
        cold = run_lint([fixtures], cache_dir=str(cache_dir))
        warm = run_lint([fixtures], cache_dir=str(cache_dir))
        assert cold  # the bug fixtures do violate
        assert [v.__dict__ for v in warm] == [v.__dict__ for v in cold]

    def test_lint_cache_sees_cross_file_registrations(self, tmp_path):
        """A new registration in one file must invalidate another file's
        cached verdict — the environment is part of the key."""
        tree = tmp_path / "tree"
        tree.mkdir()
        user = tree / "user.py"
        user.write_text(
            "from repro.seir.seeding import mix_seed\n"
            "from regs import _SHARED_STREAM\n"
            "\n"
            "\n"
            "def derive(base):\n"
            "    return mix_seed(base, _SHARED_STREAM)\n")
        regs = tree / "regs.py"
        regs.write_text("_SHARED_STREAM = 9\n")  # unregistered: REPRO103
        cache_dir = tmp_path / "cache"
        before = run_lint([str(tree)], cache_dir=str(cache_dir))
        assert {v.rule for v in before} == {"REPRO102", "REPRO103"}
        regs.write_text(
            "from repro.seir.seeding import register_stream_tag\n"
            "_SHARED_STREAM = register_stream_tag('shared', 9)\n")
        after = run_lint([str(tree)], cache_dir=str(cache_dir))
        assert after == [], [v.render() for v in after]

    def test_corrupt_cache_entry_degrades_to_a_miss(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold_v, _ = run_flow([str(GOOD / "purity")],
                             cache_dir=str(cache_dir))
        for entry in cache_dir.rglob("*.json"):
            entry.write_text("{ not json")
        again_v, _ = run_flow([str(GOOD / "purity")],
                              cache_dir=str(cache_dir))
        assert [v.__dict__ for v in again_v] == \
            [v.__dict__ for v in cold_v]


class TestCli:
    def test_exit_zero_on_repo(self):
        assert main([SRC]) == 0

    def test_exit_one_on_bug_fixtures(self, capsys):
        assert main([str(BAD / "purity")]) == 1
        out = capsys.readouterr().out
        assert "REPRO511" in out and "REPRO514" in out

    def test_unknown_select_is_a_usage_error(self, capsys):
        assert main([str(GOOD / "purity"), "--select", "REPRO9"]) == 2
        err = capsys.readouterr().err
        assert "REPRO9" in err

    def test_list_rules_shows_only_flow_families(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REPRO501" in out and "REPRO514" in out
        assert "REPRO101" not in out

    def test_sarif_output(self, tmp_path):
        report = tmp_path / "flow.sarif"
        assert main([str(BAD / "purity"), "--format", "sarif",
                     "--output", str(report)]) == 1
        payload = json.loads(report.read_text())
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-flow"
        assert {r["ruleId"] for r in run["results"]} == {
            "REPRO511", "REPRO512", "REPRO513", "REPRO514"}
        region = run["results"][0]["locations"][0]["physicalLocation"]
        assert region["artifactLocation"]["uri"].endswith(
            "impure_helpers.py")

    def test_certificates_written_to_disk(self, tmp_path):
        certs_path = tmp_path / "certs.json"
        assert main([str(GOOD / "purity"),
                     "--certificates", str(certs_path)]) == 0
        payload = json.loads(certs_path.read_text())
        assert payload[0]["pure"] is True
        assert payload[0]["target"] == "clean_pipeline.run_task"

    def test_missing_path_is_a_usage_error(self, capsys):
        assert main(["no/such/path"]) == 2


class TestSelectValidation:
    def test_run_flow_rejects_unknown_selectors(self):
        with pytest.raises(ValueError, match="REPRO77"):
            run_flow([str(GOOD / "purity")], select=["REPRO77"])
