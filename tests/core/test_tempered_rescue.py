"""Calibrator wiring of the tempered rescue and policy-driven resample size.

Contract under test (see ``repro/core/smc.py``): with
``temper_degenerate`` set, a window whose pre-resampling ESS fraction falls
below ``temper_threshold`` is resampled through
:func:`repro.core.adaptive.temper_and_resample` (the staged bridge), drawing
from the same window-indexed resampling stream as the plain pass — so runs
stay bit-reproducible per ``(base_seed, shard layout)`` and identical across
executors — and the realised schedule lands in the window's diagnostics.
``resample_size_policy`` drives the resampled posterior's size per window
the same way ``size_policy`` drives the proposal cloud, and the two compose.
"""

import numpy as np
import pytest

from repro.core import (FixedSize, SequentialCalibrator, SMCConfig,
                        WindowSchedule, paper_first_window_prior,
                        paper_observation_model, paper_window_jitter)
from repro.data import PiecewiseConstant
from repro.hpc import ProcessExecutor, SerialExecutor
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth


@pytest.fixture(scope="module")
def small_truth():
    params = DiseaseParameters(population=50_000, initial_exposed=100)
    return make_ground_truth(params=params, horizon=35, seed=555,
                             theta_schedule=PiecewiseConstant.constant(0.30),
                             rho_schedule=PiecewiseConstant.constant(0.7))


def run_calibration(truth, *, sigma=0.3, executor=None,
                    breaks=(10, 18, 26, 34), **config_kwargs):
    """A deliberately sharp likelihood (small sigma) collapses the weights:
    with ``sigma=0.3`` every window's ESS fraction sits well below the
    default degeneracy threshold, so tempering (when enabled) engages."""
    calib = SequentialCalibrator(
        base_params=truth.params,
        prior=paper_first_window_prior(),
        jitter=paper_window_jitter(),
        observation_model=paper_observation_model(sigma=sigma),
        schedule=WindowSchedule.from_breaks(list(breaks)),
        config=SMCConfig(n_parameter_draws=40, n_replicates=2,
                         resample_size=60, base_seed=17, **config_kwargs),
        executor=executor)
    return calib.run(truth.observations())


def assert_runs_identical(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert len(ra.posterior) == len(rb.posterior)
        for name in ("theta", "rho"):
            assert np.array_equal(ra.posterior.values(name),
                                  rb.posterior.values(name))
        assert ra.diagnostics.temper_schedule == rb.diagnostics.temper_schedule
        assert ra.diagnostics.temper_stage_ess == rb.diagnostics.temper_stage_ess


class TestTemperedRescueWiring:
    def test_degenerate_windows_route_through_multi_stage_bridge(
            self, small_truth):
        results = run_calibration(small_truth, temper_degenerate=True)
        tempered = [r for r in results if r.diagnostics.tempered]
        assert tempered, "no window engaged the bridge on a degenerate run"
        multi = [r for r in results if r.diagnostics.temper_stages > 1]
        assert multi, "degenerate windows should need more than one stage"
        for r in tempered:
            d = r.diagnostics
            assert d.ess_fraction < SMCConfig().temper_threshold
            assert d.temper_schedule[-1] == 1.0
            assert len(d.temper_stage_ess) == d.temper_stages
            assert all(b2 > b1 for b1, b2 in zip(d.temper_schedule,
                                                 d.temper_schedule[1:]))
            assert len(r.posterior) == 60  # n_out honoured through the bridge

    def test_disabled_by_default_and_schedule_empty(self, small_truth):
        results = run_calibration(small_truth)
        assert all(not r.diagnostics.tempered for r in results)
        assert all(r.diagnostics.temper_schedule == () for r in results)

    def test_healthy_windows_keep_the_plain_pass(self, small_truth):
        """With the default likelihood no window is degenerate, so a
        temper-enabled run must be bit-identical to a plain one (the rescue
        only replaces the resampling pass when the ESS actually collapses)."""
        plain = run_calibration(small_truth, sigma=1.0)
        rescued = run_calibration(small_truth, sigma=1.0,
                                  temper_degenerate=True,
                                  temper_threshold=0.01)
        assert all(not r.diagnostics.tempered for r in rescued)
        assert_runs_identical(plain, rescued)

    def test_bit_reproducible_given_base_seed(self, small_truth):
        a = run_calibration(small_truth, temper_degenerate=True)
        b = run_calibration(small_truth, temper_degenerate=True)
        assert_runs_identical(a, b)

    def test_serial_vs_process_identical_for_fixed_layout(self, small_truth):
        """Acceptance: the tempered rescue preserves the sharding RNG
        contract — identical results (and schedules) across executors for a
        fixed (base_seed, shard layout)."""
        serial = run_calibration(small_truth, temper_degenerate=True,
                                 shard_size=25, executor=SerialExecutor())
        with ProcessExecutor(max_workers=2) as pool:
            pooled = run_calibration(small_truth, temper_degenerate=True,
                                     shard_size=25, executor=pool)
        assert any(r.diagnostics.temper_stages > 1 for r in serial)
        assert_runs_identical(serial, pooled)

    def test_threshold_gates_the_bridge(self, small_truth):
        """threshold=0 never tempers (no ESS fraction is below it)."""
        results = run_calibration(small_truth, temper_degenerate=True,
                                  temper_threshold=0.0)
        assert all(not r.diagnostics.tempered for r in results)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="temper_threshold"):
            SMCConfig(temper_threshold=1.5)
        with pytest.raises(ValueError, match="temper_ess_floor"):
            SMCConfig(temper_ess_floor=0.0)
        with pytest.raises(ValueError, match="temper_ess_floor"):
            SMCConfig(temper_ess_floor=1.0)
        with pytest.raises(ValueError, match="resampler"):
            SMCConfig(temper_resampler="bogus")

    def test_summary_exposes_temper_stages(self, small_truth):
        results = run_calibration(small_truth, temper_degenerate=True)
        s = results[0].summary()
        assert s["temper_stages"] == results[0].diagnostics.temper_stages
        assert s["resample_size"] == 60


class TestResampleSizePolicy:
    def test_pinned_policy_resizes_every_posterior(self, small_truth):
        results = run_calibration(small_truth, sigma=1.0,
                                  resample_size_policy=FixedSize(size=25))
        assert [len(r.posterior) for r in results] == [25, 25, 25]
        # the proposal cloud stays policy-driven by size_policy (fixed)
        assert [r.diagnostics.n_particles for r in results] == [80, 60, 60]

    def test_ess_policy_grows_posterior_from_resample_size(self, small_truth):
        """An always-grow ESS policy must scale the *posterior* size from
        the configured resample_size (its running realised state), window
        by window, independent of the proposal-cloud size."""
        results = run_calibration(
            small_truth, sigma=1.0, resample_size_policy="ess",
            resample_size_policy_options={"target_low": 0.9,
                                          "target_high": 0.95,
                                          "growth_factor": 2.0,
                                          "n_min": 10, "n_max": 100_000})
        assert all(r.diagnostics.ess_fraction < 0.9 for r in results)
        assert [len(r.posterior) for r in results] == [120, 240, 480]
        assert [r.diagnostics.n_particles for r in results] == [80, 60, 60]

    def test_policy_output_validated(self, small_truth):
        class BrokenPolicy:
            def next_size(self, *, window_index, current_size, diagnostics,
                          next_window_days):
                return 0

        with pytest.raises(ValueError, match="resample size policy"):
            run_calibration(small_truth, sigma=1.0, breaks=(10, 20),
                            resample_size_policy=BrokenPolicy())

    def test_grow_and_temper_compose(self, small_truth):
        """The ROADMAP composition requirement: a posterior-grow decision
        and a tempering pass can land on the same window, and the grown
        posterior feeds the next window's parent cycling unchanged."""
        results = run_calibration(
            small_truth, temper_degenerate=True,
            resample_size_policy="ess",
            resample_size_policy_options={"target_low": 0.9,
                                          "target_high": 0.95,
                                          "growth_factor": 2.0,
                                          "n_min": 10, "n_max": 100_000})
        composed = [r for r in results
                    if r.diagnostics.temper_stages > 1
                    and len(r.posterior) > 60]
        assert composed, "no window saw both a grow decision and a bridge"
        assert [len(r.posterior) for r in results] == [120, 240, 480]
        # downstream windows consumed the grown posteriors without incident
        assert [r.diagnostics.n_particles for r in results] == [80, 60, 60]

    def test_fixed_policy_bit_identical_to_classic_run(self, small_truth):
        """resample_size_policy='fixed' (the default) must not perturb a
        classic run in any way."""
        classic = run_calibration(small_truth, sigma=1.0)
        pinned = run_calibration(small_truth, sigma=1.0,
                                 resample_size_policy="fixed")
        assert_runs_identical(classic, pinned)
