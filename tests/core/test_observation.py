"""Unit tests for the observation model (bias + likelihood glue)."""

import numpy as np
import pytest

from repro.core import (BinomialBiasModel, ObservationModel, SourceModel,
                        paper_likelihood, paper_observation_model)
from repro.data import CASES, DEATHS, ObservationSet, ObservationSource, TimeSeries
from repro.seir import Trajectory


def trajectory(n=10, infections=100.0, deaths=2.0, start=0):
    return Trajectory(start,
                      np.full(n, infections),
                      np.full(n, deaths),
                      np.zeros(n), np.zeros(n))


def observations(n=10, cases=60.0, deaths=2.0, start=0, include_deaths=True):
    sources = [ObservationSource(CASES, TimeSeries(start, np.full(n, cases)),
                                 channel=CASES, biased=True)]
    if include_deaths:
        sources.append(ObservationSource(
            DEATHS, TimeSeries(start, np.full(n, deaths)),
            channel=DEATHS, biased=False))
    return ObservationSet.of(*sources)


class TestSourceModel:
    def test_biased_source_thins(self, rng):
        sm = SourceModel(CASES, CASES, biased=True,
                         bias=BinomialBiasModel("mean"))
        out = sm.simulated_observed(trajectory(), 0.5, rng)
        assert np.allclose(out.values, 50.0)

    def test_unbiased_source_passthrough(self, rng):
        sm = SourceModel(DEATHS, DEATHS, biased=False)
        out = sm.simulated_observed(trajectory(), 0.5, rng)
        assert np.allclose(out.values, 2.0)

    def test_loglik_windowing(self, rng):
        sm = SourceModel(CASES, CASES, biased=True,
                         bias=BinomialBiasModel("mean"))
        obs = TimeSeries(3, np.full(4, 50.0))
        ll = sm.loglik(obs, trajectory(n=10), 0.5, rng)
        # exact match after mean-thinning: residuals zero
        assert ll == pytest.approx(paper_likelihood().loglik(
            np.full(4, 50.0), np.full(4, 50.0)))

    def test_higher_rho_fits_higher_observed(self, rng):
        sm = SourceModel(CASES, CASES, biased=True,
                         bias=BinomialBiasModel("mean"))
        obs = TimeSeries(0, np.full(10, 90.0))
        ll_right = sm.loglik(obs, trajectory(infections=100.0), 0.9, rng)
        ll_wrong = sm.loglik(obs, trajectory(infections=100.0), 0.3, rng)
        assert ll_right > ll_wrong


class TestObservationModel:
    def test_paper_model_composition(self):
        om = paper_observation_model()
        assert set(om.names) == {CASES, DEATHS}
        assert om.source(CASES).biased
        assert not om.source(DEATHS).biased

    def test_loglik_sums_sources(self, rng):
        om = paper_observation_model(bias_mode="mean")
        obs = observations()
        both = om.loglik(obs, trajectory(), 0.6, rng)
        cases_only = om.loglik(observations(include_deaths=False),
                               trajectory(), 0.6, rng)
        assert both != cases_only  # deaths stream contributes

    def test_unconfigured_stream_rejected(self, rng):
        om = ObservationModel({CASES: SourceModel(CASES, CASES)})
        with pytest.raises(KeyError, match="no SourceModel"):
            om.loglik(observations(), trajectory(), 0.5, rng)

    def test_key_name_mismatch_rejected(self):
        with pytest.raises(ValueError, match="!="):
            ObservationModel({"x": SourceModel(CASES, CASES)})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ObservationModel({})

    def test_deaths_anchor_identifiability(self, rng):
        """With deaths observed, a too-large epidemic is penalised even if
        rho can explain the case counts — the Fig 5 mechanism."""
        om = paper_observation_model(bias_mode="mean")
        obs = observations(cases=60.0, deaths=2.0)
        right = om.loglik(obs, trajectory(infections=100.0, deaths=2.0),
                          0.6, rng)
        too_big = om.loglik(obs, trajectory(infections=200.0, deaths=4.0),
                            0.3, rng)
        assert right > too_big
