"""Runtime shape/dtype contract decorator (`repro.core.contracts`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.contracts import (CONTRACTS_ENV, ContractError, check_shaped,
                                  contracts_active, shaped)


@pytest.fixture
def active(monkeypatch):
    monkeypatch.setenv(CONTRACTS_ENV, "1")


@pytest.fixture
def inactive(monkeypatch):
    monkeypatch.delenv(CONTRACTS_ENV, raising=False)


class TestActivation:
    def test_flag_values(self, monkeypatch):
        for value, expect in [("1", True), ("true", True), ("on", True),
                              ("0", False), ("false", False), ("off", False),
                              ("", False), ("no", False)]:
            monkeypatch.setenv(CONTRACTS_ENV, value)
            assert contracts_active() is expect, value

    def test_decorator_is_identity_when_off(self, inactive):
        def fn(x: np.ndarray) -> np.ndarray:
            return x

        decorated = shaped(x="(n,)")(fn)
        assert decorated is fn  # no wrapper at all: zero overhead

    def test_check_shaped_is_noop_when_off(self, inactive):
        # would be a violation with the flag on
        assert check_shaped(np.zeros((2, 2)), "(n,)") is not None


class TestShapeChecks:
    def test_pass_and_return_value(self, active):
        @shaped(v="(n,)", returns="(n,)")
        def double(v: np.ndarray) -> np.ndarray:
            return 2 * v

        out = double(np.arange(3.0))
        assert out.tolist() == [0.0, 2.0, 4.0]

    def test_wrong_ndim(self, active):
        @shaped(v="(n,)")
        def f(v):
            return v

        with pytest.raises(ContractError, match="2-d"):
            f(np.zeros((2, 2)))

    def test_pinned_axis(self, active):
        @shaped(v="(_, 3)")
        def f(v):
            return v

        f(np.zeros((5, 3)))
        with pytest.raises(ContractError, match="pins it to 3"):
            f(np.zeros((5, 4)))

    def test_named_dim_binds_across_params(self, active):
        @shaped(values="(n,)", weights="(n,)")
        def f(values, weights):
            return values @ weights

        f(np.ones(4), np.ones(4))
        with pytest.raises(ContractError, match="already bound"):
            f(np.ones(4), np.ones(5))

    def test_named_dim_binds_into_return(self, active):
        @shaped(v="(n,)", returns="(n,)")
        def truncate(v):
            return v[:-1]

        with pytest.raises(ContractError, match="already bound"):
            truncate(np.ones(4))

    def test_tuple_return(self, active):
        @shaped(returns=("(n,)", "(n,)"))
        def pair(n: int):
            return np.zeros(n), np.zeros(n)

        pair(3)

        @shaped(returns=("(n,)", "(n,)"))
        def mismatched(n: int):
            return np.zeros(n), np.zeros(n + 1)

        with pytest.raises(ContractError, match="already bound"):
            mismatched(3)

        @shaped(returns=("(n,)",))
        def not_a_tuple(n: int):
            return np.zeros(n)

        with pytest.raises(ContractError, match="1-tuple"):
            not_a_tuple(3)


class TestDtypeChecks:
    def test_exact_dtype(self, active):
        @shaped(v="(n,) int64")
        def f(v):
            return v

        f(np.zeros(2, dtype=np.int64))
        with pytest.raises(ContractError, match="int64"):
            f(np.zeros(2, dtype=np.int32))

    def test_kind_dtype(self, active):
        @shaped(v="(n,) int")
        def f(v):
            return v

        f(np.zeros(2, dtype=np.int32))
        f(np.zeros(2, dtype=np.int64))
        with pytest.raises(ContractError, match="kind 'int'"):
            f(np.zeros(2, dtype=np.float64))


class TestApiMisuse:
    def test_unknown_parameter_rejected_at_decoration(self, active):
        with pytest.raises(ValueError, match="no parameter named"):
            @shaped(nope="(n,)")
            def f(v):
                return v

    def test_malformed_spec_rejected(self, active):
        @shaped(v="n,")  # missing parentheses
        def f(v):
            return v

        with pytest.raises(ValueError, match="malformed"):
            f(np.zeros(2))

    def test_contract_error_is_value_error(self):
        assert issubclass(ContractError, ValueError)


class TestCheckShaped:
    def test_shared_dims_tie_fields(self, active):
        dims: dict[str, int] = {}
        check_shaped(np.zeros(3), "(n,)", name="a", dims=dims)
        with pytest.raises(ContractError, match="already bound"):
            check_shaped(np.zeros(4), "(n,)", name="b", dims=dims)

    def test_returns_value(self, active):
        v = np.zeros(3)
        assert check_shaped(v, "(n,)") is v


class TestLibraryContracts:
    """The decorated hot paths under REPRO_CHECK_CONTRACTS=1.

    Library functions are decorated at import, so these only exercise the
    contracts when the whole suite runs with the flag on (the CI
    configuration); with the flag off they assert the plain behaviour.
    """

    def test_weights_kernels_still_work(self):
        from repro.core.weights import normalize_log_weights, weighted_mean
        w = normalize_log_weights(np.array([0.0, 0.0]))
        assert w.tolist() == [0.5, 0.5]
        assert weighted_mean(np.array([1.0, 3.0]), w) == 2.0

    def test_shard_task_contract(self):
        from repro.core.contracts import contracts_active
        from repro.hpc.sharding import ShardTask
        from repro.seir.parameters import DiseaseParameters

        params = DiseaseParameters(population=1000, initial_exposed=5)
        kwargs = dict(shard_id=0, params=params, end_day=5,
                      engine="binomial_leap", start_day=0)
        ShardTask(seeds=np.array([1, 2], dtype=np.int64),
                  thetas=np.array([0.1, 0.2]), **kwargs)
        if contracts_active():
            with pytest.raises(ContractError):
                ShardTask(seeds=np.array([1, 2], dtype=np.int64),
                          thetas=np.array([0.1, 0.2, 0.3]), **kwargs)
