"""Unit tests for time windows and particle ensembles."""

import numpy as np
import pytest

from repro.core import (Particle, ParticleEnsemble, TimeWindow, WindowSchedule,
                        paper_window_schedule)
from repro.seir import Trajectory


class TestTimeWindow:
    def test_basics(self):
        w = TimeWindow(20, 34)
        assert w.n_days == 14
        assert w.contains_day(20)
        assert w.contains_day(33)
        assert not w.contains_day(34)

    def test_label_matches_paper_style(self):
        assert TimeWindow(20, 34).label() == "Days 20-33"

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            TimeWindow(5, 5)

    def test_round_trip(self):
        w = TimeWindow(3, 9)
        assert TimeWindow.from_dict(w.to_dict()) == w


class TestWindowSchedule:
    def test_from_breaks(self):
        s = WindowSchedule.from_breaks([20, 34, 48])
        assert len(s) == 2
        assert s[0] == TimeWindow(20, 34)
        assert s.start_day == 20
        assert s.end_day == 48

    def test_contiguity_enforced(self):
        with pytest.raises(ValueError, match="contiguous"):
            WindowSchedule(windows=(TimeWindow(0, 10), TimeWindow(11, 20)))

    def test_burn_in_after_first_window_rejected(self):
        with pytest.raises(ValueError, match="burn-in"):
            WindowSchedule.from_breaks([20, 34], burn_in_start=25)

    def test_window_of_day(self):
        s = WindowSchedule.from_breaks([20, 34, 48])
        assert s.window_of_day(20) == 0
        assert s.window_of_day(34) == 1
        with pytest.raises(ValueError):
            s.window_of_day(48)

    def test_round_trip(self):
        s = WindowSchedule.from_breaks([20, 34, 48], burn_in_start=5)
        restored = WindowSchedule.from_dict(s.to_dict())
        assert restored == s

    def test_paper_schedule(self):
        """Figures 4-5: windows 20-33, 34-47, 48-61, 62-75 with burn-in 0."""
        s = paper_window_schedule()
        assert len(s) == 4
        assert [w.label() for w in s] == ["Days 20-33", "Days 34-47",
                                          "Days 48-61", "Days 62-75"]
        assert s.burn_in_start == 0


def particle(theta=0.3, rho=0.8, seed=1, lw=0.0, n_days=5, start=0):
    traj = Trajectory(start, np.ones(n_days), np.zeros(n_days),
                      np.zeros(n_days), np.zeros(n_days))
    return Particle(params={"theta": theta, "rho": rho}, seed=seed,
                    log_weight=lw, segment=traj, history=traj)


class TestParticle:
    def test_value_accessor(self):
        p = particle(theta=0.25)
        assert p.value("theta") == 0.25
        with pytest.raises(KeyError):
            p.value("zeta")

    def test_with_weight(self):
        p = particle().with_weight(-3.0)
        assert p.log_weight == -3.0


class TestParticleEnsemble:
    def test_values_and_names(self):
        ens = ParticleEnsemble([particle(theta=0.1), particle(theta=0.2)])
        assert np.allclose(ens.values("theta"), [0.1, 0.2])
        assert ens.param_names == ("rho", "theta")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ParticleEnsemble([])

    def test_mismatched_params_rejected(self):
        a = particle()
        b = Particle(params={"theta": 0.3}, seed=1)
        with pytest.raises(ValueError, match="disagree"):
            ParticleEnsemble([a, b])

    def test_uniform_weights_by_default(self):
        ens = ParticleEnsemble([particle(), particle()])
        assert np.allclose(ens.normalized_weights(), 0.5)
        assert ens.effective_sample_size() == pytest.approx(2.0)

    def test_weighted_mean_respects_weights(self):
        ens = ParticleEnsemble([particle(theta=0.0, lw=0.0),
                                particle(theta=1.0, lw=-1e9)])
        assert ens.weighted_mean("theta") == pytest.approx(0.0)

    def test_credible_interval_ordering(self):
        rng = np.random.Generator(np.random.PCG64(3))
        parts = [particle(theta=float(t)) for t in rng.normal(0.3, 0.05, 200)]
        ens = ParticleEnsemble(parts)
        lo50, hi50 = ens.credible_interval("theta", 0.5)
        lo90, hi90 = ens.credible_interval("theta", 0.9)
        assert lo90 <= lo50 <= hi50 <= hi90

    def test_credible_interval_level_validated(self):
        ens = ParticleEnsemble([particle()])
        with pytest.raises(ValueError):
            ens.credible_interval("theta", 1.5)

    def test_select_resets_weights_and_tracks_ancestors(self):
        ens = ParticleEnsemble([particle(theta=0.1, lw=-5.0),
                                particle(theta=0.2, lw=-1.0)])
        out = ens.select([1, 1, 0])
        assert len(out) == 3
        assert np.allclose(out.log_weights(), 0.0)
        assert out[0].params["theta"] == 0.2
        assert out[0].ancestor == 1
        assert out.unique_ancestors() == 2

    def test_trajectories_accessor(self):
        ens = ParticleEnsemble([particle(), particle()])
        assert len(ens.trajectories("segment")) == 2
        assert len(ens.trajectories("history")) == 2
        with pytest.raises(ValueError):
            ens.trajectories("future")

    def test_missing_trajectory_raises(self):
        ens = ParticleEnsemble([Particle(params={"theta": 1.0}, seed=1)])
        with pytest.raises(ValueError, match="missing"):
            ens.trajectories("segment")

    def test_params_matrix_column_order(self):
        ens = ParticleEnsemble([particle(theta=0.1, rho=0.9)])
        mat = ens.params_matrix()
        # param_names sorted: rho first, theta second
        assert mat.shape == (1, 2)
        assert mat[0, 0] == 0.9
        assert mat[0, 1] == 0.1

    def test_from_param_arrays(self):
        ens = ParticleEnsemble.from_param_arrays(
            {"theta": np.array([0.1, 0.2]), "rho": np.array([0.5, 0.6])},
            seeds=np.array([7, 8]))
        assert len(ens) == 2
        assert ens[1].seed == 8
        assert ens[1].params["rho"] == 0.6

    def test_from_param_arrays_shape_mismatch(self):
        with pytest.raises(ValueError):
            ParticleEnsemble.from_param_arrays(
                {"theta": np.array([0.1, 0.2])}, seeds=np.array([1]))
