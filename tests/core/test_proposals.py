"""Unit tests for jitter proposal kernels."""

import numpy as np
import pytest

from repro.core import JointJitter, NoJitter, UniformJitter, paper_window_jitter


class TestUniformJitter:
    def test_symmetric_centering(self, rng):
        k = UniformJitter.symmetric(0.1)
        centers = np.full(5000, 1.0)
        out = k.propose(centers, rng)
        assert np.all(np.abs(out - 1.0) <= 0.1 + 1e-12)
        assert out.mean() == pytest.approx(1.0, abs=0.01)

    def test_asymmetric_upward_bias(self, rng):
        k = UniformJitter.asymmetric_upward(0.05, skew=3.0)
        centers = np.full(5000, 0.5)
        out = k.propose(centers, rng)
        # interval [-0.05, +0.15] -> mean shift +0.05
        assert out.mean() == pytest.approx(0.55, abs=0.01)
        assert out.max() <= 0.65 + 1e-12

    def test_reflection_keeps_support(self, rng):
        k = UniformJitter.symmetric(0.3, bounds=(0.0, 1.0))
        centers = np.full(2000, 0.05)
        out = k.propose(centers, rng)
        assert np.all(out >= 0.0)
        assert np.all(out <= 1.0)

    def test_reflection_at_upper_bound(self, rng):
        k = UniformJitter.asymmetric_upward(0.1, skew=5.0, bounds=(0.0, 1.0))
        out = k.propose(np.full(2000, 0.95), rng)
        assert np.all(out <= 1.0)

    def test_logpdf_inside_interval(self):
        k = UniformJitter(0.1, 0.3)
        lp = k.logpdf(np.array([1.2]), np.array([1.0]))
        assert lp[0] == pytest.approx(-np.log(0.4))

    def test_logpdf_outside_interval(self):
        k = UniformJitter(0.1, 0.1)
        assert k.logpdf(np.array([2.0]), np.array([1.0]))[0] == -np.inf

    def test_invalid_widths(self):
        with pytest.raises(ValueError):
            UniformJitter(0.0, 0.0)
        with pytest.raises(ValueError):
            UniformJitter(-0.1, 0.1)
        with pytest.raises(ValueError):
            UniformJitter.asymmetric_upward(0.1, skew=0.0)


class TestNoJitter:
    def test_identity(self, rng):
        k = NoJitter()
        c = np.array([1.0, 2.0])
        out = k.propose(c, rng)
        assert np.array_equal(out, c)
        assert out is not c  # a copy, not an alias

    def test_logpdf(self):
        k = NoJitter()
        assert k.logpdf(np.array([1.0]), np.array([1.0]))[0] == 0.0
        assert k.logpdf(np.array([1.1]), np.array([1.0]))[0] == -np.inf


class TestJointJitter:
    def test_propose_all_names(self, rng):
        j = JointJitter({"a": UniformJitter.symmetric(0.1),
                         "b": NoJitter()})
        out = j.propose({"a": np.ones(10), "b": np.zeros(10)}, rng)
        assert set(out) == {"a", "b"}
        assert np.array_equal(out["b"], np.zeros(10))

    def test_missing_center_rejected(self, rng):
        j = JointJitter({"a": NoJitter()})
        with pytest.raises(ValueError, match="missing"):
            j.propose({}, rng)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            JointJitter({})


class TestPaperJitter:
    def test_composition(self):
        j = paper_window_jitter()
        assert set(j.names) == {"theta", "rho"}

    def test_rho_kernel_skews_upward(self, rng):
        """Section V-B: higher density toward higher rho values."""
        j = paper_window_jitter(rho_width=0.02, rho_skew=3.0)
        out = j.propose({"theta": np.full(4000, 0.3),
                         "rho": np.full(4000, 0.5)}, rng)
        assert out["rho"].mean() > 0.5 + 0.01

    def test_theta_kernel_symmetric(self, rng):
        j = paper_window_jitter(theta_width=0.05)
        out = j.propose({"theta": np.full(4000, 0.3),
                         "rho": np.full(4000, 0.5)}, rng)
        assert out["theta"].mean() == pytest.approx(0.3, abs=0.005)

    def test_rho_never_leaves_unit_interval(self, rng):
        j = paper_window_jitter()
        out = j.propose({"theta": np.full(500, 0.3),
                         "rho": np.full(500, 0.995)}, rng)
        assert np.all(out["rho"] <= 1.0)
        assert np.all(out["rho"] >= 0.0)
