"""Integration tests for fault-tolerant calibration.

Acceptance properties under test (see docs/fault_tolerance.md):

* a calibration run under injected chaos (crashes, drops, corrupted
  results, delays) with a retry policy converges to **bit-identical**
  posteriors vs the fault-free run;
* serial and process-pool runs agree bitwise even when the pooled run
  needs injected retries;
* a run killed after window ``k`` and resumed from its checkpoint store
  reproduces the remaining windows bit-identically, and a store written
  under a different configuration is refused.
"""

import numpy as np
import pytest

from repro.core import (SequentialCalibrator, SMCConfig, WindowSchedule,
                        paper_first_window_prior, paper_observation_model,
                        paper_window_jitter)
from repro.data import PiecewiseConstant
from repro.hpc import (ChaosExecutor, CheckpointStore, Fault, FaultPlan,
                       ProcessExecutor, RetryPolicy, SerialExecutor)
from repro.seir import CheckpointError, DiseaseParameters
from repro.sim import make_ground_truth


@pytest.fixture(scope="module")
def small_truth():
    params = DiseaseParameters(population=50_000, initial_exposed=100)
    return make_ground_truth(params=params, horizon=35, seed=555,
                             theta_schedule=PiecewiseConstant.constant(0.30),
                             rho_schedule=PiecewiseConstant.constant(0.7))


def make_calibrator(truth, *, executor=None, base_seed=17,
                    breaks=(8, 16, 24, 32), progress=None, **config_kwargs):
    config_kwargs.setdefault("n_shards", 3)
    return SequentialCalibrator(
        base_params=truth.params,
        prior=paper_first_window_prior(),
        jitter=paper_window_jitter(),
        observation_model=paper_observation_model(),
        schedule=WindowSchedule.from_breaks(list(breaks)),
        config=SMCConfig(n_parameter_draws=30, n_replicates=2,
                         resample_size=40, base_seed=base_seed,
                         engine="binomial_leap_batched", **config_kwargs),
        executor=executor, progress=progress)


def run_calibration(truth, **kwargs):
    return make_calibrator(truth, **kwargs).run(truth.observations())


def _statistical_diagnostics(diag):
    """Diagnostics minus execution metadata (recovered-failure counts
    legitimately differ between a clean run and a retried chaos run while
    the statistical state stays bit-identical)."""
    d = diag.to_dict()
    d.pop("shard_failures")
    d.pop("shard_failure_causes")
    return d


def assert_posteriors_identical(a, b, *, compare_trajectories=True):
    """Bitwise identity of two runs' posterior samples and diagnostics."""
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.index == rb.index
        assert _statistical_diagnostics(ra.diagnostics) == \
            _statistical_diagnostics(rb.diagnostics)
        for name in ("theta", "rho"):
            assert np.array_equal(ra.posterior.values(name),
                                  rb.posterior.values(name))
        for pa, pb in zip(ra.posterior, rb.posterior):
            assert pa.seed == pb.seed
            assert pa.ancestor == pb.ancestor
            if compare_trajectories:
                assert np.array_equal(pa.segment.infections,
                                      pb.segment.infections)
                assert pa.checkpoint.snapshot["counts"] == \
                    pb.checkpoint.snapshot["counts"]


class TestConfigValidation:
    def test_retry_field_type_checked(self):
        with pytest.raises(ValueError, match="retry"):
            SMCConfig(retry=3)
        assert SMCConfig(retry=RetryPolicy()).retry.max_attempts == 3


class TestChaosCalibration:
    def test_seeded_chaos_bit_identical(self, small_truth):
        """Acceptance: randomized-but-reproducible fault injection across
        every window, retried to bit-identical convergence."""
        clean = run_calibration(small_truth)
        plan = FaultPlan.seeded(
            4242, n_shards=3, max_attempts=3,
            rates={"crash": 0.25, "drop": 0.15, "corrupt": 0.15,
                   "delay": 0.15}, delay_seconds=0.001)
        chaos = ChaosExecutor(SerialExecutor(), plan)
        faulty = run_calibration(
            small_truth, executor=chaos,
            retry=RetryPolicy(max_attempts=4, fallback_serial=True))
        assert chaos.injected, "the plan must actually inject faults"
        assert_posteriors_identical(clean, faulty)
        # Recovery events surface uniformly in diagnostics and summaries.
        assert all(r.diagnostics.shard_failures == 0 for r in clean)
        assert sum(r.diagnostics.shard_failures for r in faulty) > 0
        for r in faulty:
            assert len(r.diagnostics.shard_failure_causes) == \
                r.diagnostics.shard_failures
            assert r.summary()["shard_failures"] == \
                r.diagnostics.shard_failures

    def test_serial_vs_process_with_injected_retries(self, small_truth):
        """Acceptance: a process pool needing retries agrees bitwise with
        an untouched serial run."""
        clean = run_calibration(small_truth, breaks=(10, 20, 30))
        plan = FaultPlan.scripted(
            Fault(kind="crash", shard=0, attempt=1),
            Fault(kind="corrupt", shard=2, attempt=2),
            Fault(kind="drop", shard=1, attempt=3))
        with ProcessExecutor(max_workers=2) as pool:
            chaos = ChaosExecutor(pool, plan)
            faulty = run_calibration(
                small_truth, breaks=(10, 20, 30), executor=chaos,
                retry=RetryPolicy(max_attempts=4))
        assert chaos.injected
        assert_posteriors_identical(clean, faulty)

    def test_shard_failures_reported_to_progress(self, small_truth):
        messages = []
        plan = FaultPlan.scripted(Fault(kind="crash", shard=0, attempt=1))
        chaos = ChaosExecutor(SerialExecutor(), plan)
        run_calibration(small_truth, executor=chaos, progress=messages.append,
                        retry=RetryPolicy(max_attempts=3))
        assert any("shard 0 attempt 1 failed" in m and "retrying" in m
                   for m in messages)


class _KillAfterWindow(RuntimeError):
    pass


def _killer(stop_prefix):
    def progress(message):
        if message.startswith(stop_prefix):
            raise _KillAfterWindow(message)
    return progress


class TestKillAndResume:
    def test_resume_is_bit_identical(self, small_truth, tmp_path):
        store_dir = tmp_path / "ckpt"
        full = run_calibration(small_truth)

        # Interrupted run: dies right after window 1 is persisted.
        calib = make_calibrator(small_truth,
                                progress=_killer("window 1 ("))
        with pytest.raises(_KillAfterWindow):
            calib.run(small_truth.observations(),
                      store=CheckpointStore(store_dir))

        store = CheckpointStore(store_dir)
        assert store.window_complete(0) and store.window_complete(1)
        assert not store.window_complete(2)

        # Resumed run restores windows 0-1 and recomputes only window 2.
        messages = []
        resumer = make_calibrator(small_truth, progress=messages.append)
        resumed = resumer.run(small_truth.observations(),
                              store=CheckpointStore(store_dir), resume=True)
        assert resumer.resumed_from == 1
        assert any(m.startswith("resuming after window 1") for m in messages)
        assert not any(m.startswith("window 0 (") or m.startswith("window 1 (")
                       for m in messages)

        assert_posteriors_identical(full, resumed,
                                    compare_trajectories=False)
        # The recomputed window carries full trajectories: compare those too.
        assert_posteriors_identical(full[2:], resumed[2:])
        # All three windows are now sealed in the store.
        assert all(store.window_complete(w) for w in (0, 1, 2))

    def test_resume_from_empty_store_runs_everything(self, small_truth,
                                                     tmp_path):
        clean = run_calibration(small_truth)
        calib = make_calibrator(small_truth)
        results = calib.run(small_truth.observations(),
                            store=CheckpointStore(tmp_path), resume=True)
        assert calib.resumed_from is None
        assert_posteriors_identical(clean, results)

    def test_resume_without_store_rejected(self, small_truth):
        calib = make_calibrator(small_truth)
        with pytest.raises(ValueError, match="requires a checkpoint store"):
            calib.run(small_truth.observations(), resume=True)

    def test_mismatched_configuration_refused(self, small_truth, tmp_path):
        store = CheckpointStore(tmp_path)
        calib = make_calibrator(small_truth, base_seed=17)
        calib.run(small_truth.observations(), store=store)
        other = make_calibrator(small_truth, base_seed=18)
        with pytest.raises(CheckpointError,
                           match="different run configuration"):
            other.run(small_truth.observations(), store=CheckpointStore(
                tmp_path), resume=True)


class TestScenarioSweepFaults:
    """Multi-scenario sweeps keep the fault-tolerance guarantees per
    scenario: chaos-retried and killed-and-resumed sweeps stay
    bit-identical to an undisturbed sweep, even though all scenarios'
    shards ride in one flattened dispatch."""

    @staticmethod
    def _mild16():
        from repro.core.scenarios import ScenarioOverride, ScenarioSpec
        return ScenarioSpec("mild16", overrides=(
            ScenarioOverride("mild_fraction", 0.97, start_day=16),))

    def test_chaos_sweep_bit_identical_per_scenario(self, small_truth):
        from repro.testing import assert_runs_identical, parity_sweep
        scenarios = ["baseline", self._mild16()]
        clean = parity_sweep(small_truth, scenarios).run(
            small_truth.observations())
        # The flattened dispatch runs up to 2 lines x 3 shards per window.
        plan = FaultPlan.seeded(
            777, n_shards=6, max_attempts=3,
            rates={"crash": 0.25, "drop": 0.15, "corrupt": 0.15},
            delay_seconds=0.001)
        chaos = ChaosExecutor(SerialExecutor(), plan)
        faulty_sweep = parity_sweep(
            small_truth, scenarios, executor=chaos,
            retry=RetryPolicy(max_attempts=4, fallback_serial=True))
        faulty = faulty_sweep.run(small_truth.observations())
        assert chaos.injected, "the plan must actually inject faults"
        for name in ("baseline", "mild16"):
            assert_runs_identical(clean[name], faulty[name],
                                  f"chaos sweep {name}")
        recovered = sum(r.diagnostics.shard_failures
                        for rs in faulty.values() for r in rs)
        assert recovered > 0

    def test_killed_sweep_resumes_bit_identical(self, small_truth, tmp_path):
        from repro.testing import parity_sweep
        scenarios = ["baseline", self._mild16()]
        reference = parity_sweep(small_truth, scenarios).run(
            small_truth.observations())

        def stores():
            return {name: CheckpointStore(tmp_path / name)
                    for name in ("baseline", "mild16")}

        # Killed right after baseline's window 1 line is persisted —
        # mild16's window 1 (a separate world-line) is not yet sealed, so
        # the two scenarios are interrupted at *different* depths.
        killer_sweep = parity_sweep(small_truth, scenarios,
                                    progress=_killer("[baseline] window 1 ("))
        with pytest.raises(_KillAfterWindow):
            killer_sweep.run(small_truth.observations(), stores=stores())
        assert CheckpointStore(tmp_path / "baseline").window_complete(1)
        assert not CheckpointStore(tmp_path / "mild16").window_complete(1)

        resumer = parity_sweep(small_truth, scenarios)
        resumed = resumer.run(small_truth.observations(), stores=stores(),
                              resume=True)
        assert resumer.resumed_from == {"baseline": 1, "mild16": 0}
        for name in ("baseline", "mild16"):
            for ref, res in zip(reference[name], resumed[name]):
                assert ref.index == res.index
                assert np.array_equal(ref.posterior.values("theta"),
                                      res.posterior.values("theta"))
                assert np.array_equal(ref.posterior.values("rho"),
                                      res.posterior.values("rho"))
                assert [p.seed for p in ref.posterior] == \
                    [p.seed for p in res.posterior]
        # Everything is sealed now.
        for name in ("baseline", "mild16"):
            store = CheckpointStore(tmp_path / name)
            assert all(store.window_complete(w) for w in range(3))
