"""Unit tests for prior distributions."""

import numpy as np
import pytest

from repro.core import (Beta, Dirac, IndependentProduct, LogNormal,
                        TruncatedNormal, Uniform, paper_first_window_prior)


class TestUniform:
    def test_samples_in_support(self, rng):
        d = Uniform(0.1, 0.5)
        x = d.sample(1000, rng)
        assert np.all((x >= 0.1) & (x <= 0.5))

    def test_logpdf_inside_outside(self):
        d = Uniform(0.0, 2.0)
        assert d.logpdf(1.0) == pytest.approx(-np.log(2.0))
        assert d.logpdf(3.0) == -np.inf

    def test_mean(self):
        assert Uniform(0.0, 1.0).mean() == 0.5

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Uniform(1.0, 1.0)

    def test_sample_mean_converges(self, rng):
        x = Uniform(0.0, 1.0).sample(5000, rng)
        assert x.mean() == pytest.approx(0.5, abs=0.03)


class TestBeta:
    def test_support(self, rng):
        x = Beta(4, 1).sample(1000, rng)
        assert np.all((x >= 0) & (x <= 1))

    def test_beta41_skews_high(self, rng):
        """The paper's rho prior favours high reporting probabilities."""
        x = Beta(4, 1).sample(5000, rng)
        assert x.mean() == pytest.approx(0.8, abs=0.02)

    def test_logpdf_matches_scipy(self):
        from scipy import stats
        d = Beta(2.0, 3.0)
        x = np.array([0.2, 0.7])
        assert np.allclose(d.logpdf(x), stats.beta.logpdf(x, 2, 3))

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            Beta(0, 1)

    def test_mean(self):
        assert Beta(4, 1).mean() == pytest.approx(0.8)


class TestLogNormal:
    def test_positive_support(self, rng):
        x = LogNormal(0.0, 0.5).sample(500, rng)
        assert np.all(x > 0)

    def test_mean_formula(self):
        d = LogNormal(0.0, 1.0)
        assert d.mean() == pytest.approx(np.exp(0.5))

    def test_logpdf_negative_is_minus_inf(self):
        assert LogNormal(0, 1).logpdf(-1.0) == -np.inf

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            LogNormal(0, 0)


class TestTruncatedNormal:
    def test_support_respected(self, rng):
        d = TruncatedNormal(0.3, 0.5, 0.1, 0.5)
        x = d.sample(1000, rng)
        assert np.all((x >= 0.1) & (x <= 0.5))

    def test_logpdf_outside(self):
        d = TruncatedNormal(0.0, 1.0, -1.0, 1.0)
        assert d.logpdf(2.0) == -np.inf
        assert np.isfinite(d.logpdf(0.0))

    def test_mean_between_bounds(self):
        d = TruncatedNormal(10.0, 1.0, 0.0, 1.0)  # mean far above bounds
        assert 0.0 < d.mean() < 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            TruncatedNormal(0, -1, 0, 1)
        with pytest.raises(ValueError):
            TruncatedNormal(0, 1, 1, 1)


class TestDirac:
    def test_samples_constant(self, rng):
        x = Dirac(0.42).sample(10, rng)
        assert np.all(x == 0.42)

    def test_logpdf(self):
        d = Dirac(1.0)
        assert d.logpdf(1.0) == 0.0
        assert d.logpdf(1.1) == -np.inf

    def test_support_is_point(self):
        assert Dirac(2.0).support == (2.0, 2.0)


class TestIndependentProduct:
    def test_sample_shapes(self, rng):
        p = IndependentProduct({"a": Uniform(0, 1), "b": Beta(2, 2)})
        out = p.sample(50, rng)
        assert set(out) == {"a", "b"}
        assert out["a"].shape == (50,)

    def test_logpdf_adds_marginals(self):
        p = IndependentProduct({"a": Uniform(0, 2), "b": Uniform(0, 4)})
        lp = p.logpdf({"a": np.array([1.0]), "b": np.array([1.0])})
        assert lp[0] == pytest.approx(-np.log(2) - np.log(4))

    def test_logpdf_missing_param_rejected(self):
        p = IndependentProduct({"a": Uniform(0, 1)})
        with pytest.raises(ValueError, match="missing"):
            p.logpdf({})

    def test_marginal_accessor(self):
        u = Uniform(0, 1)
        p = IndependentProduct({"a": u})
        assert p.marginal("a") is u

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IndependentProduct({})

    def test_contains(self):
        d = Uniform(0.0, 1.0)
        assert d.contains(0.5)
        assert not d.contains(1.5)


class TestPaperPrior:
    def test_composition(self):
        p = paper_first_window_prior()
        assert set(p.names) == {"theta", "rho"}
        assert p.marginal("theta").support == (0.1, 0.5)
        assert p.marginal("rho").support == (0.0, 1.0)

    def test_matches_section_vb(self, rng):
        """theta ~ U(0.1,0.5); rho ~ Beta(4,1)."""
        p = paper_first_window_prior()
        theta = p.marginal("theta").sample(4000, rng)
        rho = p.marginal("rho").sample(4000, rng)
        assert theta.mean() == pytest.approx(0.3, abs=0.01)
        assert rho.mean() == pytest.approx(0.8, abs=0.02)
