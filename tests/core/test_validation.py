"""Unit tests for UQ validation utilities (SBC, coverage, CRPS)."""

import numpy as np
import pytest

from repro.core.validation import (crps, interval_coverage, posterior_rank,
                                   sbc_ranks_uniformity)


class TestPosteriorRank:
    def test_truth_below_all(self):
        assert posterior_rank(-10.0, np.arange(5.0)) == 0

    def test_truth_above_all(self):
        assert posterior_rank(10.0, np.arange(5.0)) == 5

    def test_middle(self):
        assert posterior_rank(2.5, np.arange(5.0)) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            posterior_rank(0.0, np.array([]))


class TestSbcUniformity:
    def test_uniform_ranks_pass(self, rng):
        ranks = rng.integers(0, 101, size=2000)
        out = sbc_ranks_uniformity(ranks, n_posterior=100)
        assert out["calibrated"]
        assert out["p_value"] > 0.01

    def test_overconfident_posterior_fails(self, rng):
        # Over-confident posteriors push truths into the extreme ranks.
        ranks = np.concatenate([rng.integers(0, 5, size=1000),
                                rng.integers(96, 101, size=1000)])
        out = sbc_ranks_uniformity(ranks, n_posterior=100)
        assert not out["calibrated"]

    def test_underdispersed_ranks_fail(self, rng):
        ranks = rng.integers(45, 56, size=2000)  # all mid-ranks
        out = sbc_ranks_uniformity(ranks, n_posterior=100)
        assert not out["calibrated"]

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sbc_ranks_uniformity(np.array([200]), n_posterior=100)
        with pytest.raises(ValueError):
            sbc_ranks_uniformity(np.array([1, 2]), n_posterior=100, n_bins=1)

    def test_exact_smc_pipeline_is_calibrated_on_gaussian_toy(self, rng):
        """End-to-end SBC on an analytically tractable importance sampler:
        prior N(0,1), likelihood N(y|x,1) — IS with prior proposal is exact,
        so SBC ranks must be uniform."""
        n_rep, n_draws, n_post = 300, 400, 100
        ranks = []
        for _ in range(n_rep):
            truth = rng.normal()
            y = truth + rng.normal()
            draws = rng.normal(size=n_draws)
            logw = -0.5 * (y - draws) ** 2
            w = np.exp(logw - logw.max())
            w /= w.sum()
            post = rng.choice(draws, size=n_post, replace=True, p=w)
            ranks.append(posterior_rank(truth, post))
        out = sbc_ranks_uniformity(np.array(ranks), n_posterior=n_post,
                                   n_bins=6)
        assert out["calibrated"], out


class TestIntervalCoverage:
    def test_perfect_coverage(self):
        t = np.array([1.0, 2.0])
        assert interval_coverage(t, t - 1, t + 1) == 1.0

    def test_zero_coverage(self):
        t = np.array([5.0])
        assert interval_coverage(t, np.array([0.0]), np.array([1.0])) == 0.0

    def test_nominal_coverage_of_gaussian_intervals(self, rng):
        truths = rng.normal(size=4000)
        lo = np.full(4000, -1.6449)
        hi = np.full(4000, 1.6449)
        assert interval_coverage(truths, lo, hi) == pytest.approx(0.9,
                                                                  abs=0.02)

    def test_reversed_bounds_rejected(self):
        with pytest.raises(ValueError):
            interval_coverage(np.array([0.0]), np.array([1.0]),
                              np.array([0.0]))


class TestCRPS:
    def test_point_mass_equals_absolute_error(self):
        samples = np.full(1000, 3.0)
        assert crps(samples, 5.0) == pytest.approx(2.0)

    def test_minimised_at_truth(self, rng):
        samples = rng.normal(0.0, 1.0, size=5000)
        assert crps(samples, 0.0) < crps(samples, 2.0)

    def test_sharper_correct_forecast_scores_better(self, rng):
        sharp = rng.normal(0.0, 0.5, size=5000)
        diffuse = rng.normal(0.0, 2.0, size=5000)
        assert crps(sharp, 0.0) < crps(diffuse, 0.0)

    def test_known_gaussian_value(self, rng):
        """CRPS of N(0,1) at truth 0 is sigma*(2/sqrt(2pi) - 1/sqrt(pi))."""
        samples = rng.normal(0.0, 1.0, size=200_000)
        expected = 2 / np.sqrt(2 * np.pi) - 1 / np.sqrt(np.pi)
        assert crps(samples, 0.0) == pytest.approx(expected, rel=0.02)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            crps(np.array([]), 0.0)
