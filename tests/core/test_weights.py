"""Unit tests for log-weight arithmetic."""

import numpy as np
import pytest

from repro.core import (effective_sample_size, ess_fraction, logsumexp,
                        normalize_log_weights, weight_entropy, weighted_mean,
                        weighted_quantile, weighted_variance)


class TestLogSumExp:
    def test_matches_naive_for_moderate_values(self):
        v = np.array([-1.0, 0.0, 2.0])
        assert logsumexp(v) == pytest.approx(np.log(np.exp(v).sum()))

    def test_stable_for_large_negative(self):
        v = np.array([-1000.0, -1001.0])
        out = logsumexp(v)
        assert np.isfinite(out)
        assert out == pytest.approx(-1000.0 + np.log(1 + np.exp(-1.0)))

    def test_all_neg_inf(self):
        assert logsumexp(np.array([-np.inf, -np.inf])) == -np.inf

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            logsumexp(np.array([]))

    def test_shift_invariance(self):
        v = np.array([-5.0, -3.0, -4.0])
        assert logsumexp(v + 100) == pytest.approx(logsumexp(v) + 100)


class TestNormalize:
    def test_sums_to_one(self):
        w = normalize_log_weights(np.array([-500.0, -501.0, -502.0]))
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w > 0)

    def test_equal_weights_uniform(self):
        w = normalize_log_weights(np.full(10, -123.0))
        assert np.allclose(w, 0.1)

    def test_order_preserved(self):
        w = normalize_log_weights(np.array([-1.0, -2.0, -0.5]))
        assert w[2] > w[0] > w[1]

    def test_all_zero_weight_rejected(self):
        with pytest.raises(ValueError, match="zero weight"):
            normalize_log_weights(np.array([-np.inf, -np.inf]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            normalize_log_weights(np.array([0.0, np.nan]))

    def test_single_neg_inf_ok(self):
        w = normalize_log_weights(np.array([0.0, -np.inf]))
        assert w[0] == pytest.approx(1.0)
        assert w[1] == 0.0


class TestESS:
    def test_uniform_weights_full_ess(self):
        w = np.full(20, 1 / 20)
        assert effective_sample_size(w) == pytest.approx(20.0)

    def test_degenerate_weights_ess_one(self):
        w = np.zeros(10)
        w[3] = 1.0
        assert effective_sample_size(w) == pytest.approx(1.0)

    def test_fraction(self):
        w = np.full(50, 1 / 50)
        assert ess_fraction(w) == pytest.approx(1.0)

    def test_intermediate_case(self):
        w = np.array([0.5, 0.5, 0.0, 0.0])
        assert effective_sample_size(w) == pytest.approx(2.0)


class TestEntropy:
    def test_uniform_max_entropy(self):
        w = np.full(8, 1 / 8)
        assert weight_entropy(w) == pytest.approx(np.log(8))

    def test_degenerate_zero_entropy(self):
        w = np.zeros(5)
        w[0] = 1.0
        assert weight_entropy(w) == 0.0


class TestWeightedStats:
    def test_weighted_mean(self):
        v = np.array([1.0, 3.0])
        w = np.array([0.25, 0.75])
        assert weighted_mean(v, w) == pytest.approx(2.5)

    def test_weighted_variance(self):
        v = np.array([0.0, 1.0])
        w = np.array([0.5, 0.5])
        assert weighted_variance(v, w) == pytest.approx(0.25)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean(np.zeros(3), np.zeros(4))

    def test_weighted_quantile_uniform_matches_numpy(self):
        rng = np.random.Generator(np.random.PCG64(0))
        v = rng.normal(size=500)
        w = np.full(500, 1 / 500)
        assert weighted_quantile(v, w, 0.5) == pytest.approx(
            np.median(v), abs=0.05)

    def test_weighted_quantile_respects_weights(self):
        v = np.array([0.0, 10.0])
        w = np.array([0.95, 0.05])
        assert weighted_quantile(v, w, 0.5) == 0.0
        assert weighted_quantile(v, w, 0.99) == 10.0

    def test_weighted_quantile_vector(self):
        v = np.arange(100.0)
        w = np.full(100, 0.01)
        out = weighted_quantile(v, w, np.array([0.1, 0.9]))
        assert out.shape == (2,)
        assert out[0] < out[1]

    def test_quantile_bounds_validated(self):
        with pytest.raises(ValueError):
            weighted_quantile(np.ones(3), np.ones(3) / 3, 1.5)

    def test_weighted_quantile_0d_array_returns_scalar(self):
        """Regression: a 0-d ndarray q is a scalar request, not a shape-(1,)
        vector (np.isscalar is False for 0-d arrays)."""
        v = np.arange(10.0)
        w = np.full(10, 0.1)
        out = weighted_quantile(v, w, np.asarray(0.5))
        assert isinstance(out, float)
        assert out == weighted_quantile(v, w, 0.5)

    def test_weighted_quantile_1d_single_entry_stays_array(self):
        v = np.arange(10.0)
        w = np.full(10, 0.1)
        out = weighted_quantile(v, w, np.array([0.5]))
        assert out.shape == (1,)

    def test_weighted_quantile_all_zero_weights_rejected(self):
        """Regression: an all-zero weight vector used to divide by zero in
        the CDF normalisation and return NaN; it must raise the same clear
        error its sibling weight functions produce."""
        with pytest.raises(ValueError, match="all zero"):
            weighted_quantile(np.arange(5.0), np.zeros(5), 0.5)
