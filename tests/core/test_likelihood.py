"""Unit tests for likelihoods."""

import numpy as np
import pytest

from repro.core import (GaussianTransformLikelihood, MultiSourceLikelihood,
                        NegativeBinomialLikelihood, PoissonLikelihood,
                        paper_likelihood, IDENTITY)
from repro.data import TimeSeries


class TestGaussianTransform:
    def test_perfect_match_maximises(self):
        lik = paper_likelihood()
        y = np.array([100.0, 200.0, 300.0])
        exact = lik.loglik(y, y)
        off = lik.loglik(y, y * 1.2)
        assert exact > off

    def test_matches_formula(self):
        lik = GaussianTransformLikelihood(sigma=2.0, transform=IDENTITY)
        y = np.array([1.0, 2.0])
        eta = np.array([0.0, 0.0])
        expected = (-0.5 * 2 * np.log(2 * np.pi * 4.0)
                    - 0.5 * (1.0 + 4.0) / 4.0)
        assert lik.loglik(y, eta) == pytest.approx(expected)

    def test_sqrt_transform_equalises_relative_error(self):
        """On sqrt scale, equal-multiple errors at different magnitudes
        should penalise the larger count more in absolute sqrt units."""
        lik = paper_likelihood()
        small = lik.loglik(np.array([10.0]), np.array([12.0]))
        large = lik.loglik(np.array([1000.0]), np.array([1200.0]))
        assert small > large

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            GaussianTransformLikelihood(sigma=0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            paper_likelihood().loglik(np.zeros(3), np.zeros(4))

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            paper_likelihood().loglik(np.array([]), np.array([]))

    def test_loglik_series_alignment_enforced(self):
        lik = paper_likelihood()
        a = TimeSeries(0, [1.0, 2.0])
        b = TimeSeries(1, [1.0, 2.0])
        with pytest.raises(ValueError, match="not aligned"):
            lik.loglik_series(a, b)

    def test_loglik_series_matches_arrays(self):
        lik = paper_likelihood()
        a = TimeSeries(5, [4.0, 9.0])
        b = TimeSeries(5, [1.0, 16.0])
        assert lik.loglik_series(a, b) == pytest.approx(
            lik.loglik(a.values, b.values))


class TestPoisson:
    def test_mode_at_observed(self):
        lik = PoissonLikelihood()
        y = np.array([50.0])
        assert lik.loglik(y, y) > lik.loglik(y, np.array([70.0]))

    def test_zero_intensity_floored(self):
        lik = PoissonLikelihood(epsilon=0.5)
        out = lik.loglik(np.array([0.0]), np.array([0.0]))
        assert np.isfinite(out)

    def test_epsilon_validated(self):
        with pytest.raises(ValueError):
            PoissonLikelihood(epsilon=0.0)


class TestNegativeBinomial:
    def test_approaches_poisson_at_large_k(self):
        y = np.array([40.0, 60.0])
        eta = np.array([50.0, 50.0])
        nb = NegativeBinomialLikelihood(dispersion=1e6).loglik(y, eta)
        po = PoissonLikelihood().loglik(y, eta)
        assert nb == pytest.approx(po, rel=1e-3)

    def test_heavier_tails_than_poisson(self):
        """Overdispersed NB penalises outliers less than Poisson."""
        y = np.array([150.0])
        eta = np.array([50.0])
        nb = NegativeBinomialLikelihood(dispersion=2.0).loglik(y, eta)
        po = PoissonLikelihood().loglik(y, eta)
        assert nb > po

    def test_validation(self):
        with pytest.raises(ValueError):
            NegativeBinomialLikelihood(dispersion=0.0)


class TestMultiSource:
    def test_sum_of_sources(self):
        lik = MultiSourceLikelihood({"cases": paper_likelihood(),
                                     "deaths": paper_likelihood()})
        obs = {"cases": np.array([10.0]), "deaths": np.array([1.0])}
        sim = {"cases": np.array([12.0]), "deaths": np.array([1.0])}
        total = lik.loglik(obs, sim)
        parts = (paper_likelihood().loglik(obs["cases"], sim["cases"])
                 + paper_likelihood().loglik(obs["deaths"], sim["deaths"]))
        assert total == pytest.approx(parts)

    def test_missing_source_rejected(self):
        lik = MultiSourceLikelihood({"cases": paper_likelihood()})
        with pytest.raises(KeyError):
            lik.loglik({}, {"cases": np.array([1.0])})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiSourceLikelihood({})

    def test_extra_observed_streams_ignored(self):
        lik = MultiSourceLikelihood({"cases": paper_likelihood()})
        out = lik.loglik({"cases": np.array([4.0]), "other": np.array([1.0])},
                         {"cases": np.array([4.0])})
        assert np.isfinite(out)
