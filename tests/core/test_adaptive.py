"""Unit tests for the adaptive SMC extensions (paper section VI mitigations)."""

import numpy as np
import pytest

from repro.core import (adaptive_jitter_width, effective_sample_size,
                        ess_triggered_resample, normalize_log_weights,
                        temper_and_resample, tempered_weight_schedule)


class TestTemperingSchedule:
    def test_flat_likelihood_single_stage(self):
        schedule = tempered_weight_schedule(np.full(100, -3.0))
        assert schedule == [1.0]

    def test_mildly_peaked_single_stage(self):
        rng = np.random.Generator(np.random.PCG64(1))
        ll = rng.normal(-10, 0.1, size=200)
        assert tempered_weight_schedule(ll) == [1.0]

    def test_sharp_likelihood_multiple_stages(self):
        ll = np.full(200, -1000.0)
        ll[:3] = 0.0  # three dominant particles
        schedule = tempered_weight_schedule(ll, ess_floor_fraction=0.5)
        assert len(schedule) > 1
        assert schedule[-1] == 1.0

    def test_schedule_strictly_increasing(self):
        rng = np.random.Generator(np.random.PCG64(2))
        ll = -0.5 * rng.exponential(50, size=300)
        schedule = tempered_weight_schedule(ll)
        assert all(b2 > b1 for b1, b2 in zip(schedule, schedule[1:]))
        assert schedule[-1] == 1.0

    def test_each_stage_respects_ess_floor(self):
        rng = np.random.Generator(np.random.PCG64(3))
        ll = -0.5 * rng.exponential(80, size=400)
        floor = 0.5
        schedule = tempered_weight_schedule(ll, ess_floor_fraction=floor)
        beta_prev = 0.0
        for beta in schedule[:-1]:  # last stage may be the forced jump to 1
            w = normalize_log_weights((beta - beta_prev) * ll)
            assert effective_sample_size(w) >= floor * ll.size * 0.98
            beta_prev = beta

    def test_validation(self):
        with pytest.raises(ValueError):
            tempered_weight_schedule(np.zeros(5), ess_floor_fraction=0.0)
        with pytest.raises(ValueError):
            tempered_weight_schedule(np.array([]))

    def test_max_stages_exhaustion_still_terminates_at_one(self):
        """A pathological likelihood cannot keep the ESS above the floor at
        any exponent; the schedule must exhaust its stage allowance and
        force the final jump to 1.0 (the only stage allowed to violate the
        floor) instead of looping forever."""
        ll = np.full(200, -1e9)
        ll[0] = 0.0  # a single totally dominant particle
        schedule = tempered_weight_schedule(ll, ess_floor_fraction=0.9,
                                            max_stages=3)
        assert len(schedule) == 4  # max_stages tiny steps + the forced 1.0
        assert schedule[-1] == 1.0
        assert all(b2 > b1 for b1, b2 in zip(schedule, schedule[1:]))
        # every stage before the forced jump made the guaranteed progress
        assert all(b >= 1e-4 for b in schedule[:-1])

    def test_all_equal_loglik_is_single_stage(self):
        """Equal log-likelihoods mean uniform incremental weights at every
        exponent — one stage, however extreme the common value."""
        for value in (0.0, -3.0, -1e8, -1e308):
            assert tempered_weight_schedule(np.full(64, value)) == [1.0]

    def test_neg_inf_entries_tolerated(self):
        """Particles with zero likelihood (log-lik -inf) must not poison the
        bisection with NaNs; the survivors carry the schedule."""
        ll = np.zeros(100)
        ll[:30] = -np.inf  # 30% of the cloud missed the data entirely
        schedule = tempered_weight_schedule(ll, ess_floor_fraction=0.5)
        assert schedule == [1.0]  # 70 equally weighted survivors >= floor

        ll = np.concatenate([np.full(50, -np.inf), -0.5 * np.linspace(0, 40, 150) ** 2])
        schedule = tempered_weight_schedule(ll, ess_floor_fraction=0.6)
        assert np.all(np.isfinite(schedule))
        assert schedule[-1] == 1.0
        assert all(b2 > b1 for b1, b2 in zip(schedule, schedule[1:]))

    def test_all_neg_inf_raises_cleanly(self):
        """A cloud with zero total weight is a hard failure, not a NaN."""
        with pytest.raises(ValueError, match="zero weight"):
            tempered_weight_schedule(np.full(10, -np.inf))


class TestTemperAndResample:
    def test_indices_shape_and_range(self, rng):
        ll = np.linspace(-40, 0, 300)
        out = temper_and_resample(ll, 150, rng)
        assert out.indices.shape == (150,)
        assert out.indices.min() >= 0
        assert out.indices.max() < 300

    def test_concentrates_on_high_likelihood(self, rng):
        ll = np.full(200, -500.0)
        ll[190:] = 0.0
        out = temper_and_resample(ll, 100, rng)
        assert np.all(out.indices >= 190)

    def test_flat_case_reduces_to_plain_resampling(self, rng):
        ll = np.zeros(50)
        out = temper_and_resample(ll, 50, rng)
        assert out.n_stages == 1
        # uniform weights: systematic resampling yields a permutation-ish set
        assert len(np.unique(out.indices)) == 50

    def test_stage_ess_recorded(self, rng):
        ll = np.full(200, -900.0)
        ll[:5] = 0.0
        out = temper_and_resample(ll, 100, rng)
        assert len(out.stage_ess) == out.n_stages
        assert all(e >= 1.0 for e in out.stage_ess)

    def test_single_stage_schedule_equals_plain_resampling(self):
        """With a flat enough likelihood the schedule is the single stage
        ``[1.0]`` and the bridge must reduce *exactly* to one plain
        resampling pass — same resampler, same draws, same indices."""
        from repro.core import get_resampler
        ll = np.linspace(-0.5, 0.0, 120)  # mild tilt: one stage suffices
        for name in ("multinomial", "systematic"):
            r1 = np.random.Generator(np.random.PCG64(77))
            r2 = np.random.Generator(np.random.PCG64(77))
            out = temper_and_resample(ll, 80, r1, resampler=name)
            assert out.schedule == (1.0,)
            plain = get_resampler(name)(normalize_log_weights(ll), 80, r2)
            assert np.array_equal(out.indices, plain)

    def test_forced_progress_path_composes_with_changed_n_out(self, rng):
        """A likelihood so pathological that every bisection collapses to
        the current exponent exercises the forced ``beta + 1e-4`` progress
        guarantee; the bridge must still finish at 1.0 and deliver exactly
        ``n_out`` valid indices (intermediate stages run at full ensemble
        size, only the final stage shrinks to the requested posterior)."""
        ll = np.full(200, -1e9)
        ll[0] = 0.0  # one totally dominant particle
        out = temper_and_resample(ll, 80, rng, ess_floor_fraction=0.9)
        assert out.indices.shape == (80,)
        assert np.all(out.indices == 0)  # only the dominant ancestor survives
        assert out.schedule[-1] == 1.0
        assert out.n_stages > 1  # the forced-progress stages actually ran
        assert all(b2 > b1 for b1, b2 in zip(out.schedule, out.schedule[1:]))
        # every pre-final stage is a forced minimal step, not a bisection win
        assert all(b <= 1e-4 * (i + 1) + 1e-12
                   for i, b in enumerate(out.schedule[:-1]))
        assert len(out.stage_ess) == out.n_stages

    def test_tempering_beats_plain_resampling_on_ancestors(self, rng):
        """The point of tempering: more surviving ancestors for the same
        peaked likelihood."""
        rng2 = np.random.Generator(np.random.PCG64(9))
        ll = -0.5 * np.linspace(0, 30, 500) ** 2
        plain_w = normalize_log_weights(ll)
        from repro.core import multinomial_resample
        plain = len(np.unique(multinomial_resample(plain_w, 500, rng2)))
        tempered = len(np.unique(
            temper_and_resample(ll, 500, rng, ess_floor_fraction=0.7).indices))
        assert tempered >= plain


class TestAdaptiveJitterWidth:
    def test_scales_with_spread(self, rng):
        narrow = adaptive_jitter_width(rng.normal(0.3, 0.01, 500))
        wide = adaptive_jitter_width(rng.normal(0.3, 0.1, 500))
        assert wide > narrow

    def test_floor_applied(self):
        width = adaptive_jitter_width(np.full(100, 0.3) + 1e-12,
                                      floor=0.005)
        assert width == 0.005

    def test_scale_multiplier(self, rng):
        v = rng.normal(0.3, 0.05, 400)
        assert adaptive_jitter_width(v, scale=2.0) == pytest.approx(
            2 * adaptive_jitter_width(v))

    def test_validation(self):
        with pytest.raises(ValueError):
            adaptive_jitter_width(np.array([0.3]))


class TestEssTriggeredResample:
    def test_healthy_weights_pass_through(self, rng):
        lw = np.zeros(100)
        idx, new_lw, resampled = ess_triggered_resample(lw, 100, rng)
        assert not resampled
        assert np.array_equal(idx, np.arange(100))
        assert np.array_equal(new_lw, lw)

    def test_degenerate_weights_resampled(self, rng):
        lw = np.full(100, -1000.0)
        lw[0] = 0.0
        idx, new_lw, resampled = ess_triggered_resample(lw, 100, rng)
        assert resampled
        assert np.all(idx == 0)
        assert np.all(new_lw == 0.0)

    def test_healthy_size_change_rejected_not_silently_resampled(self, rng):
        """Regression: a healthy ensemble must pass through unchanged — a
        caller requesting a different size is a contract violation, not a
        silent excuse to resample (the old behaviour)."""
        lw = np.zeros(100)
        with pytest.raises(ValueError, match="above the resampling threshold"):
            ess_triggered_resample(lw, 50, rng)

    def test_degenerate_size_change_resamples(self, rng):
        lw = np.full(100, -1000.0)
        lw[:2] = 0.0
        idx, new_lw, resampled = ess_triggered_resample(lw, 50, rng)
        assert resampled
        assert idx.shape == (50,)
        assert np.all(idx < 2)
        assert np.all(new_lw == 0.0)

    def test_threshold_validated(self, rng):
        with pytest.raises(ValueError):
            ess_triggered_resample(np.zeros(10), 10, rng,
                                   threshold_fraction=0.0)
