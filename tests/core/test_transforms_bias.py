"""Unit tests for count transforms and the binomial bias model."""

import numpy as np
import pytest

from repro.core import (ANSCOMBE, IDENTITY, LOG1P, SQRT, BinomialBiasModel,
                        get_transform)
from repro.data import TimeSeries


class TestTransforms:
    @pytest.mark.parametrize("transform", [SQRT, LOG1P, IDENTITY, ANSCOMBE])
    def test_round_trip(self, transform):
        x = np.array([0.0, 1.0, 10.0, 1234.0])
        assert np.allclose(transform.inverse(transform(x)), x, atol=1e-9)

    @pytest.mark.parametrize("transform", [SQRT, LOG1P, ANSCOMBE])
    def test_monotone(self, transform):
        x = np.linspace(0, 100, 50)
        y = transform(x)
        assert np.all(np.diff(y) > 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SQRT(np.array([-1.0]))

    def test_sqrt_variance_stabilises_poisson(self, rng):
        """Var(sqrt(Poisson(lam))) ~ 1/4 regardless of lam."""
        for lam in (10.0, 100.0, 1000.0):
            x = rng.poisson(lam, size=20_000)
            assert np.sqrt(x).var() == pytest.approx(0.25, rel=0.15)

    def test_registry(self):
        assert get_transform("sqrt") is SQRT
        with pytest.raises(ValueError):
            get_transform("cuberoot")


class TestBinomialBiasModel:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            BinomialBiasModel("approximate")

    def test_mean_mode_deterministic(self):
        m = BinomialBiasModel("mean")
        out = m.apply(np.array([10.0, 20.0]), 0.5)
        assert np.allclose(out, [5.0, 10.0])

    def test_sample_mode_requires_rng(self):
        m = BinomialBiasModel("sample")
        with pytest.raises(ValueError, match="rng"):
            m.apply(np.array([10.0]), 0.5)

    def test_sample_bounded_by_true(self, rng):
        m = BinomialBiasModel("sample")
        true = np.full(100, 50.0)
        out = m.apply(true, 0.7, rng)
        assert np.all(out <= 50)
        assert np.all(out >= 0)

    def test_sample_mean_matches_rho(self, rng):
        m = BinomialBiasModel("sample")
        true = np.full(5000, 100.0)
        out = m.apply(true, 0.6, rng)
        assert out.mean() == pytest.approx(60.0, rel=0.02)

    def test_rho_validation(self, rng):
        m = BinomialBiasModel("sample")
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="rho"):
                m.apply(np.array([10.0]), bad, rng)

    def test_negative_counts_rejected(self, rng):
        m = BinomialBiasModel("sample")
        with pytest.raises(ValueError, match="non-negative"):
            m.apply(np.array([-5.0]), 0.5, rng)

    def test_apply_series_keeps_day_axis(self, rng):
        m = BinomialBiasModel("mean")
        ts = TimeSeries(10, [100.0, 200.0], name="cases")
        out = m.apply_series(ts, 0.5, rng)
        assert out.start_day == 10
        assert out.name == "observed_cases"

    def test_log_pmf_exact(self):
        from scipy import stats
        lp = BinomialBiasModel.log_pmf(np.array([3.0]), np.array([10.0]), 0.4)
        assert lp[0] == pytest.approx(stats.binom.logpmf(3, 10, 0.4))

    def test_log_pmf_impossible_thinning(self):
        lp = BinomialBiasModel.log_pmf(np.array([11.0]), np.array([10.0]), 0.5)
        assert lp[0] == -np.inf

    def test_log_pmf_shape_mismatch(self):
        with pytest.raises(ValueError):
            BinomialBiasModel.log_pmf(np.zeros(2), np.zeros(3), 0.5)
