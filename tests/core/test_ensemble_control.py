"""Unit tests for the adaptive ensemble-size policies.

Contract under test (see ``repro/core/ensemble_control.py``): policies are
deterministic pure functions of the window diagnostics, clamp to
``[n_min, n_max]``, hold inside the hysteresis band, and respond
monotonically to the ESS fraction.  Calibrator-level wiring (sizes actually
changing between windows) is covered here too at small scale; the
cross-executor/shard invariance of adaptive runs lives in
``test_sharded_simulation.py``.
"""

import numpy as np
import pytest

from repro.core import (BudgetPolicy, EnsembleSizePolicy, ESSTargetPolicy,
                        FixedSize, SequentialCalibrator, SMCConfig,
                        WindowSchedule, make_size_policy,
                        paper_first_window_prior, paper_observation_model,
                        paper_window_jitter, resolve_size_policy)
from repro.core.diagnostics import compute_diagnostics
from repro.core.weights import normalize_log_weights
from repro.data import PiecewiseConstant
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth


def diag_with_ess_fraction(fraction: float, n: int = 1000):
    """Diagnostics whose ESS fraction is (approximately) ``fraction``.

    Built from a two-level weight vector: ``k`` particles carry all the
    mass, giving ESS ~= k, so ess_fraction ~= k / n.
    """
    k = max(1, int(round(fraction * n)))
    lw = np.full(n, -1e9)
    lw[:k] = 0.0
    w = normalize_log_weights(lw)
    d = compute_diagnostics(lw, w, unique_ancestors=k)
    assert d.ess_fraction == pytest.approx(k / n, rel=1e-6)
    return d


def next_size(policy, fraction, current=1000, window_days=14):
    return policy.next_size(window_index=0, current_size=current,
                            diagnostics=diag_with_ess_fraction(fraction),
                            next_window_days=window_days)


class TestFixedSize:
    def test_passes_current_size_through(self):
        assert next_size(FixedSize(), 0.01) == 1000
        assert next_size(FixedSize(), 0.99) == 1000

    def test_explicit_size_pins(self):
        assert next_size(FixedSize(size=250), 0.01) == 250

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedSize(size=0)


class TestESSTargetPolicy:
    def test_grows_below_band(self):
        policy = ESSTargetPolicy(target_low=0.2, target_high=0.5,
                                 growth_factor=2.0, n_min=10, n_max=10_000)
        assert next_size(policy, 0.05) == 2000

    def test_shrinks_above_band(self):
        policy = ESSTargetPolicy(target_low=0.2, target_high=0.5,
                                 shrink_factor=0.5, n_min=10, n_max=10_000)
        assert next_size(policy, 0.8) == 500

    def test_hysteresis_holds_inside_band(self):
        policy = ESSTargetPolicy(target_low=0.2, target_high=0.5,
                                 n_min=10, n_max=10_000)
        for f in (0.25, 0.35, 0.45):
            assert next_size(policy, f) == 1000

    def test_clamped_to_bounds(self):
        policy = ESSTargetPolicy(target_low=0.2, target_high=0.5,
                                 growth_factor=4.0, shrink_factor=0.25,
                                 n_min=800, n_max=1500)
        assert next_size(policy, 0.01) == 1500   # 4000 clamped down
        assert next_size(policy, 0.99) == 800    # 250 clamped up

    def test_monotone_response_to_ess(self):
        """Lower ESS never yields a smaller next cloud."""
        policy = ESSTargetPolicy(target_low=0.15, target_high=0.6,
                                 n_min=50, n_max=50_000)
        fractions = np.linspace(0.01, 0.99, 25)
        sizes = [next_size(policy, float(f)) for f in fractions]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            ESSTargetPolicy(target_low=0.5, target_high=0.5)
        with pytest.raises(ValueError):
            ESSTargetPolicy(target_low=0.0, target_high=0.5)
        with pytest.raises(ValueError):
            ESSTargetPolicy(growth_factor=0.5)
        with pytest.raises(ValueError):
            ESSTargetPolicy(shrink_factor=0.0)
        with pytest.raises(ValueError):
            ESSTargetPolicy(n_min=100, n_max=50)


class TestBudgetPolicy:
    def test_caps_at_budget_over_window_days(self):
        policy = BudgetPolicy(step_budget=7000, n_min=10)
        assert next_size(policy, 0.5, current=1000, window_days=14) == 500

    def test_budget_not_binding_keeps_base_size(self):
        policy = BudgetPolicy(step_budget=1_000_000, n_min=10)
        assert next_size(policy, 0.5, current=1000, window_days=14) == 1000

    def test_floor_wins_over_budget(self):
        policy = BudgetPolicy(step_budget=100, n_min=60)
        assert next_size(policy, 0.5, current=1000, window_days=14) == 60

    def test_composes_with_ess_base(self):
        base = ESSTargetPolicy(target_low=0.2, target_high=0.5,
                               growth_factor=4.0, n_min=10, n_max=100_000)
        policy = BudgetPolicy(step_budget=28_000, base=base, n_min=10)
        # ESS collapse wants 4000, the budget affords 28000/14 = 2000.
        assert next_size(policy, 0.01, current=1000, window_days=14) == 2000

    def test_n_max_caps_below_budget(self):
        policy = BudgetPolicy(step_budget=1_000_000, n_min=10, n_max=300)
        assert next_size(policy, 0.5, current=1000, window_days=14) == 300

    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetPolicy(step_budget=0)
        with pytest.raises(ValueError):
            BudgetPolicy(step_budget=10, n_min=0)
        with pytest.raises(ValueError):
            BudgetPolicy(step_budget=10, n_min=50, n_max=20)


class TestFactoryAndResolution:
    def test_named_policies(self):
        assert isinstance(make_size_policy("fixed"), FixedSize)
        assert isinstance(make_size_policy("ess", target_high=0.4),
                          ESSTargetPolicy)
        assert isinstance(make_size_policy("budget", step_budget=100),
                          BudgetPolicy)

    def test_budget_base_spec_nested(self):
        policy = make_size_policy("budget", step_budget=100,
                                  base={"name": "ess", "target_high": 0.4})
        assert isinstance(policy.base, ESSTargetPolicy)
        assert policy.base.target_high == 0.4

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown size policy"):
            make_size_policy("bogus")

    def test_resolve_accepts_instances(self):
        policy = ESSTargetPolicy()
        assert resolve_size_policy(policy) is policy
        assert isinstance(policy, EnsembleSizePolicy)

    def test_resolve_rejects_options_with_instance(self):
        with pytest.raises(ValueError, match="size_policy_options"):
            resolve_size_policy(ESSTargetPolicy(), {"n_min": 5})

    def test_resolve_rejects_non_policy(self):
        with pytest.raises(ValueError, match="EnsembleSizePolicy"):
            resolve_size_policy(object())

    def test_smc_config_validates_policy_eagerly(self):
        with pytest.raises(ValueError):
            SMCConfig(size_policy="bogus")
        with pytest.raises(ValueError):
            SMCConfig(size_policy="ess",
                      size_policy_options={"target_low": 0.9,
                                           "target_high": 0.5})
        cfg = SMCConfig(size_policy="ess")
        assert isinstance(cfg.size_policy_instance(), ESSTargetPolicy)


class TestCalibratorWiring:
    @pytest.fixture(scope="class")
    def small_truth(self):
        params = DiseaseParameters(population=50_000, initial_exposed=100)
        return make_ground_truth(params=params, horizon=35, seed=555,
                                 theta_schedule=PiecewiseConstant.constant(0.30),
                                 rho_schedule=PiecewiseConstant.constant(0.7))

    def run(self, truth, **config_kwargs):
        calib = SequentialCalibrator(
            base_params=truth.params,
            prior=paper_first_window_prior(),
            jitter=paper_window_jitter(),
            observation_model=paper_observation_model(),
            schedule=WindowSchedule.from_breaks([10, 18, 26, 34]),
            config=SMCConfig(n_parameter_draws=30, n_replicates=2,
                             resample_size=40, base_seed=17, **config_kwargs))
        return calib.run(truth.observations())

    def test_fixed_policy_matches_classic_sizes(self, small_truth):
        results = self.run(small_truth)
        sizes = [r.diagnostics.n_particles for r in results]
        assert sizes == [60, 40, 40]

    def test_pinned_policy_resizes_every_continuation(self, small_truth):
        results = self.run(small_truth, size_policy=FixedSize(size=25))
        sizes = [r.diagnostics.n_particles for r in results]
        assert sizes == [60, 25, 25]
        # posterior size is unchanged by the cloud size
        assert all(len(r.posterior) == 40 for r in results)

    def test_growth_revisits_parents_cyclically(self, small_truth):
        results = self.run(small_truth, size_policy=FixedSize(size=100))
        assert [r.diagnostics.n_particles for r in results] == [60, 100, 100]

    def test_particle_steps_recorded(self, small_truth):
        results = self.run(small_truth, size_policy=FixedSize(size=25))
        # window 0 simulates burn-in 0..10 plus the window to day 10+8
        assert results[0].diagnostics.particle_steps == 60 * 18
        assert results[1].diagnostics.particle_steps == 25 * 8

    def test_ess_grow_scales_the_realised_first_window_cloud(self, small_truth):
        """Regression (window-0 current_size contract): the policy scales
        the cloud the ESS fraction was measured on — after window 0 that is
        the realised ``n_parameter_draws * n_replicates`` prior cloud (60),
        not the planned continuation size (40).  An always-grow policy must
        therefore double 60, not 40."""
        results = self.run(small_truth, size_policy="ess",
                           size_policy_options={"target_low": 0.9,
                                                "target_high": 0.95,
                                                "growth_factor": 2.0,
                                                "n_min": 10,
                                                "n_max": 100_000})
        assert all(r.diagnostics.ess_fraction < 0.9 for r in results)
        assert [r.diagnostics.n_particles for r in results] == [60, 120, 240]

    def test_budget_policy_default_base_pinned_across_window0(self, small_truth):
        """A non-binding budget over the default pass-through base must keep
        the classic continuation size (40), not promote window 0's realised
        prior cloud (60) into every later window."""
        results = self.run(small_truth, size_policy="budget",
                           size_policy_options={"step_budget": 1_000_000,
                                                "n_min": 10})
        assert [r.diagnostics.n_particles for r in results] == [60, 40, 40]

    def test_explicit_fixed_instance_pinned_across_window0(self, small_truth):
        """A default FixedSize() passed as an instance is pinned to the
        classic continuation size, so window 0's larger prior cloud does
        not leak into later windows through the pass-through."""
        results = self.run(small_truth, size_policy=FixedSize())
        assert [r.diagnostics.n_particles for r in results] == [60, 40, 40]

    def test_ess_policy_changes_sizes_deterministically(self, small_truth):
        kwargs = dict(size_policy="ess",
                      size_policy_options={"target_low": 0.3,
                                           "target_high": 0.6,
                                           "n_min": 20, "n_max": 120})
        a = self.run(small_truth, **kwargs)
        b = self.run(small_truth, **kwargs)
        sizes_a = [r.diagnostics.n_particles for r in a]
        sizes_b = [r.diagnostics.n_particles for r in b]
        assert sizes_a == sizes_b
        assert all(20 <= n <= 120 for n in sizes_a[1:])
        for ra, rb in zip(a, b):
            assert np.array_equal(ra.posterior.values("theta"),
                                  rb.posterior.values("theta"))
