"""Scenario axis: registry/spec units plus the parity-oracle suite.

Oracle guarantees under test (``docs/scenarios.md``):

(a) an N=1 sweep is **bit-identical** to the existing batched calibrator
    run without any scenario machinery;
(b) scenario *k* calibrated inside a multi-scenario sweep is
    **bit-identical** to scenario *k* calibrated alone — on the serial
    executor AND a process pool, under the pinned shard layout;
(c) a scenario's batched posterior agrees **distributionally** with the
    scalar-engine oracle run of the same scenario.

Plus the world-line deduplication contract: scenarios sharing streams and
effective parameters through a window prefix share those windows' result
objects; lines split at divergence and never re-merge; independent-stream
scenarios never share.
"""

import numpy as np
import pytest

from repro.core.scenarios import (SCENARIO_SETS, SCENARIOS, ScenarioOverride,
                                  ScenarioRegistry, ScenarioSpec,
                                  ScenarioSweep, get_scenario,
                                  register_scenario, scenario_set)
from repro.data import PiecewiseConstant
from repro.hpc import ProcessExecutor, SerialExecutor
from repro.hpc.sharding import (build_group_specs, simulate_group_sets,
                                simulate_groups, structural_groups)
from repro.seir import CheckpointError, DiseaseParameters
from repro.testing import (assert_ensembles_identical, assert_runs_identical,
                           parity_calibrator, parity_sweep, parity_truth)

# Mid-run overrides aligned with the parity breaks (8, 16, 24, 32):
# continuation windows start at days 16 and 24.
MILD16 = ScenarioSpec(
    "mild16", overrides=(
        ScenarioOverride("mild_fraction", 0.97, start_day=16),))
DETECT24 = ScenarioSpec(
    "detect24", overrides=(
        ScenarioOverride("detected_rel_infectiousness", 0.05, start_day=24),))
INDEP_MIRROR = ScenarioSpec("indep-mirror", independent_streams=True)


@pytest.fixture(scope="module")
def truth():
    return parity_truth()


@pytest.fixture(scope="module")
def sweep_and_results(truth):
    sweep = parity_sweep(truth, ["baseline", MILD16, DETECT24])
    return sweep, sweep.run(truth.observations())


# --------------------------------------------------------------------- #
# units
# --------------------------------------------------------------------- #
class TestScenarioOverride:
    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown DiseaseParameters"):
            ScenarioOverride("not_a_field", 1.0)

    def test_non_finite_value_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            ScenarioOverride("mild_fraction", float("nan"))
        with pytest.raises(ValueError, match="finite"):
            ScenarioOverride("mild_fraction", float("inf"))

    def test_negative_start_day_rejected(self):
        with pytest.raises(ValueError, match="start_day"):
            ScenarioOverride("mild_fraction", 0.9, start_day=-1)

    def test_structural_field_only_at_day_zero(self):
        ScenarioOverride("population", 10_000, start_day=0)  # fine
        with pytest.raises(ValueError, match="checkpoint-restart knobs"):
            ScenarioOverride("population", 10_000, start_day=10)

    def test_integer_field_requires_integral_value(self):
        with pytest.raises(ValueError, match="integer field"):
            ScenarioOverride("initial_exposed", 40.5)
        assert ScenarioOverride("initial_exposed", 40.0).coerced() == 40
        assert isinstance(ScenarioOverride("initial_exposed", 40).coerced(),
                          int)

    def test_to_dict(self):
        d = ScenarioOverride("mild_fraction", 0.97, start_day=16).to_dict()
        assert d == {"field": "mild_fraction", "value": 0.97,
                     "start_day": 16}


class TestScenarioSpec:
    def test_name_must_be_slug(self):
        for bad in ("", "has space", "has/slash", "ünïcode"):
            with pytest.raises(ValueError, match="slug"):
                ScenarioSpec(bad)

    def test_overrides_canonically_ordered(self):
        a = ScenarioSpec("s", overrides=(
            ScenarioOverride("mild_fraction", 0.97, start_day=16),
            ScenarioOverride("transmission_rate", 0.2, start_day=0)))
        b = ScenarioSpec("s", overrides=tuple(reversed(a.overrides)))
        assert a == b
        assert [o.start_day for o in a.overrides] == [0, 16]

    def test_duplicate_field_day_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            ScenarioSpec("s", overrides=(
                ScenarioOverride("mild_fraction", 0.97, start_day=16),
                ScenarioOverride("mild_fraction", 0.95, start_day=16)))

    def test_params_at_applies_reached_overrides(self):
        base = DiseaseParameters(population=20_000, initial_exposed=40)
        spec = MILD16
        assert spec.params_at(0, base) is base  # bit-for-bit: same object
        assert spec.params_at(15, base) is base
        after = spec.params_at(16, base)
        assert after.mild_fraction == 0.97
        assert after.population == base.population

    def test_later_start_day_wins_per_field(self):
        base = DiseaseParameters(population=20_000, initial_exposed=40)
        spec = ScenarioSpec("s", overrides=(
            ScenarioOverride("mild_fraction", 0.95, start_day=16),
            ScenarioOverride("mild_fraction", 0.99, start_day=24)))
        assert spec.params_at(16, base).mild_fraction == 0.95
        assert spec.params_at(24, base).mild_fraction == 0.99
        assert spec.override_days() == (16, 24)

    def test_is_baseline(self):
        assert ScenarioSpec("plain").is_baseline
        assert not MILD16.is_baseline
        assert not INDEP_MIRROR.is_baseline

    def test_stream_key_deterministic_per_name(self):
        assert ScenarioSpec("x").stream_key == ScenarioSpec("x").stream_key
        assert ScenarioSpec("x").stream_key != ScenarioSpec("y").stream_key

    def test_from_field_schedule(self):
        sched = PiecewiseConstant(breakpoints=(16, 24), values=(0.3, 0.25, 0.2))
        spec = ScenarioSpec.from_field_schedule("taper", "transmission_rate",
                                                sched)
        assert [(o.start_day, o.value) for o in spec.overrides] == [
            (0, 0.3), (16, 0.25), (24, 0.2)]

    def test_fingerprint_through_is_prefix(self):
        assert MILD16.fingerprint_through(0) == ()
        assert MILD16.fingerprint_through(16) == (("mild_fraction", 16, 0.97),)
        payload = MILD16.fingerprint_payload()
        assert payload["name"] == "mild16"
        assert payload["overrides"][0]["field"] == "mild_fraction"


class TestScenarioRegistry:
    def test_register_get_roundtrip(self):
        reg = ScenarioRegistry()
        spec = reg.register(MILD16)
        assert reg.get("mild16") is spec
        assert "mild16" in reg and len(reg) == 1

    def test_identical_reregistration_is_noop(self):
        reg = ScenarioRegistry()
        reg.register(MILD16)
        again = ScenarioSpec("mild16", overrides=(
            ScenarioOverride("mild_fraction", 0.97, start_day=16),))
        assert reg.register(again) is reg.get("mild16")

    def test_rebinding_a_name_rejected(self):
        reg = ScenarioRegistry()
        reg.register(MILD16)
        with pytest.raises(ValueError, match="cannot be rebound"):
            reg.register(ScenarioSpec("mild16"))

    def test_unknown_name_lists_registered(self):
        reg = ScenarioRegistry()
        reg.register(MILD16)
        with pytest.raises(KeyError, match="mild16"):
            reg.get("nope")

    def test_names_sorted(self):
        reg = ScenarioRegistry()
        reg.register(ScenarioSpec("zz"))
        reg.register(ScenarioSpec("aa"))
        assert reg.names() == ["aa", "zz"]
        assert [s.name for s in reg] == ["aa", "zz"]

    def test_builtins_registered(self):
        for name in ("baseline", "milder_variant_d34",
                     "late_intervention_d48", "relaxed_detection_d48"):
            assert name in SCENARIOS
            assert get_scenario(name) is register_scenario(get_scenario(name))
        assert get_scenario("baseline").is_baseline

    def test_default_scenario_set(self):
        specs = scenario_set("default")
        assert [s.name for s in specs] == sorted(SCENARIO_SETS["default"])
        with pytest.raises(KeyError, match="unknown scenario set"):
            scenario_set("nope")


class TestCalibratorScenarioValidation:
    def test_override_day_must_sit_on_continuation_boundary(self, truth):
        off_grid = ScenarioSpec("off-grid", overrides=(
            ScenarioOverride("mild_fraction", 0.97, start_day=10),))
        with pytest.raises(ValueError, match="window"):
            parity_calibrator(truth, scenario=off_grid)

    def test_override_cannot_collide_with_param_map(self, truth):
        # theta already drives transmission_rate via the default param_map.
        clash = ScenarioSpec("clash", overrides=(
            ScenarioOverride("transmission_rate", 0.25, start_day=16),))
        with pytest.raises(ValueError, match="param_map"):
            parity_calibrator(truth, scenario=clash)

    def test_sweep_rejects_conflicting_duplicate_names(self, truth):
        other = ScenarioSpec("mild16", overrides=(
            ScenarioOverride("mild_fraction", 0.95, start_day=16),))
        with pytest.raises(ValueError, match="both named"):
            parity_sweep(truth, [MILD16, other])

    def test_sweep_needs_a_scenario(self, truth):
        with pytest.raises(ValueError, match="at least one"):
            parity_sweep(truth, [])


class TestRunFingerprint:
    def test_baseline_fingerprints_like_no_scenario(self, truth):
        plain = parity_calibrator(truth)
        base = parity_calibrator(truth, scenario=get_scenario("baseline"))
        assert plain.run_fingerprint() == base.run_fingerprint()
        assert "scenario" not in plain.run_fingerprint()

    def test_non_baseline_fingerprint_carries_scenario(self, truth):
        fp = parity_calibrator(truth, scenario=MILD16).run_fingerprint()
        assert fp["scenario"]["name"] == "mild16"

    def test_store_refuses_other_scenario(self, truth, tmp_path):
        from repro.hpc import CheckpointStore
        store = CheckpointStore(tmp_path)
        store.validate_run_meta(
            parity_calibrator(truth, scenario=MILD16).run_fingerprint())
        with pytest.raises(CheckpointError, match="different run"):
            store.validate_run_meta(parity_calibrator(truth).run_fingerprint())


# --------------------------------------------------------------------- #
# parity oracles
# --------------------------------------------------------------------- #
class TestParityOracles:
    def test_oracle_a_n1_sweep_matches_plain_batched(self, truth):
        """N=1 tensor path == the pre-existing batched calibrator, bitwise."""
        plain = parity_calibrator(truth).run(truth.observations())
        sweep = parity_sweep(truth, ["baseline"])
        results = sweep.run(truth.observations())
        assert_runs_identical(plain, results["baseline"], "oracle a")
        assert sweep.reused_windows == 0

    def test_oracle_b_batch_member_matches_standalone(self, truth,
                                                      sweep_and_results):
        """Scenario k inside a batch == scenario k alone, bitwise."""
        _sweep, results = sweep_and_results
        for spec in (None, MILD16, DETECT24):
            name = "baseline" if spec is None else spec.name
            alone = parity_calibrator(truth, scenario=spec).run(
                truth.observations())
            assert_runs_identical(alone, results[name], f"oracle b {name}")

    def test_oracle_b_process_pool_matches_serial(self, truth,
                                                  sweep_and_results):
        """The flattened cross-scenario dispatch is executor-invariant
        under the pinned shard layout."""
        _sweep, serial_results = sweep_and_results
        with ProcessExecutor(max_workers=2) as pool:
            pooled = parity_sweep(truth, ["baseline", MILD16, DETECT24],
                                  executor=pool).run(truth.observations())
        for name in ("baseline", "mild16", "detect24"):
            assert_runs_identical(serial_results[name], pooled[name],
                                  f"process-pool {name}")

    def test_oracle_c_scalar_engine_distributional_parity(self, truth,
                                                          sweep_and_results):
        """Batched scenario posteriors overlap the scalar oracle's 90% CIs
        (the engines share no bitstream, so parity is distributional)."""
        _sweep, results = sweep_and_results
        scalar = parity_calibrator(
            truth, scenario=MILD16, engine="binomial_leap",
            executor=SerialExecutor()).run(truth.observations())
        for w, (ws, wb) in enumerate(zip(scalar, results["mild16"])):
            for name in ("theta", "rho"):
                lo_s, hi_s = ws.posterior.credible_interval(name, 0.9)
                lo_b, hi_b = wb.posterior.credible_interval(name, 0.9)
                assert lo_b <= hi_s and lo_s <= hi_b, (
                    f"window {w} {name}: scalar [{lo_s:.3f}, {hi_s:.3f}] vs "
                    f"batched [{lo_b:.3f}, {hi_b:.3f}] do not overlap")


class TestWorldLineDedup:
    def test_shared_prefix_windows_are_shared_objects(self, sweep_and_results):
        sweep, results = sweep_and_results
        # All three scenarios agree through day 16 -> window 0 is one object.
        assert results["baseline"][0] is results["mild16"][0]
        assert results["baseline"][0] is results["detect24"][0]
        # mild16 diverges at day 16 (window 1); detect24 still matches
        # baseline until day 24.
        assert results["baseline"][1] is not results["mild16"][1]
        assert results["baseline"][1] is results["detect24"][1]
        assert results["baseline"][2] is not results["detect24"][2]

    def test_dedup_counters(self, sweep_and_results):
        sweep, _results = sweep_and_results
        # window 0: 1 line/3 scenarios; window 1: 2 lines (mild16 split);
        # window 2: 3 lines (detect24 split) -> 6 computed, 3 reused.
        assert sweep.computed_windows == 6
        assert sweep.reused_windows == 3

    def test_lines_never_remerge_after_divergence(self, truth):
        """Equal parameters after a transient override do NOT re-merge:
        diverged state stays diverged."""
        transient = ScenarioSpec("transient", overrides=(
            ScenarioOverride("mild_fraction", 0.97, start_day=16),
            ScenarioOverride("mild_fraction", 0.92, start_day=24)))
        base = DiseaseParameters(population=50_000, initial_exposed=100)
        # By day 24 the transient scenario's effective params equal the
        # baseline's again...
        assert transient.params_at(24, base).mild_fraction == \
            base.mild_fraction
        sweep = parity_sweep(truth, ["baseline", transient])
        results = sweep.run(truth.observations())
        # ...yet window 2 is computed separately (lineage diverged at w1).
        assert results["baseline"][2] is not results["transient"][2]
        assert sweep.computed_windows == 5  # w0 shared; w1, w2 split

    def test_independent_streams_never_share(self, truth):
        sweep = parity_sweep(truth, ["baseline", INDEP_MIRROR])
        results = sweep.run(truth.observations())
        assert sweep.reused_windows == 0
        # Same world, different streams: results genuinely differ.
        assert not np.array_equal(
            results["baseline"][0].posterior.values("theta"),
            results["indep-mirror"][0].posterior.values("theta"))

    def test_independent_scenario_reproducible(self, truth):
        a = parity_sweep(truth, [INDEP_MIRROR]).run(truth.observations())
        b = parity_calibrator(truth, scenario=INDEP_MIRROR).run(
            truth.observations())
        assert_runs_identical(a["indep-mirror"], b, "independent streams")

    def test_request_order_irrelevant(self, truth, sweep_and_results):
        _sweep, results = sweep_and_results
        reordered = parity_sweep(truth, [DETECT24, MILD16, "baseline"])
        other = reordered.run(truth.observations())
        assert reordered.names == ["baseline", "detect24", "mild16"]
        for name in ("baseline", "mild16", "detect24"):
            assert_runs_identical(results[name], other[name],
                                  f"reordered {name}")


class TestSweepResume:
    def test_full_resume_restores_all_scenarios(self, truth, tmp_path,
                                                sweep_and_results):
        from repro.hpc import CheckpointStore
        _sweep, reference = sweep_and_results
        scenarios = ["baseline", MILD16, DETECT24]
        stores = {s if isinstance(s, str) else s.name:
                  CheckpointStore(tmp_path / (s if isinstance(s, str)
                                              else s.name))
                  for s in scenarios}
        first = parity_sweep(truth, scenarios)
        first.run(truth.observations(), stores=stores)

        second = parity_sweep(truth, scenarios)
        resumed = second.run(truth.observations(), stores=stores, resume=True)
        assert second.computed_windows == 0
        assert all(v == 2 for v in second.resumed_from.values())
        for name in ("baseline", "mild16", "detect24"):
            # Restored posteriors drop segment/history payloads by design;
            # compare the statistical state.
            for ref, res in zip(reference[name], resumed[name]):
                assert np.array_equal(ref.posterior.values("theta"),
                                      res.posterior.values("theta"))
                assert [p.seed for p in ref.posterior] == \
                    [p.seed for p in res.posterior]

    def test_resume_requires_stores(self, truth):
        with pytest.raises(ValueError, match="stores"):
            parity_sweep(truth, ["baseline"]).run(truth.observations(),
                                                  resume=True)

    def test_stores_must_cover_all_scenarios(self, truth, tmp_path):
        from repro.hpc import CheckpointStore
        stores = {"baseline": CheckpointStore(tmp_path / "baseline")}
        with pytest.raises(ValueError, match="mild16"):
            parity_sweep(truth, ["baseline", MILD16]).run(
                truth.observations(), stores=stores)


# --------------------------------------------------------------------- #
# flattened dispatch
# --------------------------------------------------------------------- #
class TestSimulateGroupSets:
    @staticmethod
    def _spec_set(base_seed, n=6):
        params = DiseaseParameters(population=20_000, initial_exposed=40)
        params_list = [params.with_updates(transmission_rate=0.2 + 0.01 * i)
                       for i in range(n)]
        seeds = [base_seed + i for i in range(n)]
        groups = structural_groups(params_list)
        return build_group_specs(groups, params_list, seeds, start_day=0)

    def test_flattened_dispatch_bit_identical_to_separate(self):
        sets = [self._spec_set(100), self._spec_set(500, n=4)]
        merged = simulate_group_sets(SerialExecutor(), sets, end_day=12,
                                     engine="binomial_leap_batched",
                                     n_shards=2)
        assert len(merged) == len(sets)
        for spec_set, got in zip(sets, merged):
            lone = simulate_groups(SerialExecutor(), spec_set, end_day=12,
                                   engine="binomial_leap_batched", n_shards=2)
            for ga, gb in zip(lone, got):
                for (ma, ra, rowa), (mb, rb, rowb) in zip(ga.member_items(),
                                                          gb.member_items()):
                    assert (ma, rowa) == (mb, rowb)
                    assert np.array_equal(
                        ra.batch.channel_matrix("cases")[rowa],
                        rb.batch.channel_matrix("cases")[rowb])

    def test_on_failures_length_validated(self):
        sets = [self._spec_set(100)]
        with pytest.raises(ValueError, match="on_failures"):
            simulate_group_sets(SerialExecutor(), sets, end_day=8,
                                engine="binomial_leap_batched",
                                on_failures=[None, None])

    def test_empty_sets_allowed(self):
        assert simulate_group_sets(SerialExecutor(), [], end_day=8,
                                   engine="binomial_leap_batched") == []


class TestScalarConfigSweep:
    """Scalar (non-batched) configs still dedupe — via per-line
    ``step_window`` instead of the flattened dispatch."""

    def test_scalar_sweep_matches_standalone_and_dedupes(self, truth):
        sweep = parity_sweep(truth, ["baseline", MILD16],
                             engine="binomial_leap")
        results = sweep.run(truth.observations(include_deaths=True))
        assert sweep.computed_windows == 5  # shared w0, split from day 16
        assert sweep.reused_windows == 1
        for name in sweep.names:
            alone = parity_calibrator(
                truth, scenario=get_scenario(name) if name == "baseline"
                else MILD16, engine="binomial_leap")
            assert_runs_identical(
                alone.run(truth.observations(include_deaths=True)),
                results[name], f"scalar scenario {name!r}")
