"""Unit tests for R_t estimation."""

import numpy as np
import pytest

from repro.core.reproduction_number import (cori_rt,
                                            discretised_serial_interval,
                                            mean_infectious_days, model_rt)
from repro.data import TimeSeries
from repro.seir import DiseaseParameters, StochasticSEIRModel


class TestMeanInfectiousDays:
    def test_consistent_with_r0(self):
        p = DiseaseParameters()
        assert p.transmission_rate * mean_infectious_days(p) == \
            pytest.approx(p.basic_reproduction_number())

    def test_longer_infection_increases(self):
        short = DiseaseParameters(mild_period_days=4.0)
        long = DiseaseParameters(mild_period_days=8.0)
        assert mean_infectious_days(long) > mean_infectious_days(short)


class TestModelRt:
    @pytest.fixture(scope="class")
    def run(self):
        params = DiseaseParameters(population=30_000, initial_exposed=100,
                                   transmission_rate=0.35)
        model = StochasticSEIRModel(params, seed=5)
        return params, model.run_until(120)

    def test_starts_near_r0(self, run):
        params, traj = run
        rt = model_rt(traj, params, params.transmission_rate)
        assert rt.value_on(0) == pytest.approx(
            params.basic_reproduction_number(), rel=0.02)

    def test_declines_with_susceptible_depletion(self, run):
        params, traj = run
        rt = model_rt(traj, params, params.transmission_rate)
        assert rt.values[-1] < rt.values[0]
        assert np.all(np.diff(rt.values) <= 1e-12)  # monotone non-increasing

    def test_nonnegative(self, run):
        params, traj = run
        rt = model_rt(traj, params, params.transmission_rate)
        assert np.all(rt.values >= 0)

    def test_per_day_theta_array(self, run):
        params, traj = run
        theta = np.full(len(traj), 0.0)
        rt = model_rt(traj, params, theta)
        assert rt.total() == 0.0

    def test_empty_rejected(self):
        from repro.seir import Trajectory
        with pytest.raises(ValueError):
            model_rt(Trajectory.empty(0), DiseaseParameters(), 0.3)


class TestSerialInterval:
    def test_pmf_properties(self):
        w = discretised_serial_interval()
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w >= 0)
        assert len(w) == 21

    def test_mean_close_to_target(self):
        w = discretised_serial_interval(mean_days=6.5, sd_days=3.0,
                                        max_days=40)
        mean = float((np.arange(1, 41) * w).sum())
        assert mean == pytest.approx(6.5, abs=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            discretised_serial_interval(mean_days=0)


class TestCoriRt:
    def test_exponential_growth_rt_above_one(self):
        days = np.arange(60)
        incidence = TimeSeries(0, 10 * np.exp(0.08 * days))
        rt = cori_rt(incidence)
        late = rt.values[~np.isnan(rt.values)][-10:]
        assert np.all(late > 1.0)

    def test_exponential_decay_rt_below_one(self):
        days = np.arange(60)
        incidence = TimeSeries(0, 500 * np.exp(-0.08 * days))
        rt = cori_rt(incidence)
        late = rt.values[~np.isnan(rt.values)][-10:]
        assert np.all(late < 1.0)

    def test_flat_incidence_rt_near_one(self):
        incidence = TimeSeries(0, np.full(60, 200.0))
        rt = cori_rt(incidence)
        late = rt.values[~np.isnan(rt.values)][-10:]
        assert np.allclose(late, 1.0, atol=0.1)

    def test_early_days_nan(self):
        incidence = TimeSeries(0, np.full(20, 100.0))
        rt = cori_rt(incidence, window_days=7)
        assert np.all(np.isnan(rt.values[:7]))

    def test_constant_thinning_leaves_rt_unbiased(self):
        """Binomial thinning with constant rho barely moves Cori R_t —
        the bias appears when rho *changes* (the paper's scenario)."""
        days = np.arange(60)
        true = TimeSeries(0, 100 * np.exp(0.05 * days))
        thinned = TimeSeries(0, 0.5 * true.values)
        rt_true = cori_rt(true).values
        rt_thin = cori_rt(thinned).values
        mask = ~np.isnan(rt_true)
        assert np.allclose(rt_true[mask], rt_thin[mask], rtol=0.01)

    def test_rho_shift_biases_rt(self):
        """A reporting-rate improvement masquerades as transmission growth —
        the exact artefact joint (theta, rho) estimation removes."""
        days = np.arange(60)
        true_vals = np.full(60, 1000.0)
        rho = np.where(days < 30, 0.5, 0.9)
        observed = TimeSeries(0, true_vals * rho)
        rt = cori_rt(observed).values
        # Around the rho jump the naive estimator reads spurious R_t > 1.
        assert np.nanmax(rt[30:40]) > 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            cori_rt(TimeSeries(0, np.ones(10)), window_days=0)
        with pytest.raises(ValueError):
            cori_rt(TimeSeries(0, np.ones(10)),
                    serial_interval=np.array([-1.0, 2.0]))
