"""Unit tests for the sequential calibrator."""

import numpy as np
import pytest

from repro.core import (SequentialCalibrator, SMCConfig, UniformJitter,
                        JointJitter, IndependentProduct, Uniform, Beta, Dirac,
                        WindowSchedule, paper_observation_model,
                        paper_first_window_prior, paper_window_jitter)
from repro.sim import make_ground_truth
from repro.data import PiecewiseConstant


@pytest.fixture(scope="module")
def small_truth():
    from repro.seir import DiseaseParameters
    params = DiseaseParameters(population=50_000, initial_exposed=100)
    return make_ground_truth(params=params, horizon=35, seed=555,
                             theta_schedule=PiecewiseConstant.constant(0.30),
                             rho_schedule=PiecewiseConstant.constant(0.7))


def calibrator(schedule, truth, config=None, **kwargs):
    return SequentialCalibrator(
        base_params=truth.params,
        prior=paper_first_window_prior(),
        jitter=paper_window_jitter(),
        observation_model=paper_observation_model(),
        schedule=schedule,
        config=config or SMCConfig(n_parameter_draws=30, n_replicates=2,
                                   resample_size=40, base_seed=17),
        **kwargs)


class TestConfigValidation:
    def test_sizes_validated(self):
        with pytest.raises(ValueError):
            SMCConfig(n_parameter_draws=0)
        with pytest.raises(ValueError):
            SMCConfig(resample_size=0)

    def test_resampler_validated_eagerly(self):
        with pytest.raises(ValueError):
            SMCConfig(resampler="bogus")

    def test_ensemble_size_properties(self):
        cfg = SMCConfig(n_parameter_draws=10, n_replicates=3,
                        resample_size=7, n_continuations=2)
        assert cfg.first_window_ensemble_size == 30
        assert cfg.continuation_ensemble_size == 14


class TestCalibratorValidation:
    def test_prior_must_include_rho(self, small_truth):
        schedule = WindowSchedule.from_breaks([10, 20])
        prior = IndependentProduct({"theta": Uniform(0.1, 0.5)})
        with pytest.raises(ValueError, match="rho"):
            SequentialCalibrator(small_truth.params, prior,
                                 paper_window_jitter(),
                                 paper_observation_model(), schedule)

    def test_rho_cannot_be_mapped_to_simulator(self, small_truth):
        schedule = WindowSchedule.from_breaks([10, 20])
        with pytest.raises(ValueError, match="bias parameter"):
            calibrator(schedule, small_truth,
                       param_map={"theta": "transmission_rate",
                                  "rho": "mild_fraction"})

    def test_param_map_restricted_to_restart_knobs(self, small_truth):
        """The paper only allows six fields to change at a restart."""
        schedule = WindowSchedule.from_breaks([10, 20])
        prior = IndependentProduct({"theta": Uniform(0.1, 0.5),
                                    "rho": Beta(4, 1),
                                    "latent": Uniform(2, 4)})
        jitter = JointJitter({n: UniformJitter.symmetric(0.02)
                              for n in ("theta", "rho", "latent")})
        with pytest.raises(ValueError, match="not checkpoint-restartable"):
            SequentialCalibrator(small_truth.params, prior, jitter,
                                 paper_observation_model(), schedule,
                                 param_map={"theta": "transmission_rate",
                                            "latent": "latent_period_days"})

    def test_jitter_required_for_multi_window(self, small_truth):
        schedule = WindowSchedule.from_breaks([10, 20, 30])
        prior = paper_first_window_prior()
        jitter = JointJitter({"theta": UniformJitter.symmetric(0.05)})
        with pytest.raises(ValueError, match="jitter"):
            SequentialCalibrator(small_truth.params, prior, jitter,
                                 paper_observation_model(), schedule)

    def test_observation_coverage_checked(self, small_truth):
        schedule = WindowSchedule.from_breaks([10, 40])  # beyond horizon 35
        calib = calibrator(schedule, small_truth)
        with pytest.raises(ValueError, match="cover"):
            calib.run(small_truth.observations())


class TestSingleWindowRun:
    @pytest.fixture(scope="class")
    def result(self, small_truth):
        schedule = WindowSchedule.from_breaks([10, 24])
        calib = calibrator(schedule, small_truth)
        return calib.run(small_truth.observations())[0]

    def test_posterior_size(self, result):
        assert len(result.posterior) == 40

    def test_posterior_weights_uniform_after_resampling(self, result):
        assert np.allclose(result.posterior.log_weights(), 0.0)

    def test_posterior_within_prior_support(self, result):
        theta = result.posterior.values("theta")
        rho = result.posterior.values("rho")
        assert np.all((theta >= 0.1) & (theta <= 0.5))
        assert np.all((rho >= 0.0) & (rho <= 1.0))

    def test_particles_carry_checkpoints_at_window_end(self, result):
        for p in result.posterior:
            assert p.checkpoint is not None
            assert p.checkpoint.day == 24

    def test_segments_cover_window(self, result):
        for p in result.posterior:
            assert p.segment.start_day == 10
            assert p.segment.end_day == 24
            assert p.history.start_day == 0

    def test_diagnostics_populated(self, result):
        d = result.diagnostics
        assert d.n_particles == 60
        assert 0 < d.ess <= 60
        assert np.isfinite(d.log_evidence)

    def test_summary_structure(self, result):
        s = result.summary()
        assert "theta" in s and "rho" in s
        # The median (unlike the mean) always lies inside the 90% interval.
        assert s["theta"]["ci90"][0] <= s["theta"]["median"] <= s["theta"]["ci90"][1]


class TestSequentialRun:
    @pytest.fixture(scope="class")
    def results(self, small_truth):
        schedule = WindowSchedule.from_breaks([10, 20, 30])
        calib = calibrator(schedule, small_truth)
        return calib.run(small_truth.observations())

    def test_one_result_per_window(self, results):
        assert len(results) == 2
        assert results[0].window.label() == "Days 10-19"
        assert results[1].window.label() == "Days 20-29"

    def test_second_window_histories_extend(self, results):
        for p in results[1].posterior:
            assert p.history.start_day == 0
            assert p.history.end_day == 30
            assert p.segment.start_day == 20

    def test_checkpoints_advance(self, results):
        assert results[0].posterior[0].checkpoint.day == 20
        assert results[1].posterior[0].checkpoint.day == 30

    def test_continuation_seeds_fresh(self, results):
        s0 = set(results[0].posterior.seeds().tolist())
        s1 = set(results[1].posterior.seeds().tolist())
        assert not (s0 & s1)

    def test_reproducible_given_base_seed(self, small_truth):
        schedule = WindowSchedule.from_breaks([10, 20])
        r1 = calibrator(schedule, small_truth).run(small_truth.observations())
        r2 = calibrator(schedule, small_truth).run(small_truth.observations())
        assert np.array_equal(r1[0].posterior.values("theta"),
                              r2[0].posterior.values("theta"))

    def test_weighted_ensemble_kept_when_requested(self, small_truth):
        schedule = WindowSchedule.from_breaks([10, 20])
        cfg = SMCConfig(n_parameter_draws=10, n_replicates=2,
                        resample_size=10, keep_weighted_ensemble=True)
        res = calibrator(schedule, small_truth, config=cfg).run(
            small_truth.observations())
        assert res[0].weighted_ensemble is not None
        assert len(res[0].weighted_ensemble) == 20


class TestPerWindowRandomness:
    """Regression: jitter, bias-thinning and resampling must draw from
    window-indexed streams, not re-create the same stream every window."""

    class SpyBank:
        def __init__(self, bank):
            self._bank = bank
            self.calls = []

        def ancillary_generator(self, purpose=0, window_index=None):
            self.calls.append((purpose, window_index))
            return self._bank.ancillary_generator(purpose, window_index)

        def __getattr__(self, name):
            return getattr(self._bank, name)

    def test_ancillary_streams_are_window_indexed(self, small_truth):
        from repro.core.smc import (_PURPOSE_BIAS, _PURPOSE_JITTER,
                                    _PURPOSE_RESAMPLE)
        schedule = WindowSchedule.from_breaks([10, 18, 26, 34])
        calib = calibrator(schedule, small_truth)
        spy = self.SpyBank(calib._bank)
        calib._bank = spy
        calib.run(small_truth.observations())
        windows_seen = {purpose: {w for p, w in spy.calls if p == purpose}
                        for purpose in (_PURPOSE_BIAS, _PURPOSE_RESAMPLE,
                                        _PURPOSE_JITTER)}
        assert windows_seen[_PURPOSE_BIAS] == {0, 1, 2}
        assert windows_seen[_PURPOSE_RESAMPLE] == {0, 1, 2}
        assert windows_seen[_PURPOSE_JITTER] == {1, 2}  # no jitter in window 0

    def test_resample_draws_differ_across_windows(self, small_truth):
        """Identical weight vectors in different windows must not resample
        to identical ancestor indices (the observable symptom of the bug)."""
        from repro.core.smc import _PURPOSE_RESAMPLE
        from repro.core.resampling import multinomial_resample
        calib = calibrator(WindowSchedule.from_breaks([10, 20]), small_truth)
        w = np.full(50, 1 / 50)
        picks = [multinomial_resample(
            w, 50, calib._bank.ancillary_generator(_PURPOSE_RESAMPLE,
                                                   window_index=i))
            for i in range(3)]
        assert not np.array_equal(picks[0], picks[1])
        assert not np.array_equal(picks[1], picks[2])


class TestRecovery:
    def test_theta_recovered_with_pinned_rho(self, small_truth):
        """With rho pinned at truth, theta must concentrate near 0.30."""
        schedule = WindowSchedule.from_breaks([10, 24])
        prior = IndependentProduct({"theta": Uniform(0.1, 0.5),
                                    "rho": Dirac(0.7)})
        calib = SequentialCalibrator(
            base_params=small_truth.params, prior=prior,
            jitter=paper_window_jitter(),
            observation_model=paper_observation_model(bias_mode="mean"),
            schedule=schedule,
            config=SMCConfig(n_parameter_draws=60, n_replicates=3,
                             resample_size=60, base_seed=23))
        result = calib.run(small_truth.observations())[0]
        assert result.posterior.weighted_mean("theta") == pytest.approx(
            0.30, abs=0.06)
