"""Tests for the sharded batched simulation layer.

Contract under test (see ``repro/hpc/sharding.py``):

* bit-reproducibility given a fixed ``(base_seed, shard layout)``,
  including across executors (serial vs process pool);
* distributional invariance to the shard layout (1 shard vs many overlap
  the scalar oracle's credible intervals);
* ordered reassembly of the :class:`ParticleEnsemble` even when an
  executor returns shard results out of order.
"""

import numpy as np
import pytest

from repro.core import (SequentialCalibrator, SMCConfig, WindowSchedule,
                        paper_first_window_prior, paper_observation_model,
                        paper_window_jitter)
from repro.data import PiecewiseConstant
from repro.hpc import (ProcessExecutor, SerialExecutor, ShardTask,
                       dispatch_shards)
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth


@pytest.fixture(scope="module")
def small_truth():
    params = DiseaseParameters(population=50_000, initial_exposed=100)
    return make_ground_truth(params=params, horizon=35, seed=555,
                             theta_schedule=PiecewiseConstant.constant(0.30),
                             rho_schedule=PiecewiseConstant.constant(0.7))


def run_calibration(truth, *, executor=None, engine="binomial_leap_batched",
                    shard_size=None, n_shards="auto", base_seed=17,
                    breaks=(10, 20, 30), **config_kwargs):
    calib = SequentialCalibrator(
        base_params=truth.params,
        prior=paper_first_window_prior(),
        jitter=paper_window_jitter(),
        observation_model=paper_observation_model(),
        schedule=WindowSchedule.from_breaks(list(breaks)),
        config=SMCConfig(n_parameter_draws=40, n_replicates=2,
                         resample_size=60, base_seed=base_seed,
                         engine=engine, shard_size=shard_size,
                         n_shards=n_shards, **config_kwargs),
        executor=executor)
    return calib.run(truth.observations())


def assert_runs_identical(a, b):
    """Window-by-window bitwise identity of two calibration runs."""
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        for name in ("theta", "rho"):
            assert np.array_equal(ra.posterior.values(name),
                                  rb.posterior.values(name))
        for pa, pb in zip(ra.posterior, rb.posterior):
            assert np.array_equal(pa.segment.infections, pb.segment.infections)
            assert pa.checkpoint.snapshot["counts"] == \
                pb.checkpoint.snapshot["counts"]


class OutOfOrderExecutor(SerialExecutor):
    """Protocol violator: returns results in reverse task order."""

    @property
    def workers(self) -> int:
        return 4

    def map(self, fn, tasks):
        return [fn(t) for t in reversed(list(tasks))]


class WideSerialExecutor(SerialExecutor):
    """Runs in-process but advertises many workers (drives the auto policy)."""

    def __init__(self, workers: int) -> None:
        self._workers = workers
        self.task_counts: list[int] = []

    @property
    def workers(self) -> int:
        return self._workers

    def map(self, fn, tasks):
        tasks = list(tasks)
        self.task_counts.append(len(tasks))
        return [fn(t) for t in tasks]


class TestConfigKnobs:
    def test_shard_knob_validation(self):
        with pytest.raises(ValueError, match="shard_size"):
            SMCConfig(shard_size=0)
        with pytest.raises(ValueError, match="n_shards"):
            SMCConfig(n_shards=0)
        with pytest.raises(ValueError, match="n_shards"):
            SMCConfig(n_shards="many")
        with pytest.raises(ValueError, match="not both"):
            SMCConfig(shard_size=4, n_shards=2)

    def test_shard_task_needs_exactly_one_source(self):
        params = DiseaseParameters(population=1000, initial_exposed=5)
        with pytest.raises(ValueError, match="start_day/state"):
            ShardTask(shard_id=0, params=params, seeds=np.array([1]),
                      thetas=np.array([0.3]), end_day=5,
                      engine="binomial_leap_batched")


class TestFixedLayoutReproducibility:
    def test_same_layout_same_bits(self, small_truth):
        a = run_calibration(small_truth, shard_size=13)
        b = run_calibration(small_truth, shard_size=13)
        assert_runs_identical(a, b)

    def test_serial_vs_process_bit_identical(self, small_truth):
        """Acceptance: identical results for a fixed (base_seed, layout)
        across SerialExecutor and ProcessExecutor."""
        serial = run_calibration(small_truth, shard_size=25,
                                 executor=SerialExecutor())
        with ProcessExecutor(max_workers=2) as pool:
            pooled = run_calibration(small_truth, shard_size=25,
                                     executor=pool)
        assert_runs_identical(serial, pooled)

    def test_out_of_order_executor_reassembled_in_order(self, small_truth):
        """Reassembly keys on the echoed shard id, not result position."""
        ordered = run_calibration(small_truth, shard_size=10,
                                  executor=SerialExecutor())
        scrambled = run_calibration(small_truth, shard_size=10,
                                    executor=OutOfOrderExecutor())
        assert_runs_identical(ordered, scrambled)


class TestShardLayoutPolicy:
    def test_auto_policy_one_shard_per_worker(self, small_truth):
        spy = WideSerialExecutor(workers=3)
        run_calibration(small_truth, executor=spy, breaks=(10, 20))
        # One window, one structural group, three workers -> three shards.
        assert spy.task_counts == [3]

    def test_explicit_n_shards_overrides_workers(self, small_truth):
        spy = WideSerialExecutor(workers=3)
        run_calibration(small_truth, executor=spy, n_shards=5,
                        breaks=(10, 20))
        assert spy.task_counts == [5]

    def test_more_shards_than_particles_never_empty(self, small_truth):
        """Degenerate layouts clamp to one member per shard and still run."""
        spy = WideSerialExecutor(workers=3)
        results = run_calibration(small_truth, executor=spy, n_shards=500,
                                  breaks=(10, 20))
        assert spy.task_counts == [80]  # 40 draws x 2 replicates
        assert len(results[0].posterior) == 60


class TestShardInvariance:
    """Distributional parity: layouts only re-key the per-shard streams."""

    @pytest.fixture(scope="class")
    def runs(self, small_truth):
        return {
            "scalar": run_calibration(small_truth, engine="binomial_leap"),
            "one_shard": run_calibration(small_truth, n_shards=1),
            "many_shards": run_calibration(small_truth, shard_size=9),
        }

    @pytest.mark.parametrize("pair", [("one_shard", "many_shards"),
                                      ("scalar", "many_shards"),
                                      ("scalar", "one_shard")])
    def test_credible_intervals_overlap(self, runs, pair):
        left, right = (runs[p] for p in pair)
        for w in range(2):
            for name in ("theta", "rho"):
                lo_l, hi_l = left[w].posterior.credible_interval(name, 0.9)
                lo_r, hi_r = right[w].posterior.credible_interval(name, 0.9)
                assert lo_l <= hi_r and lo_r <= hi_l, (
                    f"window {w} {name}: {pair[0]} [{lo_l:.3f}, {hi_l:.3f}] "
                    f"vs {pair[1]} [{lo_r:.3f}, {hi_r:.3f}] do not overlap")

    def test_posterior_means_close_across_layouts(self, runs):
        for w in range(2):
            t1 = runs["one_shard"][w].posterior.weighted_mean("theta")
            t2 = runs["many_shards"][w].posterior.weighted_mean("theta")
            assert t2 == pytest.approx(t1, abs=0.08)


class TestAdaptiveSizeShardInvariance:
    """Size changes and shard layouts must compose, not interfere.

    Adaptive runs obey the same contract as fixed-size ones: bit-identical
    for a fixed ``(base_seed, policy, shard layout)`` across executors
    (the layout is recomputed per window from whatever size the policy
    proposed), the same per-window size trajectory whatever the layout
    (policies see ESS fractions, which layouts only perturb), and
    distributional agreement across layouts.
    """

    #: A policy whose band edges sit far from the realised ESS fractions
    #: (~0.08 and ~0.2 on this scenario), so every window shrinks the next
    #: cloud and a layout re-keying the simulation streams cannot flip a
    #: decision.
    ADAPTIVE = dict(size_policy="ess",
                    size_policy_options={"target_low": 0.01,
                                         "target_high": 0.05,
                                         "n_min": 24, "n_max": 200})

    #: The trajectory a fixed-size run would produce (40 draws x 2
    #: replicates, then resample_size per continuation window).
    FIXED_SIZES = [80, 60]

    @staticmethod
    def sizes(results):
        return [r.diagnostics.n_particles for r in results]

    def test_adaptive_run_actually_resizes(self, small_truth):
        """Every other test in this class is only meaningful if the policy
        really changes the cloud size mid-run."""
        results = run_calibration(small_truth, shard_size=16, **self.ADAPTIVE)
        sizes = self.sizes(results)
        assert len(sizes) == len(self.FIXED_SIZES)
        assert sizes != self.FIXED_SIZES, \
            "scenario no longer exercises a size change; re-tune the policy"
        assert sizes[1] < self.FIXED_SIZES[1]  # the band forces a shrink

    def test_adaptive_serial_vs_process_bit_identical(self, small_truth):
        """Acceptance: adaptive runs are identical across executors for a
        fixed (base_seed, policy, shard layout)."""
        serial = run_calibration(small_truth, shard_size=16,
                                 executor=SerialExecutor(), **self.ADAPTIVE)
        with ProcessExecutor(max_workers=2) as pool:
            pooled = run_calibration(small_truth, shard_size=16,
                                     executor=pool, **self.ADAPTIVE)
        assert self.sizes(serial) == self.sizes(pooled)
        assert_runs_identical(serial, pooled)

    def test_adaptive_same_layout_same_bits(self, small_truth):
        a = run_calibration(small_truth, shard_size=16, **self.ADAPTIVE)
        b = run_calibration(small_truth, shard_size=16, **self.ADAPTIVE)
        assert_runs_identical(a, b)

    def test_explicit_shard_size_immune_to_worker_count(self, small_truth):
        """With an explicit shard_size, n_shards='auto' and the executor's
        advertised parallelism have no effect on the bits."""
        narrow = run_calibration(small_truth, shard_size=16,
                                 executor=WideSerialExecutor(workers=1),
                                 **self.ADAPTIVE)
        wide = run_calibration(small_truth, shard_size=16,
                               executor=WideSerialExecutor(workers=6),
                               **self.ADAPTIVE)
        assert_runs_identical(narrow, wide)

    @pytest.mark.parametrize("layouts", [({"n_shards": 1}, {"n_shards": 3}),
                                         ({"n_shards": 1}, {"shard_size": 7})])
    def test_size_trajectory_invariant_across_layouts(self, small_truth,
                                                      layouts):
        left, right = (run_calibration(small_truth, **layout, **self.ADAPTIVE)
                       for layout in layouts)
        assert self.sizes(left) == self.sizes(right)
        for w in range(len(left)):
            for name in ("theta", "rho"):
                lo_l, hi_l = left[w].posterior.credible_interval(name, 0.9)
                lo_r, hi_r = right[w].posterior.credible_interval(name, 0.9)
                assert lo_l <= hi_r and lo_r <= hi_l, (
                    f"window {w} {name}: CIs across layouts do not overlap")

    def test_shard_bounds_follow_the_policy_size(self, small_truth):
        """Auto layout re-splits each window's (resized) cloud per worker."""
        spy = WideSerialExecutor(workers=4)
        results = run_calibration(small_truth, executor=spy, **self.ADAPTIVE)
        # one map per window, always 4 shards, whatever the cloud size
        assert spy.task_counts == [4] * len(results)


class TestDispatchRobustness:
    class DroppingExecutor(SerialExecutor):
        def map(self, fn, tasks):
            return [fn(t) for t in list(tasks)[:-1]]

    class DuplicatingExecutor(SerialExecutor):
        def map(self, fn, tasks):
            out = [fn(t) for t in tasks]
            return out + out[:1]

    @staticmethod
    def _tasks(n_shards):
        params = DiseaseParameters(population=2000, initial_exposed=10)
        return [ShardTask(shard_id=i, params=params,
                          seeds=np.array([100 + i]),
                          thetas=np.array([0.3]), end_day=3,
                          engine="binomial_leap_batched", start_day=0)
                for i in range(n_shards)]

    def test_dropped_shard_detected(self):
        with pytest.raises(ValueError, match="dropped"):
            dispatch_shards(self.DroppingExecutor(), self._tasks(3))

    def test_duplicated_shard_detected(self):
        with pytest.raises(ValueError, match="twice"):
            dispatch_shards(self.DuplicatingExecutor(), self._tasks(3))

    def test_empty_task_list(self):
        assert dispatch_shards(SerialExecutor(), []) == []
