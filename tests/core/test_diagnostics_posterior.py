"""Unit tests for diagnostics and posterior summaries."""

import numpy as np
import pytest

from repro.core import (WindowDiagnostics, assess, compute_diagnostics,
                        hpd_region_mass, joint_density_grid,
                        marginal_histogram, trajectory_ribbon)
from repro.core.weights import normalize_log_weights
from repro.seir import Trajectory


class TestDiagnostics:
    def _diag(self, log_weights):
        lw = np.asarray(log_weights, dtype=float)
        return compute_diagnostics(lw, normalize_log_weights(lw), 3)

    def test_uniform_weights_healthy(self):
        d = self._diag(np.zeros(100))
        assert d.ess == pytest.approx(100.0)
        assert d.ess_fraction == pytest.approx(1.0)
        assert not d.degenerate
        assert "healthy" in assess(d)

    def test_collapsed_weights_degenerate(self):
        lw = np.full(100, -1000.0)
        lw[0] = 0.0
        d = self._diag(lw)
        assert d.ess == pytest.approx(1.0, rel=1e-6)
        assert d.degenerate
        assert "DEGENERATE" in assess(d)

    def test_log_evidence_uniform(self):
        """Average weight of exp(-3) everywhere -> log evidence = -3."""
        d = self._diag(np.full(50, -3.0))
        assert d.log_evidence == pytest.approx(-3.0)

    def test_entropy_fraction_bounds(self):
        d = self._diag(np.linspace(-5, 0, 64))
        assert 0.0 < d.entropy_fraction <= 1.0

    def test_single_particle_entropy_fraction_is_one(self):
        """Regression: n=1 is uniform-over-one (the only possible state),
        not a collapsed ensemble — the fraction must read 1.0, not 0.0."""
        d = self._diag(np.array([-2.5]))
        assert d.entropy == 0.0
        assert d.entropy_fraction == 1.0

    def test_log_evidence_reuses_logsumexp(self):
        """log_evidence is logsumexp(lw) - log(n) — including on weight
        vectors whose naive mean-of-exponentials would overflow."""
        from repro.core import logsumexp
        lw = np.array([700.0, 699.0, -10.0])
        d = self._diag(lw)
        assert d.log_evidence == pytest.approx(logsumexp(lw) - np.log(3))
        assert np.isfinite(d.log_evidence)

    def test_round_trip(self):
        d = self._diag(np.zeros(10))
        restored = WindowDiagnostics.from_dict(d.to_dict())
        assert restored == d

    def test_round_trip_with_temper_fields(self):
        lw = np.linspace(-4, 0, 10)
        d = compute_diagnostics(lw, normalize_log_weights(lw), 3,
                                temper_schedule=(0.25, 1.0),
                                temper_stage_ess=(6.0, 5.0))
        assert d.tempered
        assert d.temper_stages == 2
        restored = WindowDiagnostics.from_dict(d.to_dict())
        assert restored == d
        assert restored.temper_schedule == (0.25, 1.0)

    def test_from_dict_tolerates_pre_temper_payloads(self):
        """Back-compat: payloads written before the tempering audit fields
        existed must still round-trip (empty schedule = no tempering)."""
        d = self._diag(np.zeros(10))
        payload = d.to_dict()
        del payload["temper_schedule"], payload["temper_stage_ess"]
        restored = WindowDiagnostics.from_dict(payload)
        assert not restored.tempered
        assert restored.temper_stages == 0

    def test_temper_fields_must_align(self):
        lw = np.zeros(4)
        with pytest.raises(ValueError, match="align"):
            compute_diagnostics(lw, normalize_log_weights(lw), 1,
                                temper_schedule=(1.0,), temper_stage_ess=())

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compute_diagnostics(np.zeros(3), np.ones(4) / 4, 1)


def traj(values, start=0):
    v = np.asarray(values, dtype=float)
    z = np.zeros_like(v)
    return Trajectory(start, v, z, z, z)


class TestTrajectoryRibbon:
    def test_quantile_bands_ordered(self):
        trajs = [traj(np.full(10, float(k))) for k in range(100)]
        rib = trajectory_ribbon(trajs, "cases")
        assert np.all(rib.band(0.05) <= rib.band(0.5))
        assert np.all(rib.band(0.5) <= rib.band(0.95))
        assert rib.n_days == 10

    def test_median_of_constant_ensemble(self):
        trajs = [traj(np.full(5, 7.0)) for _ in range(10)]
        rib = trajectory_ribbon(trajs, "cases")
        assert np.allclose(rib.median(), 7.0)

    def test_weighted_ribbon_shifts(self):
        trajs = [traj(np.zeros(4)), traj(np.full(4, 10.0))]
        w_low = np.array([0.99, 0.01])
        rib = trajectory_ribbon(trajs, "cases", quantiles=(0.5,), weights=w_low)
        assert np.allclose(rib.band(0.5), 0.0)

    def test_coverage_of(self):
        trajs = [traj(np.full(6, float(k))) for k in range(11)]
        rib = trajectory_ribbon(trajs, "cases")
        inside = np.full(6, 5.0)
        assert rib.coverage_of(inside, 0.05, 0.95) == 1.0
        outside = np.full(6, 50.0)
        assert rib.coverage_of(outside, 0.05, 0.95) == 0.0

    def test_mismatched_day_ranges_rejected(self):
        with pytest.raises(ValueError):
            trajectory_ribbon([traj(np.zeros(3)), traj(np.zeros(4))], "cases")

    def test_unsorted_quantiles_rejected(self):
        with pytest.raises(ValueError):
            trajectory_ribbon([traj(np.zeros(3))], "cases", quantiles=(0.9, 0.1))

    def test_band_lookup_missing(self):
        rib = trajectory_ribbon([traj(np.zeros(3))], "cases", quantiles=(0.5,))
        with pytest.raises(KeyError):
            rib.band(0.9)


class TestHistogramAndDensity:
    def test_marginal_histogram_integrates_to_one(self, rng):
        x = rng.normal(size=2000)
        edges, dens = marginal_histogram(x, bins=30)
        widths = np.diff(edges)
        assert float((dens * widths).sum()) == pytest.approx(1.0)

    def test_marginal_histogram_support_override(self, rng):
        x = rng.uniform(0.2, 0.4, size=100)
        edges, _ = marginal_histogram(x, support=(0.0, 1.0), bins=10)
        assert edges[0] == 0.0
        assert edges[-1] == 1.0

    def test_joint_density_shape(self, rng):
        x = rng.normal(size=500)
        y = rng.normal(size=500)
        xe, ye, d = joint_density_grid(x, y, bins=20)
        assert d.shape == (20, 20)
        assert xe.shape == (21,)

    def test_joint_density_concentrates_at_mode(self, rng):
        x = rng.normal(0.0, 0.1, size=4000)
        y = rng.normal(0.0, 0.1, size=4000)
        xe, ye, d = joint_density_grid(x, y, bins=21,
                                       x_range=(-1, 1), y_range=(-1, 1))
        assert d[10, 10] == d.max()

    def test_hpd_region_mass_center_small(self, rng):
        x = rng.normal(0.0, 0.1, size=4000)
        y = rng.normal(0.0, 0.1, size=4000)
        _, _, d = joint_density_grid(x, y, bins=21,
                                     x_range=(-1, 1), y_range=(-1, 1))
        center = hpd_region_mass(d, (10, 10))
        corner = hpd_region_mass(d, (0, 0))
        assert center < 0.2
        assert corner == pytest.approx(1.0)

    def test_hpd_index_validated(self, rng):
        _, _, d = joint_density_grid(rng.normal(size=50), rng.normal(size=50),
                                     bins=5)
        with pytest.raises(ValueError):
            hpd_region_mass(d, (9, 9))
