"""Unit tests for the vectorized ensemble weighting subsystem.

Covers the batched stack end to end: ``BinomialBiasModel.apply_batch``,
``Likelihood.loglik_batch`` for all three families,
``ParticleEnsemble.segment_matrix``, ``ObservationModel.loglik_ensemble``,
and the calibrator-level parity of the batched path against the scalar
reference implementation.
"""

import numpy as np
import pytest

from repro.core import (BinomialBiasModel, GaussianTransformLikelihood,
                        Likelihood, NegativeBinomialLikelihood, Particle,
                        ParticleEnsemble, PoissonLikelihood, SMCConfig,
                        paper_likelihood, paper_observation_model)
from repro.data import CASES, DEATHS, ObservationSet, ObservationSource, TimeSeries
from repro.seir import Trajectory

ALL_FAMILIES = [paper_likelihood(), GaussianTransformLikelihood(sigma=2.5),
                PoissonLikelihood(), NegativeBinomialLikelihood(dispersion=3.0)]


def count_matrix(rng, n=20, d=14, hi=400):
    return rng.integers(0, hi, size=(n, d)).astype(np.float64)


def make_ensemble(rng, n=20, d=14, start=10):
    """Particles whose segments carry random case/death counts."""
    particles = []
    for i in range(n):
        traj = Trajectory(start,
                          rng.integers(0, 300, size=d).astype(float),
                          rng.integers(0, 9, size=d).astype(float),
                          np.zeros(d), np.zeros(d))
        particles.append(Particle(
            params={"theta": 0.2 + 0.01 * i, "rho": 0.3 + 0.02 * (i % 30)},
            seed=i, segment=traj))
    return ParticleEnsemble(particles)


def make_observations(rng, d=14, start=10):
    return ObservationSet.of(
        ObservationSource(CASES, TimeSeries(start, rng.integers(0, 200, size=d)),
                          channel=CASES, biased=True),
        ObservationSource(DEATHS, TimeSeries(start, rng.integers(0, 6, size=d)),
                          channel=DEATHS, biased=False))


class TestApplyBatch:
    def test_mean_mode_matches_per_particle(self, rng):
        counts = count_matrix(rng)
        rho = rng.uniform(0.1, 1.0, size=counts.shape[0])
        m = BinomialBiasModel("mean")
        batched = m.apply_batch(counts, rho)
        rows = np.vstack([m.apply(counts[i], rho[i]) for i in range(len(rho))])
        assert np.array_equal(batched, rows)

    def test_sample_mode_bit_matches_sequential_loop(self, rng):
        """The draw-order contract: one batched call consumes the stream
        exactly as a particle-major sequential loop would."""
        counts = count_matrix(rng)
        rho = rng.uniform(0.1, 1.0, size=counts.shape[0])
        m = BinomialBiasModel("sample")
        r1 = np.random.Generator(np.random.PCG64(7))
        r2 = np.random.Generator(np.random.PCG64(7))
        batched = m.apply_batch(counts, rho, r1)
        rows = np.vstack([m.apply(counts[i], rho[i], r2)
                          for i in range(len(rho))])
        assert np.array_equal(batched, rows)

    def test_sample_bounded_by_true(self, rng):
        counts = count_matrix(rng)
        rho = rng.uniform(0.1, 1.0, size=counts.shape[0])
        out = BinomialBiasModel("sample").apply_batch(counts, rho, rng)
        assert np.all(out >= 0)
        assert np.all(out <= counts)

    def test_sample_requires_rng(self, rng):
        with pytest.raises(ValueError, match="rng"):
            BinomialBiasModel("sample").apply_batch(
                count_matrix(rng), np.full(20, 0.5))

    def test_matrix_shape_enforced(self, rng):
        with pytest.raises(ValueError, match="n_particles, n_days"):
            BinomialBiasModel("mean").apply_batch(np.zeros(5), np.full(5, 0.5))

    def test_rho_per_particle_enforced(self, rng):
        counts = count_matrix(rng, n=6)
        with pytest.raises(ValueError, match="one entry per particle"):
            BinomialBiasModel("mean").apply_batch(counts, np.full(4, 0.5))

    def test_rho_range_validated(self, rng):
        counts = count_matrix(rng, n=3)
        for bad in (0.0, -0.2, 1.3):
            rho = np.array([0.5, bad, 0.7])
            with pytest.raises(ValueError, match="rho"):
                BinomialBiasModel("mean").apply_batch(counts, rho)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BinomialBiasModel("mean").apply_batch(
                np.array([[1.0, -2.0]]), np.array([0.5]))


class TestLoglikBatch:
    @pytest.mark.parametrize("lik", ALL_FAMILIES, ids=repr)
    def test_matches_scalar_rows(self, lik, rng):
        y = rng.integers(0, 300, size=14).astype(float)
        eta = count_matrix(rng, n=25)
        batched = lik.loglik_batch(y, eta)
        scalar = np.array([lik.loglik(y, row) for row in eta])
        assert batched.shape == (25,)
        assert np.allclose(batched, scalar, rtol=1e-12, atol=1e-9)

    def test_base_class_fallback_loops(self, rng):
        class Odd(Likelihood):
            def loglik(self, observed, simulated):
                return float(-np.abs(observed - simulated).sum())

        y = rng.integers(0, 50, size=5).astype(float)
        eta = count_matrix(rng, n=4, d=5, hi=50)
        out = Odd().loglik_batch(y, eta)
        assert np.allclose(out, [Odd().loglik(y, row) for row in eta])

    def test_day_axis_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="day-axis"):
            paper_likelihood().loglik_batch(np.zeros(3), np.zeros((4, 5)))

    def test_matrix_required(self):
        with pytest.raises(ValueError, match="n_particles, n_days"):
            paper_likelihood().loglik_batch(np.zeros(3), np.zeros(3))

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            paper_likelihood().loglik_batch(np.zeros(0), np.zeros((4, 0)))


class TestSegmentMatrix:
    def test_stacks_channel_values(self, rng):
        ens = make_ensemble(rng, n=7, d=10)
        mat = ens.segment_matrix(CASES)
        assert mat.shape == (7, 10)
        for i, p in enumerate(ens):
            assert np.array_equal(mat[i], p.segment.infections)

    def test_windowing(self, rng):
        ens = make_ensemble(rng, n=4, d=10, start=20)
        mat = ens.segment_matrix(DEATHS, 23, 27)
        assert mat.shape == (4, 4)
        assert np.array_equal(mat[0], ens[0].segment.deaths[3:7])

    def test_missing_segment_rejected(self):
        ens = ParticleEnsemble([Particle(params={"rho": 0.5}, seed=0)])
        with pytest.raises(ValueError, match="missing segment"):
            ens.segment_matrix(CASES)

    def test_uncovered_window_rejected(self, rng):
        ens = make_ensemble(rng, n=3, d=10, start=20)
        with pytest.raises(ValueError, match="does not cover"):
            ens.segment_matrix(CASES, 18, 25)

    def test_unknown_channel_rejected(self, rng):
        ens = make_ensemble(rng, n=2)
        with pytest.raises(KeyError, match="unknown channel"):
            ens.segment_matrix("r_effective")


class TestLoglikEnsemble:
    def test_mean_mode_matches_scalar_loglik(self, rng):
        ens = make_ensemble(rng, n=30)
        obs = make_observations(rng)
        om = paper_observation_model(bias_mode="mean")
        rho = ens.values("rho")
        batched = om.loglik_ensemble(obs, ens, rho, rng)
        scalar = np.array([om.loglik(obs, p.segment, p.params["rho"], rng)
                           for p in ens])
        assert np.allclose(batched, scalar, rtol=1e-12, atol=1e-9)

    def test_sample_mode_matches_scalar_with_single_biased_source(self, rng):
        """One biased source: source-major and particle-major draw orders
        coincide, so under a shared seed the paths consume identical thinning
        draws and agree up to float reduction order."""
        ens = make_ensemble(rng, n=30)
        obs = make_observations(rng)
        om = paper_observation_model(bias_mode="sample")
        r1 = np.random.Generator(np.random.PCG64(11))
        r2 = np.random.Generator(np.random.PCG64(11))
        batched = om.loglik_ensemble(obs, ens, ens.values("rho"), r1)
        scalar = np.array([om.loglik(obs, p.segment, p.params["rho"], r2)
                           for p in ens])
        assert np.allclose(batched, scalar, rtol=1e-12, atol=1e-9)

    def test_unconfigured_stream_rejected(self, rng):
        ens = make_ensemble(rng)
        obs = make_observations(rng).with_source(ObservationSource(
            "icu", TimeSeries(10, np.zeros(14)), channel="icu_census",
            biased=False))
        om = paper_observation_model(bias_mode="mean")
        with pytest.raises(KeyError, match="no SourceModel"):
            om.loglik_ensemble(obs, ens, ens.values("rho"), rng)

    def test_rho_length_enforced(self, rng):
        ens = make_ensemble(rng, n=8)
        obs = make_observations(rng)
        om = paper_observation_model(bias_mode="mean")
        with pytest.raises(ValueError, match="one entry per particle"):
            om.loglik_ensemble(obs, ens, np.full(5, 0.5), rng)


class TestCalibratorParity:
    @pytest.fixture(scope="class")
    def truth(self):
        from repro.data import PiecewiseConstant
        from repro.seir import DiseaseParameters
        from repro.sim import make_ground_truth
        params = DiseaseParameters(population=50_000, initial_exposed=100)
        return make_ground_truth(params=params, horizon=32, seed=99,
                                 theta_schedule=PiecewiseConstant.constant(0.30),
                                 rho_schedule=PiecewiseConstant.constant(0.7))

    def run(self, truth, weighting, bias_mode, seed=31):
        from repro.core import (SequentialCalibrator, WindowSchedule,
                                paper_first_window_prior, paper_window_jitter)
        calib = SequentialCalibrator(
            base_params=truth.params,
            prior=paper_first_window_prior(),
            jitter=paper_window_jitter(),
            observation_model=paper_observation_model(bias_mode=bias_mode),
            schedule=WindowSchedule.from_breaks([10, 20, 30]),
            config=SMCConfig(n_parameter_draws=25, n_replicates=2,
                             resample_size=30, base_seed=seed,
                             weighting=weighting))
        return calib.run(truth.observations())

    @pytest.mark.parametrize("bias_mode", ["mean", "sample"])
    def test_batched_equals_scalar_reference(self, truth, bias_mode):
        """The paper model has one biased source, so the batched path and
        the scalar oracle consume identical thinning draws and produce the
        same resampled posterior under a fixed base seed."""
        batched = self.run(truth, "batched", bias_mode)
        scalar = self.run(truth, "scalar", bias_mode)
        for b, s in zip(batched, scalar):
            assert np.array_equal(b.posterior.values("theta"),
                                  s.posterior.values("theta"))
            assert np.array_equal(b.posterior.values("rho"),
                                  s.posterior.values("rho"))
            assert b.diagnostics.ess == pytest.approx(s.diagnostics.ess,
                                                      rel=1e-12)

    def test_batched_run_bit_reproducible(self, truth):
        r1 = self.run(truth, "batched", "sample")
        r2 = self.run(truth, "batched", "sample")
        for a, b in zip(r1, r2):
            assert np.array_equal(a.posterior.values("theta"),
                                  b.posterior.values("theta"))
            assert np.array_equal(a.posterior.seeds(), b.posterior.seeds())

    def test_weighting_config_validated(self):
        with pytest.raises(ValueError, match="weighting"):
            SMCConfig(weighting="turbo")
