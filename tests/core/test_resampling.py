"""Unit tests for resampling schemes."""

import numpy as np
import pytest

from repro.core import (RESAMPLERS, get_resampler, multinomial_resample,
                        residual_resample, stratified_resample,
                        systematic_resample)

ALL = list(RESAMPLERS.values())


class TestCommonContract:
    @pytest.mark.parametrize("resampler", ALL)
    def test_output_shape_and_range(self, resampler, rng):
        w = np.array([0.1, 0.2, 0.3, 0.4])
        idx = resampler(w, 100, rng)
        assert idx.shape == (100,)
        assert idx.min() >= 0
        assert idx.max() < 4

    @pytest.mark.parametrize("resampler", ALL)
    def test_unnormalised_weights_accepted(self, resampler, rng):
        idx = resampler(np.array([1.0, 2.0, 7.0]), 50, rng)
        assert idx.max() <= 2

    @pytest.mark.parametrize("resampler", ALL)
    def test_zero_weight_never_selected(self, resampler, rng):
        w = np.array([0.5, 0.0, 0.5])
        idx = resampler(w, 200, rng)
        assert not np.any(idx == 1)

    @pytest.mark.parametrize("resampler", ALL)
    def test_degenerate_weight_always_selected(self, resampler, rng):
        w = np.array([0.0, 1.0, 0.0])
        idx = resampler(w, 20, rng)
        assert np.all(idx == 1)

    @pytest.mark.parametrize("resampler", ALL)
    def test_unbiasedness(self, resampler):
        """Expected selection counts are n*w within Monte-Carlo error."""
        w = np.array([0.1, 0.3, 0.6])
        counts = np.zeros(3)
        n_out, n_trials = 300, 40
        for t in range(n_trials):
            rng = np.random.Generator(np.random.PCG64(t))
            idx = resampler(w, n_out, rng)
            counts += np.bincount(idx, minlength=3)
        freq = counts / (n_out * n_trials)
        assert np.allclose(freq, w, atol=0.02)

    @pytest.mark.parametrize("resampler", ALL)
    def test_invalid_inputs_rejected(self, resampler, rng):
        with pytest.raises(ValueError):
            resampler(np.array([]), 5, rng)
        with pytest.raises(ValueError):
            resampler(np.array([0.5, 0.5]), 0, rng)
        with pytest.raises(ValueError):
            resampler(np.array([-0.1, 1.1]), 5, rng)
        with pytest.raises(ValueError):
            resampler(np.array([0.0, 0.0]), 5, rng)

    @pytest.mark.parametrize("resampler", ALL)
    def test_upsampling_allowed(self, resampler, rng):
        """Fig 3 draws 10k posterior from 500k prior; sizes may differ."""
        idx = resampler(np.array([0.5, 0.5]), 1000, rng)
        assert idx.shape == (1000,)


class TestVarianceOrdering:
    def _count_variance(self, resampler, n_trials=200):
        w = np.array([0.05, 0.15, 0.3, 0.5])
        n_out = 100
        counts = np.zeros((n_trials, 4))
        for t in range(n_trials):
            rng = np.random.Generator(np.random.PCG64(1000 + t))
            idx = resampler(w, n_out, rng)
            counts[t] = np.bincount(idx, minlength=4)
        return counts.var(axis=0).sum()

    def test_systematic_lower_variance_than_multinomial(self):
        assert (self._count_variance(systematic_resample)
                < self._count_variance(multinomial_resample))

    def test_residual_lower_variance_than_multinomial(self):
        assert (self._count_variance(residual_resample)
                < self._count_variance(multinomial_resample))

    def test_stratified_lower_variance_than_multinomial(self):
        assert (self._count_variance(stratified_resample)
                < self._count_variance(multinomial_resample))


class TestRegistry:
    def test_lookup(self):
        assert get_resampler("multinomial") is multinomial_resample

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown resampler"):
            get_resampler("bogus")

    def test_registry_complete(self):
        assert set(RESAMPLERS) == {"multinomial", "systematic", "stratified",
                                   "residual"}
