"""Tests for the batched simulation path of the sequential calibrator.

The scalar engine path is the reference oracle; the batched path must agree
with it *distributionally* (overlapping per-window credible intervals, the
PR-1 weighting precedent) while bypassing the executor and the per-task
dict/JSON checkpoint round-trips entirely.
"""

import numpy as np
import pytest

from repro.core import (Beta, IndependentProduct, JointJitter,
                        SequentialCalibrator, SMCConfig, Uniform,
                        UniformJitter, WindowSchedule,
                        paper_first_window_prior, paper_observation_model,
                        paper_window_jitter)
from repro.data import PiecewiseConstant
from repro.hpc import SerialExecutor
from repro.seir import Checkpoint, DiseaseParameters
from repro.sim import make_ground_truth


@pytest.fixture(scope="module")
def small_truth():
    params = DiseaseParameters(population=50_000, initial_exposed=100)
    return make_ground_truth(params=params, horizon=35, seed=555,
                             theta_schedule=PiecewiseConstant.constant(0.30),
                             rho_schedule=PiecewiseConstant.constant(0.7))


def calibrator(schedule, truth, engine, *, base_seed=17, executor=None,
               param_map=None, prior=None, jitter=None, n_continuations=1):
    return SequentialCalibrator(
        base_params=truth.params,
        prior=prior or paper_first_window_prior(),
        jitter=jitter or paper_window_jitter(),
        observation_model=paper_observation_model(),
        schedule=schedule,
        config=SMCConfig(n_parameter_draws=40, n_replicates=2,
                         resample_size=60, base_seed=base_seed,
                         engine=engine, n_continuations=n_continuations),
        executor=executor,
        param_map=param_map)


class TestConfig:
    def test_batched_engine_is_default(self):
        assert SMCConfig().engine == "binomial_leap_batched"
        assert SMCConfig().uses_batched_simulation

    def test_scalar_engines_not_batched(self):
        assert not SMCConfig(engine="binomial_leap").uses_batched_simulation
        assert not SMCConfig(engine="gillespie").uses_batched_simulation

    def test_unknown_engine_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown engine"):
            SMCConfig(engine="bogus_engine")


class TestScalarBatchedParity:
    """Acceptance: batched posteriors overlap the scalar run's intervals."""

    @pytest.fixture(scope="class")
    def runs(self, small_truth):
        schedule = WindowSchedule.from_breaks([10, 20, 30])
        obs = small_truth.observations()
        results = {}
        for engine in ("binomial_leap", "binomial_leap_batched"):
            calib = calibrator(schedule, small_truth, engine)
            results[engine] = calib.run(obs)
        return results

    def test_per_window_credible_intervals_overlap(self, runs):
        for w in range(2):
            for name in ("theta", "rho"):
                lo_s, hi_s = runs["binomial_leap"][w].posterior \
                    .credible_interval(name, 0.9)
                lo_b, hi_b = runs["binomial_leap_batched"][w].posterior \
                    .credible_interval(name, 0.9)
                assert lo_b <= hi_s and lo_s <= hi_b, (
                    f"window {w} {name}: scalar [{lo_s:.3f}, {hi_s:.3f}] vs "
                    f"batched [{lo_b:.3f}, {hi_b:.3f}] do not overlap")

    def test_posterior_means_close(self, runs):
        for w in range(2):
            t_s = runs["binomial_leap"][w].posterior.weighted_mean("theta")
            t_b = runs["binomial_leap_batched"][w].posterior \
                .weighted_mean("theta")
            assert t_b == pytest.approx(t_s, abs=0.08)

    def test_batched_particles_carry_scalar_checkpoints(self, runs):
        for result in runs["binomial_leap_batched"]:
            for p in result.posterior.particles[:5]:
                assert isinstance(p.checkpoint, Checkpoint)
                assert p.checkpoint.engine_name == "binomial_leap"
                assert p.checkpoint.day == result.window.end_day

    def test_batched_histories_contiguous(self, runs):
        final = runs["binomial_leap_batched"][-1].posterior
        for p in final.particles[:10]:
            assert p.history.start_day == 0
            assert p.history.end_day == 30
            assert p.segment.start_day == 20


class TestBatchedRunBehaviour:
    def test_reproducible_given_base_seed(self, small_truth):
        schedule = WindowSchedule.from_breaks([10, 20])
        obs = small_truth.observations()
        r1 = calibrator(schedule, small_truth,
                        "binomial_leap_batched").run(obs)
        r2 = calibrator(schedule, small_truth,
                        "binomial_leap_batched").run(obs)
        assert np.array_equal(r1[0].posterior.values("theta"),
                              r2[0].posterior.values("theta"))
        assert np.array_equal(r1[0].posterior.values("rho"),
                              r2[0].posterior.values("rho"))

    def test_serial_executor_gets_one_shard_per_window(self, small_truth):
        """Auto shard policy on a serial executor: one whole-group shard
        task per window, never one task per particle."""
        class SpyExecutor(SerialExecutor):
            task_counts = []

            def map(self, fn, tasks):
                tasks = list(tasks)
                SpyExecutor.task_counts.append(len(tasks))
                return super().map(fn, tasks)

        schedule = WindowSchedule.from_breaks([10, 20, 30])
        spy = SpyExecutor()
        calibrator(schedule, small_truth, "binomial_leap_batched",
                   executor=spy).run(small_truth.observations())
        # Two windows (first + one continuation), one structural group each.
        assert SpyExecutor.task_counts == [1, 1]

    def test_burn_in_start_honoured_by_both_paths(self, small_truth):
        """Scalar and batched first windows must share the burn-in clock."""
        obs = small_truth.observations()
        histories = {}
        for engine in ("binomial_leap", "binomial_leap_batched"):
            schedule = WindowSchedule.from_breaks([12, 22], burn_in_start=4)
            result = calibrator(schedule, small_truth, engine).run(obs)[0]
            p = result.posterior[0]
            histories[engine] = p.history
            assert p.history.start_day == 4
            assert p.segment.start_day == 12
        assert histories["binomial_leap"].end_day == \
            histories["binomial_leap_batched"].end_day

    def test_multiple_continuations(self, small_truth):
        schedule = WindowSchedule.from_breaks([10, 20, 30])
        results = calibrator(schedule, small_truth, "binomial_leap_batched",
                             n_continuations=2).run(
            small_truth.observations())
        assert len(results[-1].posterior) == 60

    def test_structural_param_map_splits_batches(self, small_truth):
        """A param_map touching a structural field still calibrates."""
        prior = IndependentProduct({
            "theta": Uniform(0.1, 0.5),
            "rho": Beta(4, 1),
            "mild": Uniform(0.85, 0.97),
        })
        jitter = JointJitter({"theta": UniformJitter.symmetric(0.05),
                              "rho": UniformJitter.symmetric(0.02),
                              "mild": UniformJitter.symmetric(0.01)})
        schedule = WindowSchedule.from_breaks([10, 20])
        calib = SequentialCalibrator(
            base_params=small_truth.params, prior=prior, jitter=jitter,
            observation_model=paper_observation_model(), schedule=schedule,
            config=SMCConfig(n_parameter_draws=8, n_replicates=2,
                             resample_size=12, base_seed=5,
                             engine="binomial_leap_batched"),
            param_map={"theta": "transmission_rate",
                       "mild": "mild_fraction"})
        result = calib.run(small_truth.observations())[0]
        assert len(result.posterior) == 12
        for p in result.posterior.particles[:5]:
            # Each particle's checkpoint carries its own structural draw.
            assert p.checkpoint.params.mild_fraction == pytest.approx(
                p.params["mild"])
            assert p.checkpoint.params.transmission_rate == pytest.approx(
                p.params["theta"])


class TestContinuationPayloadCache:
    def test_parent_checkpoints_serialised_once_per_window(self, small_truth,
                                                           monkeypatch):
        """Scalar path: to_dict once per distinct parent, not per task."""
        schedule = WindowSchedule.from_breaks([10, 20, 30])
        calib = calibrator(schedule, small_truth, "binomial_leap",
                           n_continuations=3)
        obs = small_truth.observations()
        window0, window1 = list(calib.schedule)
        posterior = calib._weigh_and_resample(
            0, window0, calib._first_window_ensemble(window0), obs).posterior

        parent_ids = {id(p.checkpoint) for p in posterior}
        counts = {"parent_to_dict": 0}
        original = Checkpoint.to_dict

        def counting_to_dict(self):
            if id(self) in parent_ids:
                counts["parent_to_dict"] += 1
            return original(self)

        monkeypatch.setattr(Checkpoint, "to_dict", counting_to_dict)
        ensemble = calib._continuation_ensemble(window1, 1, posterior)
        # 60 parents x 3 continuations = 180 tasks, but each distinct parent
        # checkpoint object (resampling duplicates share one) is serialised
        # exactly once.
        assert len(ensemble) == 180
        assert counts["parent_to_dict"] == len(parent_ids)