"""Unit tests for ensemble sweeps and the trajectory cache."""

import numpy as np
import pytest

from repro.hpc import ProcessExecutor
from repro.sim import EnsembleSpec, TrajectoryCache, common_seed_grid, run_ensemble


class TestEnsemble:
    def test_member_count_and_order(self, small_params):
        spec = common_seed_grid(
            param_updates=[{"transmission_rate": 0.2},
                           {"transmission_rate": 0.4}],
            seeds=[1, 2, 3], base_params=small_params, end_day=15)
        assert spec.n_members == 6
        result = run_ensemble(spec)
        assert len(result.trajectories) == 6

    def test_common_seeds_reproduce_across_draws(self, small_params):
        """Same (theta, seed) must give identical members in any sweep."""
        spec_a = common_seed_grid([{"transmission_rate": 0.3}], [7],
                                  small_params, end_day=20)
        spec_b = common_seed_grid([{"transmission_rate": 0.5},
                                   {"transmission_rate": 0.3}], [7],
                                  small_params, end_day=20)
        t_a = run_ensemble(spec_a).trajectory(0, 0)
        t_b = run_ensemble(spec_b).trajectory(1, 0)
        assert np.array_equal(t_a.infections, t_b.infections)

    def test_channel_matrix_shape(self, small_params):
        spec = common_seed_grid([{}, {}], [1, 2], small_params, end_day=10)
        mat = run_ensemble(spec).channel_matrix("cases")
        assert mat.shape == (2, 2, 10)

    def test_process_executor_matches_serial(self, small_params):
        spec = common_seed_grid([{"transmission_rate": 0.3}], [1, 2],
                                small_params, end_day=12)
        serial = run_ensemble(spec)
        with ProcessExecutor(max_workers=2) as ex:
            parallel = run_ensemble(spec, executor=ex)
        for a, b in zip(serial.trajectories, parallel.trajectories):
            assert np.array_equal(a.infections, b.infections)

    def test_spec_validation(self, small_params):
        with pytest.raises(ValueError):
            EnsembleSpec(small_params, (), (1,), 10)
        with pytest.raises(ValueError):
            EnsembleSpec(small_params, ({},), (), 10)
        with pytest.raises(ValueError):
            EnsembleSpec(small_params, ({},), (1,), 0)


class TestTrajectoryCache:
    def test_hit_after_put(self, small_params):
        cache = TrajectoryCache()
        t = cache.get_or_simulate(small_params, 1, 10)
        t2 = cache.get_or_simulate(small_params, 1, 10)
        assert t2 is t
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_different_seed_misses(self, small_params):
        cache = TrajectoryCache()
        cache.get_or_simulate(small_params, 1, 10)
        cache.get_or_simulate(small_params, 2, 10)
        assert cache.stats.misses == 2

    def test_different_params_miss(self, small_params):
        cache = TrajectoryCache()
        cache.get_or_simulate(small_params, 1, 10)
        cache.get_or_simulate(small_params.with_updates(transmission_rate=0.4),
                              1, 10)
        assert cache.stats.misses == 2

    def test_lru_eviction(self, small_params):
        cache = TrajectoryCache(max_entries=2)
        for seed in (1, 2, 3):
            cache.get_or_simulate(small_params, seed, 5)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # seed 1 was evicted
        assert cache.get(small_params, 1, 0, 5) is None

    def test_precision_rounding_merges_close_params(self, small_params):
        cache = TrajectoryCache(param_precision=2)
        a = small_params.with_updates(transmission_rate=0.300001)
        b = small_params.with_updates(transmission_rate=0.300002)
        cache.get_or_simulate(a, 1, 5)
        assert cache.get(b, 1, 0, 5) is not None

    def test_clear(self, small_params):
        cache = TrajectoryCache()
        cache.get_or_simulate(small_params, 1, 5)
        cache.clear()
        assert len(cache) == 0

    def test_hit_rate(self, small_params):
        cache = TrajectoryCache()
        assert cache.stats.hit_rate == 0.0
        cache.get_or_simulate(small_params, 1, 5)
        cache.get_or_simulate(small_params, 1, 5)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            TrajectoryCache(max_entries=0)
