"""Unit tests for the ground-truth factory (Fig 2 construction)."""

import numpy as np
import pytest

from repro.data import PiecewiseConstant
from repro.sim import make_fig2_ground_truth, make_ground_truth


@pytest.fixture(scope="module")
def truth(small_params_module):
    return make_ground_truth(params=small_params_module, horizon=40, seed=3)


@pytest.fixture(scope="module")
def small_params_module():
    from repro.seir import DiseaseParameters
    return DiseaseParameters(population=30_000, initial_exposed=60)


class TestGroundTruth:
    def test_observed_bounded_by_true(self, truth):
        assert np.all(truth.observed_cases.values <= truth.true_cases.values)

    def test_series_cover_horizon(self, truth):
        assert len(truth.true_cases) == 40
        assert len(truth.observed_cases) == 40
        assert len(truth.deaths) == 40

    def test_truth_lookups(self, truth):
        assert truth.theta_true(0) == 0.30
        assert truth.theta_true(34) == 0.27
        assert truth.rho_true(0) == 0.60
        assert truth.truth_point(34) == {"theta": 0.27, "rho": 0.70}

    def test_observations_cases_only(self, truth):
        obs = truth.observations()
        assert obs.names == ("cases",)
        assert obs["cases"].biased

    def test_observations_with_deaths(self, truth):
        obs = truth.observations(include_deaths=True)
        assert set(obs.names) == {"cases", "deaths"}
        assert not obs["deaths"].biased

    def test_truth_trajectory_deterministic(self, small_params_module):
        a = make_ground_truth(params=small_params_module, horizon=30, seed=3)
        b = make_ground_truth(params=small_params_module, horizon=30, seed=3)
        assert np.array_equal(a.true_cases.values, b.true_cases.values)
        assert np.array_equal(a.observed_cases.values, b.observed_cases.values)

    def test_different_seed_differs(self, small_params_module):
        a = make_ground_truth(params=small_params_module, horizon=30, seed=3)
        b = make_ground_truth(params=small_params_module, horizon=30, seed=4)
        assert not np.array_equal(a.true_cases.values, b.true_cases.values)

    def test_thinning_independent_of_truth_stream(self, small_params_module):
        """Observation noise must not perturb the truth trajectory."""
        a = make_ground_truth(params=small_params_module, horizon=25, seed=9,
                              rho_schedule=PiecewiseConstant.constant(0.5))
        b = make_ground_truth(params=small_params_module, horizon=25, seed=9,
                              rho_schedule=PiecewiseConstant.constant(0.9))
        assert np.array_equal(a.true_cases.values, b.true_cases.values)
        assert not np.array_equal(a.observed_cases.values,
                                  b.observed_cases.values)

    def test_invalid_horizon(self, small_params_module):
        with pytest.raises(ValueError):
            make_ground_truth(params=small_params_module, horizon=0)


class TestFig2Defaults:
    def test_uses_paper_schedules(self):
        truth = make_fig2_ground_truth(horizon=1)
        assert truth.theta_schedule.values == (0.30, 0.27, 0.25, 0.40)
        assert truth.rho_schedule.values == (0.60, 0.70, 0.85, 0.80)

    def test_chicago_scale_defaults(self):
        truth = make_fig2_ground_truth(horizon=1)
        assert truth.params.population == 2_700_000
