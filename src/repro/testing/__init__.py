"""Reusable test scaffolding: bitwise parity oracles and fixtures.

Shipped inside the package (rather than under ``tests/``) so the parity
guarantees of ``docs/scenarios.md`` are assertable by downstream users'
own suites, not just this repository's.
"""

from .parity import (assert_ensembles_identical, assert_particles_identical,
                     assert_runs_identical, assert_trajectories_identical,
                     assert_window_results_identical, parity_calibrator,
                     parity_config, parity_sweep, parity_truth,
                     statistical_diagnostics)

__all__ = [
    "assert_trajectories_identical",
    "assert_particles_identical",
    "assert_ensembles_identical",
    "assert_window_results_identical",
    "assert_runs_identical",
    "statistical_diagnostics",
    "parity_truth",
    "parity_config",
    "parity_calibrator",
    "parity_sweep",
]
