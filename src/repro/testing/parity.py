"""Parity oracles: assert two calibration artefacts are bit-identical.

The scenario-vectorization guarantees (``docs/scenarios.md``) are all
phrased as bitwise identities: a scenario calibrated inside a sweep must
equal the same scenario calibrated alone; an N=1 sweep must equal the
plain batched calibrator; a retried or killed-and-resumed sweep must equal
an uninterrupted one.  These helpers state those identities once, so every
suite (parity oracles, property tests, chaos tests) asserts the same
thing with the same tolerance — none.

Execution metadata is deliberately excluded from the comparison: a
retried run records its recovered shard failures in
``WindowDiagnostics.shard_failures`` / ``shard_failure_causes`` while its
statistical state stays bit-identical to a fault-free run, so those two
keys are stripped before diagnostics are compared
(:func:`statistical_diagnostics`).

The module also ships the standard small parity environment — a
town-scale ground truth and calibrator/sweep factories with a pinned
shard layout — so oracle suites across files exercise identical inputs.
"""

from __future__ import annotations

from typing import Mapping

from numpy import array_equal, generic, ndarray

from ..core import (SequentialCalibrator, SMCConfig, WindowSchedule,
                    paper_first_window_prior, paper_observation_model,
                    paper_window_jitter)
from ..core.scenarios import ScenarioSweep
from ..data import PiecewiseConstant
from ..seir import DiseaseParameters
from ..sim import make_ground_truth

__all__ = [
    "assert_trajectories_identical",
    "assert_particles_identical",
    "assert_ensembles_identical",
    "assert_window_results_identical",
    "assert_runs_identical",
    "statistical_diagnostics",
    "parity_truth",
    "parity_config",
    "parity_calibrator",
    "parity_sweep",
]

#: Trajectory channels compared bitwise by the oracles.
_CHANNELS = ("infections", "deaths", "hospital_census", "icu_census")

#: Diagnostics keys that record *how* a window was executed rather than
#: *what* it computed; legitimately differ between bit-identical runs.
_EXECUTION_METADATA = ("shard_failures", "shard_failure_causes")


def _where(context: str) -> str:
    return f" ({context})" if context else ""


def _normalised(value):
    """Recursively convert numpy containers so ``==`` is bitwise equality."""
    if isinstance(value, ndarray):
        return value.tolist()
    if isinstance(value, generic):
        return value.item()
    if isinstance(value, Mapping):
        return {key: _normalised(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalised(item) for item in value]
    return value


# --------------------------------------------------------------------- #
# assertions
# --------------------------------------------------------------------- #
def assert_trajectories_identical(a, b, context: str = "") -> None:
    """Bitwise equality of two trajectories (or both absent)."""
    where = _where(context)
    if a is None or b is None:
        assert a is None and b is None, f"trajectory presence differs{where}"
        return
    assert a.start_day == b.start_day, (
        f"start days differ{where}: {a.start_day} != {b.start_day}")
    for channel in _CHANNELS:
        left, right = getattr(a, channel), getattr(b, channel)
        assert left.shape == right.shape and array_equal(left, right), (
            f"channel {channel!r} differs{where}")


def assert_particles_identical(a, b, context: str = "") -> None:
    """Bitwise equality of two particles including their checkpoints."""
    where = _where(context)
    assert a.params == b.params, (
        f"params differ{where}: {a.params} != {b.params}")
    assert a.seed == b.seed, f"seeds differ{where}: {a.seed} != {b.seed}"
    assert a.log_weight == b.log_weight, (
        f"log-weights differ{where}: {a.log_weight} != {b.log_weight}")
    assert a.ancestor == b.ancestor, (
        f"ancestors differ{where}: {a.ancestor} != {b.ancestor}")
    assert_trajectories_identical(a.segment, b.segment,
                                  f"{context} segment".strip())
    assert_trajectories_identical(a.history, b.history,
                                  f"{context} history".strip())
    if a.checkpoint is None or b.checkpoint is None:
        assert a.checkpoint is None and b.checkpoint is None, (
            f"checkpoint presence differs{where}")
        return
    assert (_normalised(a.checkpoint.to_dict())
            == _normalised(b.checkpoint.to_dict())), (
        f"checkpoints differ{where}")


def assert_ensembles_identical(a, b, context: str = "") -> None:
    """Bitwise equality of two particle ensembles, member by member."""
    assert len(a) == len(b), (
        f"ensemble sizes differ{_where(context)}: {len(a)} != {len(b)}")
    for i, (pa, pb) in enumerate(zip(a, b)):
        assert_particles_identical(pa, pb, f"{context} particle {i}".strip())


def statistical_diagnostics(diagnostics) -> dict:
    """Diagnostics dict with execution metadata stripped for comparison."""
    payload = diagnostics.to_dict()
    for key in _EXECUTION_METADATA:
        payload.pop(key, None)
    return payload


def assert_window_results_identical(a, b, context: str = "") -> None:
    """Bitwise equality of two window results, modulo execution metadata."""
    where = _where(context)
    assert a.index == b.index, (
        f"window indices differ{where}: {a.index} != {b.index}")
    assert a.window == b.window, (
        f"windows differ{where}: {a.window} != {b.window}")
    assert statistical_diagnostics(a.diagnostics) == \
        statistical_diagnostics(b.diagnostics), (
        f"diagnostics differ{where} at window {a.index}")
    assert_ensembles_identical(a.posterior, b.posterior,
                               f"{context} window {a.index}".strip())


def assert_runs_identical(a, b, context: str = "") -> None:
    """Bitwise equality of two full window-result sequences."""
    a, b = list(a), list(b)
    assert len(a) == len(b), (
        f"window counts differ{_where(context)}: {len(a)} != {len(b)}")
    for wa, wb in zip(a, b):
        assert_window_results_identical(wa, wb, context)


# --------------------------------------------------------------------- #
# the standard small parity environment
# --------------------------------------------------------------------- #
def parity_truth(population: int = 50_000, horizon: int = 35,
                 seed: int = 555):
    """Town-scale ground truth shared by the parity suites.

    Small enough that a full four-window calibration at the
    :func:`parity_config` sizes runs in well under a second, large enough
    that the binomial-leap dynamics are non-degenerate.
    """
    params = DiseaseParameters(population=population, initial_exposed=100)
    return make_ground_truth(params=params, horizon=horizon, seed=seed,
                             theta_schedule=PiecewiseConstant.constant(0.30),
                             rho_schedule=PiecewiseConstant.constant(0.7))


def parity_config(base_seed: int = 17, **config_kwargs) -> SMCConfig:
    """Small batched config with the fixed shard layout the oracles pin.

    ``n_shards=3`` (unless overridden) keeps shard boundaries identical
    across serial and pooled executors, so cross-executor comparisons are
    bitwise rather than merely statistical.
    """
    config_kwargs.setdefault("n_shards", 3)
    config_kwargs.setdefault("engine", "binomial_leap_batched")
    return SMCConfig(n_parameter_draws=30, n_replicates=2, resample_size=40,
                     base_seed=base_seed, **config_kwargs)


_PARITY_BREAKS = (8, 16, 24, 32)


def parity_calibrator(truth, *, scenario=None, executor=None,
                      breaks=_PARITY_BREAKS, base_seed: int = 17,
                      progress=None, **config_kwargs) -> SequentialCalibrator:
    """A single-scenario calibrator over the standard parity environment."""
    return SequentialCalibrator(
        base_params=truth.params,
        prior=paper_first_window_prior(),
        jitter=paper_window_jitter(),
        observation_model=paper_observation_model(),
        schedule=WindowSchedule.from_breaks(list(breaks)),
        config=parity_config(base_seed, **config_kwargs),
        executor=executor, progress=progress, scenario=scenario)


def parity_sweep(truth, scenarios, *, executor=None, breaks=_PARITY_BREAKS,
                 base_seed: int = 17, progress=None,
                 **config_kwargs) -> ScenarioSweep:
    """A multi-scenario sweep over the same environment and shard layout."""
    return ScenarioSweep(
        base_params=truth.params,
        prior=paper_first_window_prior(),
        jitter=paper_window_jitter(),
        observation_model=paper_observation_model(),
        schedule=WindowSchedule.from_breaks(list(breaks)),
        scenarios=scenarios,
        config=parity_config(base_seed, **config_kwargs),
        executor=executor, progress=progress)
