"""Generator provenance: where ``numpy.random.Generator`` values may flow.

The determinism story of this codebase depends on every generator being a
*transient* derived from a registered :class:`SeedSequenceBank` stream: it
is created, consumed within one window/shard/task, and dropped.  The PR 1
bug was exactly a generator that outlived its window — an ancillary stream
cached once and reused, silently correlating every window's draws.  The
per-file lint can only catch that shape when the construction is visible in
the same file; this pass follows generator values through assignments,
returns, parameters, and call arguments **across modules** and flags the
three escape hatches that turn a transient stream into long-lived state:

* ``REPRO501`` — a generator bound to a *module global* (directly, or via a
  helper defined in another file whose return value the lint cannot type);
* ``REPRO502`` — a generator stored on *service/supervisor state* (an
  object that lives across calibration windows by design);
* ``REPRO503`` — a generator crossing an *executor payload* boundary (a
  payload field typed ``Generator``, a generator argument in a dispatched
  task expression, or a dispatch target with a generator parameter) —
  pickled generator state silently forks streams across workers.

Inference is a fixpoint over the call graph: a project function counts as
generator-returning when its return annotation says so, when it returns a
known construction (:data:`~repro.analysis.flow.callgraph.GENERATOR_SOURCE_CALLS`,
bank methods), or when it returns the result of another generator-returning
function.  That last clause is what makes the PR 1 fixture catchable across
two files.
"""

from __future__ import annotations

import ast

from ..rules import Violation
from .callgraph import (DispatchSite, FunctionScanner, ProjectIndex,
                        GENERATOR_TYPE_NAMES)

__all__ = ["infer_generator_returning", "check_provenance"]

#: Path components marking modules whose objects live across windows.
_LONG_LIVED_PARTS = ("service",)


def infer_generator_returning(index: ProjectIndex) -> frozenset[str]:
    """Qualnames of project functions that (may) return a generator."""
    current: set[str] = set()
    # Seed: explicit return annotations.
    for qual, info in index.functions.items():
        module = index.modules[info.module]
        returns = info.node.returns
        if returns is not None and \
                index.is_generator_annotation(module, returns):
            current.add(qual)
        elif returns is not None:
            canon = index.canonical(module, returns)
            if canon is not None and canon in GENERATOR_TYPE_NAMES:
                current.add(qual)
    # Fixpoint: returning the result of a generator-returning callee.
    while True:
        frozen = frozenset(current)
        added = False
        for qual, info in index.functions.items():
            if qual in current:
                continue
            module = index.modules[info.module]
            scanner = FunctionScanner(index, module, info,
                                      generator_returning=frozen).scan()
            if scanner.returns_generator:
                current.add(qual)
                added = True
        if not added:
            return frozenset(current)


def _flag(violations: list[Violation], path: str, node: ast.AST, rule: str,
          message: str) -> None:
    violations.append(Violation(
        path=path, line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0), rule=rule, message=message))


class _ModuleScopeScanner(FunctionScanner):
    """Generator valuation at module scope (no enclosing function).

    Reuses the function scanner's expression valuation over a synthetic
    zero-argument function wrapping the module body, so module-level
    ``_RNG = helper(...)`` assignments are typed by the same rules.
    """

    def __init__(self, index: ProjectIndex, module_name: str,
                 generator_returning: frozenset[str]) -> None:
        module = index.modules[module_name]
        wrapper = ast.parse("def _module_scope_(): pass").body[0]
        assert isinstance(wrapper, ast.FunctionDef)
        wrapper.body = list(module.tree.body)
        from .callgraph import FunctionInfo
        info = FunctionInfo(qualname=f"{module_name}.<module>",
                            module=module_name, path=module.path, line=1,
                            node=wrapper)
        super().__init__(index, module, info, generator_returning)


def check_provenance(index: ProjectIndex,
                     generator_returning: frozenset[str],
                     dispatch_sites: list[DispatchSite]) -> list[Violation]:
    """Run the three escape checks over the whole project."""
    violations: list[Violation] = []
    _check_module_globals(index, generator_returning, violations)
    _check_service_state(index, generator_returning, violations)
    _check_payload_escapes(index, generator_returning, dispatch_sites,
                           violations)
    return violations


# --------------------------------------------------------------------------- #
# REPRO501: module globals
# --------------------------------------------------------------------------- #
def _check_module_globals(index: ProjectIndex,
                          generator_returning: frozenset[str],
                          violations: list[Violation]) -> None:
    for name, module in index.modules.items():
        scanner = _ModuleScopeScanner(index, name, generator_returning)
        scanner.scan()
        for stmt in module.tree.body:
            value: ast.expr | None = None
            target_name: str | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                value, target_name = stmt.value, stmt.targets[0].id
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                target_name = stmt.target.id
                if index.is_generator_annotation(module, stmt.annotation):
                    _flag(violations, module.path, stmt, "REPRO501",
                          f"module global {target_name!r} is annotated as a "
                          "numpy.random.Generator — a module-held stream "
                          "outlives every window and re-serves the same "
                          "draws (the PR 1 cross-window reuse bug class)")
                    continue
                value = stmt.value
            if value is None or target_name is None:
                continue
            # Only flag value *expressions*; aliasing a generator-returning
            # function object (``_f = rng_from_jsonable``) is not a stream.
            if isinstance(value, ast.Name):
                continue
            if scanner.expr_is_generator_valued(value):
                _flag(violations, module.path, stmt, "REPRO501",
                      f"module global {target_name!r} is bound to a "
                      "numpy.random.Generator — a module-held stream "
                      "outlives every window and re-serves the same draws "
                      "(the PR 1 cross-window reuse bug class); construct "
                      "the stream where it is consumed, keyed by window")
        # ``global X; X = <generator>`` inside any function of the module.
        prefix = f"{name}." if name else ""
        for qual, info in index.functions.items():
            if info.module != name:
                continue
            declared_global: set[str] = set()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            if not declared_global:
                continue
            fn_scanner = FunctionScanner(index, module, info,
                                         generator_returning).scan()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name) and \
                        node.targets[0].id in declared_global and \
                        fn_scanner.expr_is_generator_valued(node.value):
                    _flag(violations, module.path, node, "REPRO501",
                          f"{prefix}{info.node.name} caches a generator in "
                          f"module global {node.targets[0].id!r} — the "
                          "stream outlives its window (PR 1 bug class)")


# --------------------------------------------------------------------------- #
# REPRO502: long-lived service/supervisor state
# --------------------------------------------------------------------------- #
def _is_long_lived_module(index: ProjectIndex, module_name: str) -> bool:
    module = index.modules[module_name]
    from pathlib import Path
    return any(part in _LONG_LIVED_PARTS for part in Path(module.path).parts)


def _check_service_state(index: ProjectIndex,
                         generator_returning: frozenset[str],
                         violations: list[Violation]) -> None:
    for cls in index.classes.values():
        if not _is_long_lived_module(index, cls.module):
            continue
        module = index.modules[cls.module]
        for fname, ftype, fline in cls.fields:
            if ftype in GENERATOR_TYPE_NAMES:
                violations.append(Violation(
                    path=cls.path, line=fline, col=0, rule="REPRO502",
                    message=f"{cls.qualname} declares generator-typed field "
                            f"{fname!r} — service state lives across "
                            "windows, so a stored stream replays the PR 1 "
                            "cross-window reuse bug; store the (window-"
                            "keyed) seed and rebuild the stream per use"))
        for method_name in cls.method_names:
            qual = f"{cls.qualname}.{method_name}"
            info = index.functions.get(qual)
            if info is None:
                continue
            scanner = FunctionScanner(index, module, info,
                                      generator_returning).scan()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Attribute):
                    target = node.targets[0]
                    if isinstance(target.value, ast.Name) and \
                            target.value.id == "self" and \
                            scanner.expr_is_generator_valued(node.value):
                        _flag(violations, cls.path, node, "REPRO502",
                              f"{qual} stores a generator on self."
                              f"{target.attr} — service/supervisor objects "
                              "live across windows, so the cached stream "
                              "re-serves its draws every window (PR 1 bug "
                              "class); derive a fresh window-keyed stream "
                              "at each use instead")


# --------------------------------------------------------------------------- #
# REPRO503: executor payload escapes
# --------------------------------------------------------------------------- #
def _check_payload_escapes(index: ProjectIndex,
                           generator_returning: frozenset[str],
                           dispatch_sites: list[DispatchSite],
                           violations: list[Violation]) -> None:
    flagged_classes: set[str] = set()
    for site in dispatch_sites:
        info = index.functions.get(site.function)
        module = index.modules[site.module]
        scanner = None
        if info is not None:
            scanner = FunctionScanner(index, module, info,
                                      generator_returning).scan()
        # The dispatched function itself must not expect a generator: it
        # could only ever receive one through the pickled payload.
        if site.target_resolved is not None:
            target = index.functions[site.target_resolved]
            target_module = index.modules[target.module]
            for arg in (target.node.args.posonlyargs + target.node.args.args
                        + target.node.args.kwonlyargs):
                if arg.arg in ("self", "cls"):
                    continue
                if index.is_generator_annotation(target_module,
                                                 arg.annotation):
                    _flag(violations, site.path, site.node, "REPRO503",
                          f"dispatch target {site.target_resolved} takes "
                          f"generator parameter {arg.arg!r} — generator "
                          "state crossing the executor boundary is pickled "
                          "and silently forks the stream per worker; ship "
                          "the seed slice and rebuild the stream worker-"
                          "side (see hpc.sharding.run_shard)")
        for payload in site.payload_exprs:
            for node in ast.walk(payload):
                hit = False
                if isinstance(node, ast.Name) and scanner is not None and \
                        node.id in scanner.generator_locals:
                    hit = True
                elif isinstance(node, ast.Call) and scanner is not None and \
                        scanner.call_is_generator_valued(node):
                    hit = True
                if hit:
                    _flag(violations, site.path, node, "REPRO503",
                          "generator value embedded in an executor payload "
                          "— pickled generator state forks the stream "
                          "across workers and breaks the (base_seed, shard "
                          "layout) contract; ship seeds, not streams")
            # Payload task dataclasses must not declare generator fields.
            if isinstance(payload, ast.Call) and scanner is not None:
                canon = index.canonical(module, payload.func,
                                        scanner.local_types)
                if canon is not None and canon in index.classes and \
                        canon not in flagged_classes:
                    cls = index.classes[canon]
                    for fname, ftype, fline in cls.fields:
                        if ftype in GENERATOR_TYPE_NAMES:
                            flagged_classes.add(canon)
                            violations.append(Violation(
                                path=cls.path, line=fline, col=0,
                                rule="REPRO503",
                                message=f"payload dataclass {cls.qualname} "
                                        f"declares generator-typed field "
                                        f"{fname!r} — generators must not "
                                        "ride executor payloads; carry the "
                                        "seed slice instead"))
