"""Interprocedural determinism analysis (``python -m repro.analysis.flow``).

Where :mod:`repro.analysis.lint` checks one file at a time, this package
builds a whole-project view and proves two properties the per-file rules
cannot see:

* **generator provenance** (REPRO50x) — no ``numpy.random.Generator``
  escapes into module globals, long-lived service state, or executor
  payloads, even when the construction is hidden behind helpers defined
  in other modules (:mod:`.provenance`);
* **payload purity** (REPRO51x) — every function dispatched through the
  ``Executor`` protocol is, transitively, a pure function of its task
  dataclass: no wall-clock, no ambient RNG, no mutable-global writes, no
  filesystem access outside the declared stores (:mod:`.purity`), with a
  machine-readable certificate per dispatch site.

The supporting call-graph/index machinery lives in :mod:`.callgraph`; the
CLI and orchestration in :mod:`.report`.
"""

from .callgraph import ProjectIndex, build_index, find_dispatch_sites
from .provenance import check_provenance, infer_generator_returning
from .purity import PurityCertificate, check_purity
from .report import FLOW_FAMILIES, main, run_flow

__all__ = ["FLOW_FAMILIES", "ProjectIndex", "PurityCertificate",
           "build_index", "check_provenance", "check_purity",
           "find_dispatch_sites", "infer_generator_returning", "main",
           "run_flow"]
