"""Entry point: ``python -m repro.analysis.flow src/``.

Orchestrates the whole-project pass — index, generator-returning fixpoint,
dispatch-site discovery, provenance and purity checks — and renders the
result as text, JSON, or SARIF.  Exit status mirrors ``repro lint``: 0
when no violation survives ``--select``, 1 on findings, 2 on usage errors
(unknown rule selectors, unreadable paths).

Because the analysis is whole-program, caching is whole-program too: one
entry keyed on the sorted ``(path, sha256)`` set plus the analyzer's own
fingerprint.  Any changed file — or any change to the analyzers — misses.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Sequence

from ..cache import AnalysisCache, file_sha256, ruleset_fingerprint
from ..lint import iter_source_files, validate_select
from ..rules import (RULES, Violation, apply_allow_directives,
                     parse_allow_directives)
from ..sarif import to_sarif
from .callgraph import build_index, find_dispatch_sites
from .provenance import check_provenance, infer_generator_returning
from .purity import check_purity

__all__ = ["FLOW_FAMILIES", "main", "run_flow"]

#: Rule-id prefixes this pass owns (and the only repro-allow directives it
#: will consume or report as unused).
FLOW_FAMILIES = ("REPRO5",)


def _analyse(sources: dict[str, str], roots: Sequence[str]
             ) -> tuple[list[Violation], list[dict]]:
    trees: dict[str, ast.Module] = {}
    violations: list[Violation] = []
    for path_str, source in sources.items():
        try:
            trees[path_str] = ast.parse(source, filename=path_str)
        except SyntaxError as exc:
            violations.append(Violation(
                path=path_str, line=exc.lineno or 0, col=exc.offset or 0,
                rule="REPRO000", message=f"syntax error: {exc.msg}"))
    index = build_index(trees, roots)
    generator_returning = infer_generator_returning(index)
    sites = find_dispatch_sites(index)
    violations.extend(
        check_provenance(index, generator_returning, sites))
    purity_violations, certificates = check_purity(index, sites)
    violations.extend(purity_violations)

    by_path: dict[str, list[Violation]] = {}
    for v in violations:
        by_path.setdefault(v.path, []).append(v)
    kept: list[Violation] = []
    for path_str, source in sources.items():
        directives, _ = parse_allow_directives(path_str, source)
        kept.extend(apply_allow_directives(
            by_path.get(path_str, []), directives, families=FLOW_FAMILIES))
    for path_str, found in by_path.items():
        if path_str not in sources:  # defensive: shouldn't happen
            kept.extend(found)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return kept, [c.to_jsonable() for c in certificates]


def run_flow(paths: Sequence[str], select: Sequence[str] | None = None,
             cache_dir: str | None = None
             ) -> tuple[list[Violation], list[dict]]:
    """Run the interprocedural pass; returns (violations, certificates).

    Certificates come back in their JSON form (one dict per dispatch
    site) — the same shape ``--certificates`` writes to disk.
    """
    if select:
        validate_select(select)
    files = iter_source_files(paths)
    sources: dict[str, str] = {}
    shas: list[str] = []
    for path in files:
        data = path.read_bytes()
        sources[str(path)] = data.decode("utf-8")
        shas.append(f"{path}\0{file_sha256(data)}")

    cache = AnalysisCache(cache_dir) if cache_dir else None
    violations: list[Violation] | None = None
    certificates: list[dict] = []
    if cache is not None:
        key = "\n".join(sorted(shas)) + "\n" + ruleset_fingerprint()
        hit = cache.get("flow", key)
        if hit is not None:
            violations = [Violation(**v) for v in hit["violations"]]
            certificates = hit["certificates"]
    if violations is None:
        violations, certificates = _analyse(sources, list(paths))
        if cache is not None:
            cache.put("flow", key, {
                "violations": [v.__dict__ for v in violations],
                "certificates": certificates})

    if select:
        prefixes = tuple(select)
        violations = [v for v in violations if v.rule.startswith(prefixes)]
    return violations, certificates


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.flow",
        description="Interprocedural determinism analysis: generator "
                    "provenance (REPRO50x) and executor payload purity "
                    "proofs (REPRO51x) over the whole project.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyse "
                             "(default: src)")
    parser.add_argument("--select", action="append", default=None,
                        metavar="PREFIX",
                        help="only report rules matching this id prefix "
                             "(repeatable), e.g. --select REPRO51")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format "
                        "(default: text)")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--certificates", metavar="FILE", default=None,
                        help="write per-dispatch-site purity certificates "
                             "(JSON) to FILE")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-hash result cache directory")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the flow rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            if rule_id.startswith(FLOW_FAMILIES):
                print(f"{rule_id}  {RULES[rule_id]}")
        return 0

    try:
        violations, certificates = run_flow(
            args.paths, select=args.select, cache_dir=args.cache_dir)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.certificates:
        Path(args.certificates).write_text(
            json.dumps(certificates, indent=2) + "\n", encoding="utf-8")

    if args.format == "json":
        rendered = json.dumps([v.__dict__ for v in violations], indent=2)
    elif args.format == "sarif":
        rendered = json.dumps(
            to_sarif(violations, tool_name="repro-flow"), indent=2)
    else:
        rendered = "\n".join(v.render() for v in violations)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    elif rendered:
        print(rendered)
    if violations and args.format == "text" and not args.output:
        print(f"\n{len(violations)} violation(s) found.", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
