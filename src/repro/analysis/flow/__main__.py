"""``python -m repro.analysis.flow`` dispatches to :func:`.report.main`."""

from .report import main

if __name__ == "__main__":
    raise SystemExit(main())
