"""Module/function index and call graph over parsed source trees.

The per-file linter (:mod:`repro.analysis.lint`) sees one module at a time;
everything in this package starts from the *whole-project* view built here:

* **module naming** — each ``*.py`` file gets a dotted module name (files
  under a ``repro`` package root keep their real import path, fixture trees
  are named relative to the scan root), so imports can be resolved to the
  modules that define their targets;
* **symbol table** — every function, method, and class, keyed by qualified
  name (``repro.hpc.sharding.run_shard``,
  ``repro.seir.parameters.DiseaseParameters.from_dict``);
* **call records** — for every function, each call site with its canonical
  dotted callee name (import aliases resolved, locals typed by the
  constructors that produced them) and, where the callee is a project
  function, the resolved edge.

Resolution is deliberately *partial*: calls through dynamic values (a class
object held in a variable, an attribute of an unannotated object) are
recorded as unresolved rather than guessed at.  The provenance and purity
passes treat unresolved calls as the documented soundness boundary — they
appear in purity certificates so a "pure" verdict is always explicit about
what it could not see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

__all__ = ["CallRecord", "ClassInfo", "DispatchSite", "FunctionInfo",
           "ModuleInfo", "ProjectIndex", "build_index",
           "find_dispatch_sites", "GENERATOR_METHOD_NAMES",
           "GENERATOR_SOURCE_CALLS", "GENERATOR_TYPE_NAMES"]

#: Canonical callables that construct ``numpy.random.Generator`` values.
#: The seeding API entries let fixture trees be analysed standalone (the
#: real module infers the same facts from its ``-> np.random.Generator``
#: return annotations when it is part of the scanned tree).
GENERATOR_SOURCE_CALLS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "repro.seir.seeding.generator_for",
    "repro.seir.seeding.batch_generator_for",
    "repro.seir.seeding.rng_from_jsonable",
})

#: Method names that return generators wherever their receiver came from —
#: the :class:`~repro.seir.seeding.SeedSequenceBank` surface.  Name-based on
#: purpose: banks travel through parameters and dataclass fields where the
#: receiver type is rarely statically visible.
GENERATOR_METHOD_NAMES = frozenset({
    "ancillary_generator", "batch_simulation_generator",
    "generator_for", "batch_generator_for", "rng_from_jsonable",
})

#: Canonical annotation spellings that denote a generator value.
GENERATOR_TYPE_NAMES = frozenset({
    "numpy.random.Generator", "np.random.Generator", "Generator",
})

#: Executor dispatch method names (mirrors the per-file lint).
DISPATCH_METHODS = frozenset({"map", "map_each", "submit"})


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    path: str
    line: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None  # unqualified, for methods


@dataclass(frozen=True)
class ClassInfo:
    """One class definition with its annotated fields."""

    qualname: str
    module: str
    path: str
    line: int
    node: ast.ClassDef
    fields: tuple[tuple[str, str, int], ...]  # (name, canonical type, line)
    method_names: tuple[str, ...]


@dataclass
class ModuleInfo:
    """One parsed module with its import alias table."""

    name: str
    path: str
    tree: ast.Module
    is_package: bool = False
    aliases: dict[str, str] = field(default_factory=dict)
    toplevel: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class CallRecord:
    """One call site inside a function body.

    ``canonical`` is the dotted callee name with aliases and local types
    resolved (``None`` when the callee expression is dynamic);
    ``resolved`` is the project function the call reaches, when known;
    ``terminal_attr`` is the final attribute name for method-style calls
    (``bank.ancillary_generator`` -> ``"ancillary_generator"``).
    """

    node: ast.Call
    canonical: str | None
    resolved: str | None
    terminal_attr: str | None


@dataclass(frozen=True)
class DispatchSite:
    """One ``executor.map/map_each/submit`` call with its payload."""

    module: str
    path: str
    function: str  # qualname of the enclosing function ("" at module scope)
    node: ast.Call
    target_expr: ast.expr | None
    target_resolved: str | None
    payload_exprs: tuple[ast.expr, ...]


def _module_name_for(path: Path, roots: list[Path]) -> tuple[str, bool]:
    """Dotted module name for ``path``; second element: is it a package."""
    parts = list(path.parts)
    rel: list[str] | None = None
    if "repro" in parts[:-1]:
        idx = len(parts) - 1 - parts[:-1][::-1].index("repro") - 1
        rel = parts[idx:]
    else:
        for root in roots:
            try:
                rel = list(path.relative_to(root).parts)
                break
            except ValueError:
                continue
        if rel is None or not rel:
            rel = [path.name]
    is_package = rel[-1] == "__init__.py"
    rel[-1] = rel[-1][:-3] if rel[-1].endswith(".py") else rel[-1]
    if is_package:
        rel = rel[:-1]
    return ".".join(rel), is_package


def _resolve_relative(module: ModuleInfo, imported: str | None,
                      level: int) -> str:
    """Absolute module targeted by a ``from ... import`` with ``level`` dots."""
    if level == 0:
        return imported or ""
    parts = module.name.split(".") if module.name else []
    # For a plain module, one dot means its own package; for a package
    # (__init__), one dot means the package itself.
    drop = level if not module.is_package else level - 1
    base = parts[: len(parts) - drop] if drop <= len(parts) else []
    if imported:
        base = base + [imported]
    return ".".join(base)


class ProjectIndex:
    """Whole-project symbol table plus canonical-name resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}

    # ------------------------------------------------------------------ #
    def canonical(self, module: ModuleInfo, expr: ast.expr,
                  local_types: dict[str, str] | None = None) -> str | None:
        """Dotted name of ``expr`` with aliases and local types applied.

        ``local_types`` maps local variable names to the qualified class
        whose constructor produced them, so ``model.run_until`` resolves
        through ``model = StochasticSEIRModel(...)``.
        """
        if isinstance(expr, ast.Name):
            if local_types and expr.id in local_types:
                return local_types[expr.id]
            if expr.id in module.aliases:
                return module.aliases[expr.id]
            if expr.id in module.toplevel and module.name:
                return f"{module.name}.{expr.id}"
            return expr.id
        if isinstance(expr, ast.Attribute):
            base = self.canonical(module, expr.value, local_types)
            return None if base is None else f"{base}.{expr.attr}"
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            # String annotation ("StochasticSEIRModel") — parse and retry.
            try:
                inner = ast.parse(expr.value, mode="eval").body
            except SyntaxError:
                return None
            return self.canonical(module, inner, local_types)
        if isinstance(expr, ast.Subscript):
            # Optional[X] / list[X]: the escape rules care about the payload.
            return self.canonical(module, expr.value, local_types)
        return None

    def resolve_function(self, canonical: str | None) -> str | None:
        """Project function qualname a canonical callee name reaches."""
        if canonical is None:
            return None
        if canonical in self.functions:
            return canonical
        if canonical in self.classes:
            init = f"{canonical}.__init__"
            if init in self.functions:
                return init
        return None

    def is_generator_annotation(self, module: ModuleInfo,
                                annotation: ast.expr | None) -> bool:
        if annotation is None:
            return False
        canon = self.canonical(module, annotation)
        if canon is None:
            return False
        return canon in GENERATOR_TYPE_NAMES or canon in {
            f"{module.name}.{t}" for t in GENERATOR_TYPE_NAMES}


def _collect_aliases(module: ModuleInfo) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module.aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    module.aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(module, node.module, node.level)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                module.aliases[bound] = (f"{target}.{alias.name}"
                                         if target else alias.name)


def _collect_toplevel(module: ModuleInfo) -> None:
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            module.toplevel.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    module.toplevel.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                            ast.Name):
            module.toplevel.add(stmt.target.id)


def _collect_definitions(index: ProjectIndex, module: ModuleInfo) -> None:
    prefix = f"{module.name}." if module.name else ""
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}{stmt.name}"
            index.functions[qual] = FunctionInfo(
                qualname=qual, module=module.name, path=module.path,
                line=stmt.lineno, node=stmt)
        elif isinstance(stmt, ast.ClassDef):
            cls_qual = f"{prefix}{stmt.name}"
            fields: list[tuple[str, str, int]] = []
            methods: list[str] = []
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    mqual = f"{cls_qual}.{item.name}"
                    index.functions[mqual] = FunctionInfo(
                        qualname=mqual, module=module.name, path=module.path,
                        line=item.lineno, node=item, class_name=stmt.name)
                elif isinstance(item, ast.AnnAssign) and \
                        isinstance(item.target, ast.Name):
                    canon = index.canonical(module, item.annotation) or ""
                    fields.append((item.target.id, canon, item.lineno))
            index.classes[cls_qual] = ClassInfo(
                qualname=cls_qual, module=module.name, path=module.path,
                line=stmt.lineno, node=stmt, fields=tuple(fields),
                method_names=tuple(methods))


def build_index(trees: dict[str, ast.Module],
                roots: Iterable[str | Path]) -> ProjectIndex:
    """Index every parsed module of the project.

    ``trees`` maps display paths to parsed modules (the same shape the
    linter uses); ``roots`` are the scan roots used to name modules that
    do not live under a ``repro`` package directory (fixture trees).
    """
    root_paths = [Path(r) for r in roots]
    index = ProjectIndex()
    for path_str, tree in trees.items():
        name, is_package = _module_name_for(Path(path_str), root_paths)
        module = ModuleInfo(name=name, path=path_str, tree=tree,
                            is_package=is_package)
        _collect_aliases(module)
        _collect_toplevel(module)
        index.modules[name] = module
        _collect_definitions(index, module)
    return index


# --------------------------------------------------------------------------- #
# Per-function scanning: local types, generator locals, call records
# --------------------------------------------------------------------------- #
def _terminal_attr(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class FunctionScanner:
    """Single forward pass over one function body.

    Tracks two kinds of local facts the later passes share: which locals
    hold project-class instances (so their method calls resolve) and which
    hold generator values (so escapes can be spotted).  Nested function
    bodies are scanned as part of their parent — an over-approximation
    that matches how this codebase uses nested defs (define-then-call).
    """

    def __init__(self, index: ProjectIndex, module: ModuleInfo,
                 info: FunctionInfo,
                 generator_returning: frozenset[str] = frozenset()) -> None:
        self.index = index
        self.module = module
        self.info = info
        self.generator_returning = generator_returning
        self.local_types: dict[str, str] = {}
        self.generator_locals: set[str] = set()
        self.calls: list[CallRecord] = []
        self.returns_generator = False
        self._seed_parameter_facts()

    # ------------------------------------------------------------------ #
    def _seed_parameter_facts(self) -> None:
        node = self.info.node
        if self.info.class_name is not None:
            cls_qual = f"{self.module.name}.{self.info.class_name}" \
                if self.module.name else self.info.class_name
            args = node.args.posonlyargs + node.args.args
            if args and args[0].arg in ("self", "cls"):
                self.local_types[args[0].arg] = cls_qual
        for arg in (node.args.posonlyargs + node.args.args
                    + node.args.kwonlyargs):
            if arg.annotation is None:
                continue
            if self.index.is_generator_annotation(self.module, arg.annotation):
                self.generator_locals.add(arg.arg)
                continue
            canon = self.index.canonical(self.module, arg.annotation)
            if canon is not None and canon in self.index.classes:
                self.local_types[arg.arg] = canon

    # ------------------------------------------------------------------ #
    def call_is_generator_valued(self, call: ast.Call) -> bool:
        canon = self.index.canonical(self.module, call.func, self.local_types)
        if canon is not None:
            if canon in GENERATOR_SOURCE_CALLS:
                return True
            if canon in self.generator_returning:
                return True
            resolved = self.index.resolve_function(canon)
            if resolved is not None and resolved in self.generator_returning:
                return True
        attr = _terminal_attr(call.func)
        return attr is not None and attr in GENERATOR_METHOD_NAMES \
            and isinstance(call.func, ast.Attribute)

    def expr_is_generator_valued(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.generator_locals
        if isinstance(expr, ast.Call):
            return self.call_is_generator_valued(expr)
        if isinstance(expr, ast.IfExp):
            return (self.expr_is_generator_valued(expr.body)
                    or self.expr_is_generator_valued(expr.orelse))
        return False

    # ------------------------------------------------------------------ #
    def scan(self) -> "FunctionScanner":
        # Pass 1 (run twice so simple alias chains like ``r2 = rng`` reach
        # a fixpoint regardless of walk order): collect local bindings
        # anywhere in the body, including inside control flow and nested
        # defs.  Pass 2: returns.  Pass 3: calls — after all bindings, so
        # receiver types are visible wherever the construct-then-use
        # pattern puts the construction.
        for _ in range(2):
            for node in ast.walk(self.info.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    self._record_binding(node.targets[0].id, node.value)
                elif isinstance(node, ast.AnnAssign) and \
                        isinstance(node.target, ast.Name):
                    self._record_ann_binding(node)
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Return) and node.value is not None and \
                    self.expr_is_generator_valued(node.value):
                self.returns_generator = True
            elif isinstance(node, ast.Call):
                self._record_call(node)
        return self

    def _record_ann_binding(self, stmt: ast.AnnAssign) -> None:
        assert isinstance(stmt.target, ast.Name)
        if self.index.is_generator_annotation(self.module, stmt.annotation):
            self.generator_locals.add(stmt.target.id)
        else:
            canon = self.index.canonical(self.module, stmt.annotation)
            if canon is not None and canon in self.index.classes:
                self.local_types[stmt.target.id] = canon
        if stmt.value is not None and \
                self.expr_is_generator_valued(stmt.value):
            self.generator_locals.add(stmt.target.id)

    def _record_binding(self, name: str, value: ast.expr) -> None:
        if self.expr_is_generator_valued(value):
            self.generator_locals.add(name)
            return
        if isinstance(value, ast.Call):
            canon = self.index.canonical(self.module, value.func,
                                         self.local_types)
            if canon is None:
                return
            if canon in self.index.classes:
                self.local_types[name] = canon
                return
            resolved = self.index.resolve_function(canon)
            if resolved is not None:
                ret = self.index.functions[resolved].node.returns
                ret_module = self.index.modules.get(
                    self.index.functions[resolved].module)
                if ret is not None and ret_module is not None:
                    ret_canon = self.index.canonical(ret_module, ret)
                    if ret_canon is not None and \
                            ret_canon in self.index.classes:
                        self.local_types[name] = ret_canon

    def _record_call(self, call: ast.Call) -> None:
        canon = self.index.canonical(self.module, call.func, self.local_types)
        self.calls.append(CallRecord(
            node=call, canonical=canon,
            resolved=self.index.resolve_function(canon),
            terminal_attr=_terminal_attr(call.func)))


# --------------------------------------------------------------------------- #
# Dispatch-site discovery (shared by the provenance and purity passes)
# --------------------------------------------------------------------------- #
def _receiver_is_executor(node: ast.expr) -> bool:
    """Mirror of the per-file lint's receiver heuristic."""
    if isinstance(node, ast.Name):
        term = node.id
    elif isinstance(node, ast.Attribute):
        term = node.attr
    else:
        return False
    term = term.lstrip("_").lower()
    return term.endswith("executor") or term.endswith("pool")


def _payload_exprs(fn_node: ast.AST, tasks: ast.expr) -> list[ast.expr]:
    """Statically visible payload element expressions of one dispatch."""
    if isinstance(tasks, (ast.ListComp, ast.GeneratorExp)):
        return [tasks.elt]
    if isinstance(tasks, (ast.List, ast.Tuple)):
        return list(tasks.elts)
    if isinstance(tasks, ast.Name):
        out: list[ast.expr] = []
        for node in ast.walk(fn_node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    node.targets[0].id == tasks.id:
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    out.extend(node.value.elts)
                elif isinstance(node.value, (ast.ListComp, ast.GeneratorExp)):
                    out.append(node.value.elt)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "append" and \
                    isinstance(node.func.value, ast.Name) and \
                    node.func.value.id == tasks.id and node.args:
                out.append(node.args[0])
        return out
    return []


def find_dispatch_sites(index: ProjectIndex) -> list[DispatchSite]:
    """Every executor dispatch call in the project, with resolved targets."""
    sites: list[DispatchSite] = []
    for info in index.functions.values():
        module = index.modules[info.module]
        scanner = FunctionScanner(index, module, info).scan()
        for record in scanner.calls:
            call = record.node
            if not isinstance(call.func, ast.Attribute):
                continue
            if call.func.attr not in DISPATCH_METHODS:
                continue
            if not _receiver_is_executor(call.func.value):
                continue
            target = call.args[0] if call.args else None
            target_canon = None
            if target is not None:
                target_canon = index.resolve_function(
                    index.canonical(module, target, scanner.local_types))
            payload: list[ast.expr] = []
            if len(call.args) > 1:
                payload = _payload_exprs(info.node, call.args[1])
            sites.append(DispatchSite(
                module=info.module, path=info.path, function=info.qualname,
                node=call, target_expr=target, target_resolved=target_canon,
                payload_exprs=tuple(payload)))
    sites.sort(key=lambda s: (s.path, s.node.lineno, s.node.col_offset))
    return sites
