"""Payload purity proofs for executor dispatch targets.

The contract behind ``docs/contracts.md`` — "shard outputs are pure
functions of (base_seed, shard layout)" — was, until this pass, prose.
Here it becomes a checked property: for every ``executor.map / map_each /
submit`` site, the dispatched function and everything it can reach through
resolvable project calls must avoid the four effect classes that would make
a worker's output depend on *where or when* it ran:

* ``REPRO511`` — wall-clock reads (``time.time``, ``perf_counter``,
  ``datetime.now``, ...): retried shards would see different values;
* ``REPRO512`` — ambient RNG (stdlib ``random``, the legacy
  ``numpy.random`` global-state API, zero-argument ``default_rng()``):
  draws that are not derived from the shipped seed slice;
* ``REPRO513`` — mutable module-global writes (``global`` rebinding,
  augmented assignment to a module-level name): cross-task state that
  exists on one worker but not another;
* ``REPRO514`` — filesystem access outside the declared store modules:
  hidden inputs/outputs that break kill-and-resume identity.

Each site gets a machine-readable :class:`PurityCertificate` recording the
transitive closure that was proved, every effect found, and — crucially —
every call the analysis could *not* resolve (dynamic constructors, untyped
receivers).  A "pure" verdict is therefore always explicit about its
soundness boundary instead of silently overclaiming.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass
from pathlib import Path

from ..rules import Violation, _WALL_CLOCK
from .callgraph import (DispatchSite, FunctionScanner, ProjectIndex,
                        GENERATOR_METHOD_NAMES, GENERATOR_SOURCE_CALLS)

__all__ = ["Effect", "PurityCertificate", "UnresolvedCall", "check_purity"]

#: Names the interpreter provides without any import.
_BUILTIN_NAMES = frozenset(dir(builtins))

#: Legacy ``numpy.random`` global-state API — draws from the hidden global
#: ``RandomState`` rather than a seeded generator.
_LEGACY_NUMPY_RANDOM = frozenset({
    "numpy.random.seed", "numpy.random.rand", "numpy.random.randn",
    "numpy.random.randint", "numpy.random.random", "numpy.random.sample",
    "numpy.random.choice", "numpy.random.shuffle",
    "numpy.random.permutation", "numpy.random.normal",
    "numpy.random.uniform", "numpy.random.binomial", "numpy.random.poisson",
    "numpy.random.exponential", "numpy.random.gamma", "numpy.random.beta",
})

#: Canonical callables that touch the filesystem.
_FS_CALLS = frozenset({
    "open", "os.remove", "os.unlink", "os.rename", "os.replace",
    "os.mkdir", "os.makedirs", "os.rmdir", "os.removedirs", "os.listdir",
    "os.scandir", "shutil.rmtree", "shutil.copy", "shutil.copy2",
    "shutil.copyfile", "shutil.move", "shutil.copytree",
    "tempfile.mkdtemp", "tempfile.mkstemp", "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryDirectory", "numpy.save", "numpy.savez",
    "numpy.savez_compressed", "numpy.load", "numpy.savetxt",
    "numpy.loadtxt", "json.dump", "json.load",
})

#: ``pathlib.Path`` methods that touch the filesystem.  Attribute-name
#: based (receivers are rarely typed); the names are specific enough that
#: collisions with non-path objects have not been observed in this tree.
_FS_METHODS = frozenset({
    "write_text", "write_bytes", "read_text", "read_bytes", "mkdir",
    "unlink", "touch", "rmdir", "glob", "rglob", "iterdir",
})

#: Modules that *are* the declared stores — filesystem access inside them
#: is their entire purpose, and dispatch closures that reach them do so
#: through the store API rather than ad-hoc paths.
_DECLARED_STORE_SUFFIXES = (
    ("service", "artifacts.py"),
    ("hpc", "checkpoint_io.py"),
    ("sim", "cache.py"),
)

#: The sanctioned RNG construction site: everything inside it is the seed
#: bank, whose whole job is turning shipped seeds into streams.
_SANCTIONED_RNG_SUFFIX = ("seir", "seeding.py")

_RULE_FOR_EFFECT = {
    "wall_clock": "REPRO511",
    "ambient_rng": "REPRO512",
    "global_write": "REPRO513",
    "filesystem": "REPRO514",
}


@dataclass(frozen=True)
class Effect:
    """One impure operation found inside a dispatch closure."""

    kind: str       # key of _RULE_FOR_EFFECT
    function: str   # qualname containing the operation
    path: str
    line: int
    col: int
    detail: str

    def to_jsonable(self) -> dict[str, object]:
        return {"kind": self.kind, "rule": _RULE_FOR_EFFECT[self.kind],
                "function": self.function, "path": self.path,
                "line": self.line, "detail": self.detail}


@dataclass(frozen=True)
class UnresolvedCall:
    """One call the closure walk could not follow — soundness boundary."""

    function: str
    path: str
    line: int
    display: str

    def to_jsonable(self) -> dict[str, object]:
        return {"function": self.function, "path": self.path,
                "line": self.line, "call": self.display}


@dataclass(frozen=True)
class PurityCertificate:
    """Machine-readable purity verdict for one dispatch site."""

    site_path: str
    site_line: int
    dispatch_method: str
    caller: str
    target: str  # resolved qualname, or "<unresolved>" when dynamic
    closure: tuple[str, ...]
    effects: tuple[Effect, ...]
    unresolved: tuple[UnresolvedCall, ...]

    @property
    def pure(self) -> bool:
        return not self.effects

    def to_jsonable(self) -> dict[str, object]:
        return {
            "site": {"path": self.site_path, "line": self.site_line,
                     "method": self.dispatch_method, "caller": self.caller},
            "target": self.target,
            "closure": list(self.closure),
            "pure": self.pure,
            "effects": [e.to_jsonable() for e in self.effects],
            "unresolved_calls": [u.to_jsonable() for u in self.unresolved],
        }


def _path_endswith(path: str, suffix: tuple[str, ...]) -> bool:
    parts = Path(path).parts
    return len(parts) >= len(suffix) and \
        tuple(parts[-len(suffix):]) == suffix


def _is_declared_store(path: str) -> bool:
    return any(_path_endswith(path, s) for s in _DECLARED_STORE_SUFFIXES)


def _root_name(expr: ast.expr) -> str | None:
    """The leftmost ``Name`` a call target hangs off, if any."""
    while isinstance(expr, ast.Attribute):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _call_display(call: ast.Call) -> str:
    try:
        return ast.unparse(call.func)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


class _FunctionEffects:
    """Effect and edge extraction for one project function."""

    def __init__(self, index: ProjectIndex, qual: str) -> None:
        self.index = index
        self.info = index.functions[qual]
        self.module = index.modules[self.info.module]
        self.scanner = FunctionScanner(index, self.module, self.info).scan()
        self.effects: list[Effect] = []
        self.callees: set[str] = set()
        self.unresolved: list[UnresolvedCall] = []
        self._sanctioned_rng = _path_endswith(self.info.path,
                                              _SANCTIONED_RNG_SUFFIX)
        self._declared_store = _is_declared_store(self.info.path)
        self._local_names = self._collect_local_names()
        self._collect_calls()
        self._collect_global_writes()

    def _collect_local_names(self) -> frozenset[str]:
        """Parameters plus every name this function binds."""
        node = self.info.node
        names = {a.arg for a in (node.args.posonlyargs + node.args.args
                                 + node.args.kwonlyargs)}
        for vararg in (node.args.vararg, node.args.kwarg):
            if vararg is not None:
                names.add(vararg.arg)
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.For)):
                targets = sub.targets if isinstance(sub, ast.Assign) \
                    else [sub.target]
                for target in targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            names.add(leaf.id)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)) and \
                    isinstance(sub.target, ast.Name):
                names.add(sub.target.id)
            elif isinstance(sub, ast.comprehension):
                for leaf in ast.walk(sub.target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
            elif isinstance(sub, ast.withitem) and sub.optional_vars \
                    is not None:
                for leaf in ast.walk(sub.optional_vars):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        return frozenset(names)

    # ------------------------------------------------------------------ #
    def _effect(self, kind: str, node: ast.AST, detail: str) -> None:
        self.effects.append(Effect(
            kind=kind, function=self.info.qualname, path=self.info.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0), detail=detail))

    def _collect_calls(self) -> None:
        for record in self.scanner.calls:
            call, canon = record.node, record.canonical
            if record.resolved is not None:
                self.callees.add(record.resolved)
                continue
            if canon is not None:
                if canon in _WALL_CLOCK:
                    self._effect("wall_clock", call, f"{canon}()")
                    continue
                if not self._sanctioned_rng and self._is_ambient_rng(
                        canon, call):
                    self._effect("ambient_rng", call, f"{canon}()")
                    continue
                if not self._declared_store and (
                        canon in _FS_CALLS
                        or (isinstance(call.func, ast.Attribute)
                            and record.terminal_attr in _FS_METHODS)):
                    self._effect("filesystem", call,
                                 _call_display(call) + "()")
                    continue
            if self._is_resolvable_surface(record.node, canon):
                continue
            self.unresolved.append(UnresolvedCall(
                function=self.info.qualname, path=self.info.path,
                line=call.lineno, display=_call_display(call)))

    def _is_ambient_rng(self, canon: str, call: ast.Call) -> bool:
        if canon.startswith("random."):
            return True
        if canon in _LEGACY_NUMPY_RANDOM:
            return True
        # Zero-argument default_rng seeds from OS entropy — every worker
        # gets a different stream no matter what the payload carried.
        return canon == "numpy.random.default_rng" and not call.args \
            and not call.keywords

    def _is_resolvable_surface(self, call: ast.Call,
                               canon: str | None) -> bool:
        """True when a non-project call is a known, effect-free surface.

        Anything rooted in an import alias, a module-level name, or a
        builtin is *named* — its effects were already matched against the
        tables above, so what remains is treated as pure library surface
        (numpy math, dataclass helpers).  A one-level method call on a
        local (``results.append``, ``rng.poisson``) is covered by checking
        the local's *construction site* instead.  What stays unresolved —
        the genuine blind spot, surfaced in certificates — is calling a
        local value as a function (``engine_cls(...)``, a ``fn`` parameter)
        and method calls through chained attributes (``self._engine.step``),
        where the receiver's class was chosen at runtime.
        """
        if canon is not None and canon in GENERATOR_SOURCE_CALLS:
            return True
        terminal = call.func.attr if isinstance(call.func, ast.Attribute) \
            else None
        if terminal in GENERATOR_METHOD_NAMES:
            return True  # the seed-bank surface: seeded by construction
        if isinstance(call.func, ast.Name):
            name = call.func.id
            return (name in _BUILTIN_NAMES or name in self.module.aliases
                    or name in self.module.toplevel)
        root = _root_name(call.func)
        if root is None:
            return False
        if root in self.module.aliases or root in self.module.toplevel:
            return True
        if isinstance(call.func, ast.Attribute) and \
                isinstance(call.func.value, ast.Name):
            return root in self._local_names or \
                root in self.scanner.local_types
        return False

    def _collect_global_writes(self) -> None:
        declared: set[str] = set()
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Global):
                declared.update(node.names)
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id in declared:
                        self._effect("global_write", node,
                                     f"global {target.id} rebound")
            elif isinstance(node, ast.AugAssign) and \
                    isinstance(node.target, ast.Name):
                name = node.target.id
                if name in declared or (
                        name in self.module.toplevel
                        and name not in self.scanner.local_types
                        and name not in self.scanner.generator_locals
                        and not self._is_local_name(name)):
                    self._effect("global_write", node,
                                 f"augmented assignment to module "
                                 f"global {name}")

    def _is_local_name(self, name: str) -> bool:
        """Plain-assigned somewhere in this function (shadows the global)."""
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == name
                    for t in node.targets):
                return True
            if isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                if isinstance(target, ast.Name) and target.id == name:
                    return True
        return False


def _closure_for(index: ProjectIndex, start: str,
                 cache: dict[str, _FunctionEffects]
                 ) -> tuple[list[str], list[Effect], list[UnresolvedCall]]:
    """BFS over resolvable project calls from ``start``."""
    seen: set[str] = set()
    order: list[str] = []
    queue = [start]
    effects: list[Effect] = []
    unresolved: list[UnresolvedCall] = []
    while queue:
        qual = queue.pop(0)
        if qual in seen or qual not in index.functions:
            continue
        seen.add(qual)
        order.append(qual)
        if qual not in cache:
            cache[qual] = _FunctionEffects(index, qual)
        fx = cache[qual]
        effects.extend(fx.effects)
        unresolved.extend(fx.unresolved)
        queue.extend(sorted(fx.callees - seen))
    return order, effects, unresolved


def check_purity(index: ProjectIndex, dispatch_sites: list[DispatchSite]
                 ) -> tuple[list[Violation], list[PurityCertificate]]:
    """Prove (or refute) purity of every dispatch target's closure."""
    violations: list[Violation] = []
    certificates: list[PurityCertificate] = []
    cache: dict[str, _FunctionEffects] = {}
    flagged: set[tuple[str, str, int, str]] = set()
    for site in dispatch_sites:
        method = site.node.func.attr \
            if isinstance(site.node.func, ast.Attribute) else "?"
        if site.target_resolved is None:
            certificates.append(PurityCertificate(
                site_path=site.path, site_line=site.node.lineno,
                dispatch_method=method, caller=site.function,
                target="<unresolved>", closure=(), effects=(),
                unresolved=(UnresolvedCall(
                    function=site.function, path=site.path,
                    line=site.node.lineno,
                    display=_call_display(site.node)),)))
            continue
        closure, effects, unresolved = _closure_for(
            index, site.target_resolved, cache)
        certificates.append(PurityCertificate(
            site_path=site.path, site_line=site.node.lineno,
            dispatch_method=method, caller=site.function,
            target=site.target_resolved, closure=tuple(closure),
            effects=tuple(effects), unresolved=tuple(unresolved)))
        for fx in effects:
            rule = _RULE_FOR_EFFECT[fx.kind]
            key = (rule, fx.path, fx.line, fx.detail)
            if key in flagged:
                continue  # same effect reached from a second site
            flagged.add(key)
            violations.append(Violation(
                path=fx.path, line=fx.line, col=fx.col, rule=rule,
                message=f"{fx.detail} inside {fx.function}, which is "
                        f"dispatched (via {site.target_resolved}) at "
                        f"{site.path}:{site.node.lineno} — executor "
                        "payload closures must be pure functions of their "
                        "task dataclass, or retried/resumed shards diverge "
                        "from the original bits"))
    return violations, certificates
