"""Contract-aware static analysis for the calibration codebase.

The reproducibility guarantees this repo ships — bit-identical runs per
``(base_seed, shard layout)``, executor-independent results, documented seed
domains for every random draw — are *conventions*, and two of them have
already been broken by ordinary-looking patches (PR 1's cross-window
ancillary stream reuse, PR 5's ``window_restart_seed``/``window_draw_seed``
tag aliasing).  This package turns those conventions into machine-checked
rules over the AST, run locally and in CI::

    python -m repro.analysis.lint src/

Rule families
-------------
* ``REPRO1xx`` — **RNG confinement**: generators, seed sequences, and
  serialised RNG state are constructed only in :mod:`repro.seir.seeding`;
  every stream tag fed to ``mix_seed``/``ancillary_generator`` is a named
  constant registered in the :data:`~repro.seir.seeding.STREAM_DOMAINS`
  registry, and no two registrations share a tag.
* ``REPRO2xx`` — **determinism hazards**: wall-clock reads and unordered
  ``set`` iteration feeding arrays inside the deterministic subsystems
  (``core/``, ``seir/``, ``hpc/``).
* ``REPRO3xx`` — **executor payload hygiene**: work dispatched through the
  :class:`~repro.hpc.executor.Executor` protocol is a module-level function
  over declared dataclasses — never a closure, lambda, or bare
  tuple/dict payload.
* ``REPRO4xx`` — **typed core**: the modules mypy gates in CI (``core/``,
  ``hpc/``, ``seir/seeding.py``) carry complete signature annotations, so
  the typed surface cannot silently erode between mypy runs.
* ``REPRO5xx`` — **interprocedural determinism** (the whole-project
  ``python -m repro.analysis.flow src/`` pass): generator provenance
  (``REPRO50x`` — no ``numpy.random.Generator`` escapes into module
  globals, long-lived service state, or executor payloads, even through
  helpers in other files) and payload purity proofs (``REPRO51x`` — every
  dispatched closure transitively avoids wall-clock, ambient RNG,
  mutable-global writes, and undeclared filesystem access), with a
  machine-readable purity certificate per dispatch site.

The rules are implemented on :mod:`ast` alone (no third-party
dependencies), so the analyses run anywhere the code itself runs.  Both
CLIs share ``--format sarif`` (GitHub-annotation upload), ``--cache-dir``
(content-hash result caching, :mod:`repro.analysis.cache`), and the
scoped ``# repro-allow: RULE reason`` waiver syntax.
"""

from typing import Any

from .rules import Violation

__all__ = ["Violation", "main", "run_flow", "run_lint"]


def __getattr__(name: str) -> Any:
    # Lazy so `python -m repro.analysis.lint` doesn't import the submodule
    # twice (once via the package, once as __main__).
    if name in ("main", "run_lint"):
        from . import lint
        return getattr(lint, name)
    if name == "run_flow":
        from .flow import run_flow
        return run_flow
    raise AttributeError(name)
