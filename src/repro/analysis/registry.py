"""Static view of the stream-domain registry.

:mod:`repro.seir.seeding` enforces stream-tag uniqueness at *import* time;
this module recovers the same facts from source text alone, so the lint can
reject a clashing or unregistered tag even when the offending modules are
never imported together (the exact gap the PR 5 aliasing bug slipped
through).  A constant counts as **registered** when it is assigned directly
from one of the registration entry points::

    _MY_STREAM = register_stream_tag("my_stream", 7)
    _PURPOSE_X = register_ancillary_purpose("x", 11)
    _OTHER = STREAM_DOMAINS.register("other", 12, domain="bank")

Anything else — in particular a bare integer literal — leaves the constant
unregistered, and every use of it as a stream tag is flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Registration", "StaticRegistry", "collect_registrations"]

#: Call targets recognised as registration entry points, mapped to the
#: domain they register into (``None`` = read the ``domain=`` keyword,
#: default ``"bank"``).
_REGISTER_FUNCS: dict[str, str | None] = {
    "register_stream_tag": "bank",
    "register_ancillary_purpose": "ancillary",
    "register": None,  # STREAM_DOMAINS.register(...)
}


@dataclass(frozen=True)
class Registration:
    """One statically discovered stream-tag registration."""

    constant: str       # the assigned constant's name
    stream_name: str | None  # first argument, when it is a literal string
    tag: int | None     # second argument, when it is a literal int
    domain: str | None  # registry domain, when statically known
    path: str
    line: int


@dataclass
class StaticRegistry:
    """Registrations collected across every linted file."""

    registrations: list[Registration] = field(default_factory=list)

    @property
    def constants(self) -> set[str]:
        """Names of constants assigned from a registration call."""
        return {r.constant for r in self.registrations}

    def duplicate_tags(self) -> list[tuple[Registration, Registration]]:
        """Pairs of registrations claiming one (domain, tag) for two names.

        Only statically known integer tags participate; the import-time
        guard in :class:`~repro.seir.seeding.StreamDomainRegistry` remains
        the authority for dynamically computed tags.
        """
        seen: dict[tuple[str, int], Registration] = {}
        clashes: list[tuple[Registration, Registration]] = []
        for reg in self.registrations:
            if reg.tag is None or reg.domain is None:
                continue
            key = (reg.domain, reg.tag)
            first = seen.get(key)
            if first is None:
                seen[key] = reg
            elif first.stream_name != reg.stream_name:
                clashes.append((first, reg))
        return clashes


def _call_domain(call: ast.Call) -> str | None:
    """The registry domain a registration call targets, if recognisable."""
    func = call.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name not in _REGISTER_FUNCS:
        return None
    fixed = _REGISTER_FUNCS[name]
    if fixed is not None:
        return fixed
    for kw in call.keywords:
        if kw.arg == "domain" and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str):
            return kw.value.value
    return "bank"


def _is_register_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None)
    return name in _REGISTER_FUNCS


def collect_registrations(trees: dict[str, ast.Module]) -> StaticRegistry:
    """Scan parsed modules for stream-tag registrations.

    ``trees`` maps a display path to its parsed module.  Only simple
    single-target assignments are considered — the idiom the codebase uses
    (``_X_STREAM = register_stream_tag(...)``).
    """
    registry = StaticRegistry()
    for path, tree in trees.items():
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if not _is_register_call(node.value):
                continue
            call = node.value
            assert isinstance(call, ast.Call)
            stream_name: str | None = None
            tag: int | None = None
            if call.args and isinstance(call.args[0], ast.Constant) \
                    and isinstance(call.args[0].value, str):
                stream_name = call.args[0].value
            if len(call.args) > 1 and isinstance(call.args[1], ast.Constant) \
                    and isinstance(call.args[1].value, int):
                tag = call.args[1].value
            registry.registrations.append(Registration(
                constant=target.id, stream_name=stream_name, tag=tag,
                domain=_call_domain(call), path=path, line=node.lineno))
    return registry
