"""SARIF 2.1.0 emission shared by ``repro lint`` and ``repro flow``.

SARIF is the interchange format GitHub's code-scanning UI ingests, so a
CI upload of this document turns every violation into an inline PR
annotation at the offending line.  Only the subset of the format those
consumers read is emitted: one run, one driver, the rule catalogue, and
one result per violation.
"""

from __future__ import annotations

from typing import Iterable

from .rules import RULES, Violation

__all__ = ["to_sarif"]

_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def to_sarif(violations: Iterable[Violation], tool_name: str,
             info_uri: str = "docs/contracts.md") -> dict[str, object]:
    """Build a SARIF ``dict`` (caller serialises with ``json.dumps``)."""
    violations = list(violations)
    used_rules = sorted({v.rule for v in violations} | set())
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": RULES.get(rule_id, "unknown rule")},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id in (used_rules or sorted(RULES))
    ]
    results = [
        {
            "ruleId": v.rule,
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": v.path},
                    "region": {
                        "startLine": max(v.line, 1),
                        "startColumn": v.col + 1,
                    },
                },
            }],
        }
        for v in violations
    ]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "informationUri": info_uri,
                "rules": rules,
            }},
            "results": results,
        }],
    }
