"""Command-line entry point: ``python -m repro.analysis.lint src/``.

Two passes over every ``*.py`` file under the given paths:

1. **collect** — parse all files and build the static stream-tag registry
   (:func:`repro.analysis.registry.collect_registrations`), so tag
   registrations in one module legitimise constants used in another and
   cross-file duplicate tags are detectable;
2. **check** — run the per-file rules (:mod:`repro.analysis.rules`) with
   the collected registry, then the cross-file duplicate-tag rule.

Exit status is 0 when no violation survives ``--select``, 1 otherwise —
the CI ``lint`` job depends on exactly this contract.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterable, Sequence

from .registry import collect_registrations
from .rules import (RULES, FileContext, Violation, apply_allow_directives,
                    check_file, parse_allow_directives, registry_violations)

__all__ = ["classify_path", "iter_source_files", "main", "run_lint"]

#: Subsystem directories in which determinism hazards (REPRO2xx) are errors.
_DETERMINISTIC_PARTS = {"core", "seir", "hpc", "service"}
#: Subsystem directories whose signatures must be fully annotated
#: (REPRO4xx); ``seir/seeding.py`` joins them as the mypy-gated file.
_TYPED_PARTS = {"core", "hpc"}
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def classify_path(path: Path) -> FileContext:
    """Decide which rule families apply to ``path``.

    Classification looks at *any* path component, so fixture trees that
    mirror the layout (``tests/analysis/fixtures/core/...``) inherit the
    same rule set as the real subsystems.
    """
    parts = path.parts
    rng_allowed = path.name == "seeding.py" and "seir" in parts
    deterministic = any(p in _DETERMINISTIC_PARTS for p in parts)
    typed = rng_allowed or any(p in _TYPED_PARTS for p in parts)
    return FileContext(path=str(path), rng_allowed=rng_allowed,
                       deterministic=deterministic, typed=typed)


def iter_source_files(paths: Iterable[str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for child in p.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in child.parts):
                    out.add(child)
        elif p.suffix == ".py":
            out.add(p)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {raw}")
    return sorted(out)


def run_lint(paths: Sequence[str],
             select: Sequence[str] | None = None) -> list[Violation]:
    """Lint ``paths`` and return violations sorted by location.

    ``select`` keeps only rules whose id starts with one of the given
    prefixes (``["REPRO1"]`` keeps the whole RNG-confinement family).
    """
    files = iter_source_files(paths)
    trees: dict[str, ast.Module] = {}
    sources: dict[str, str] = {}
    syntax_errors: list[Violation] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            trees[str(path)] = ast.parse(source, filename=str(path))
            sources[str(path)] = source
        except SyntaxError as exc:
            syntax_errors.append(Violation(
                path=str(path), line=exc.lineno or 0, col=exc.offset or 0,
                rule="REPRO000", message=f"syntax error: {exc.msg}"))

    registry = collect_registrations(trees)
    registered = registry.constants

    violations = list(syntax_errors)
    for path_str, tree in trees.items():
        context = classify_path(Path(path_str))
        found = check_file(tree, context, registered)
        directives, directive_problems = parse_allow_directives(
            path_str, sources[path_str])
        violations.extend(apply_allow_directives(found, directives))
        violations.extend(directive_problems)
    violations.extend(registry_violations(registry))

    if select:
        prefixes = tuple(select)
        violations = [v for v in violations if v.rule.startswith(prefixes)]
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Contract-aware static analysis for the calibration "
                    "codebase (RNG confinement, determinism hazards, "
                    "executor payload hygiene, typed-core annotations).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", action="append", default=None,
                        metavar="PREFIX",
                        help="only report rules matching this id prefix "
                             "(repeatable), e.g. --select REPRO1")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id]}")
        return 0

    violations = run_lint(args.paths, select=args.select)
    if args.format == "json":
        print(json.dumps([v.__dict__ for v in violations], indent=2))
    else:
        for v in violations:
            print(v.render())
        if violations:
            print(f"\n{len(violations)} violation(s) found.",
                  file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
