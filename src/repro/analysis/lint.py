"""Command-line entry point: ``python -m repro.analysis.lint src/``.

Two passes over every ``*.py`` file under the given paths:

1. **collect** — parse all files and build the static stream-tag registry
   (:func:`repro.analysis.registry.collect_registrations`), so tag
   registrations in one module legitimise constants used in another and
   cross-file duplicate tags are detectable;
2. **check** — run the per-file rules (:mod:`repro.analysis.rules`) with
   the collected registry, then the cross-file duplicate-tag rule.

Exit status is 0 when no violation survives ``--select``, 1 otherwise,
and 2 on usage errors (an unknown ``--select`` prefix, an unreadable
path) — the CI ``lint`` job depends on exactly this contract.

With ``--cache-dir`` both passes are served from a content-hash cache
(:mod:`repro.analysis.cache`): pass 1 entries key on each file's sha256,
pass 2 entries additionally key on the cross-file registered-constant
environment, so a hit is only possible when nothing that could change the
verdict changed.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterable, Sequence

from .cache import AnalysisCache, file_sha256, ruleset_fingerprint
from .registry import Registration, StaticRegistry, collect_registrations
from .rules import (RULES, FileContext, Violation, apply_allow_directives,
                    check_file, parse_allow_directives, registry_violations)

__all__ = ["classify_path", "iter_source_files", "main", "run_lint",
           "validate_select"]

#: Subsystem directories in which determinism hazards (REPRO2xx) are errors.
_DETERMINISTIC_PARTS = {"core", "seir", "hpc", "service", "inference"}
#: Subsystem directories whose signatures must be fully annotated
#: (REPRO4xx); ``seir/seeding.py`` joins them as the mypy-gated file.
_TYPED_PARTS = {"core", "hpc"}
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}

#: Rule-id prefixes the per-file lint owns.  REPRO5xx belongs to the
#: interprocedural pass (repro.analysis.flow); scoping the waiver
#: machinery to these families keeps each tool from flagging the other's
#: directives as unused.
_LINT_FAMILIES = ("REPRO0", "REPRO1", "REPRO2", "REPRO3", "REPRO4")


def classify_path(path: Path) -> FileContext:
    """Decide which rule families apply to ``path``.

    Classification looks at *any* path component, so fixture trees that
    mirror the layout (``tests/analysis/fixtures/core/...``) inherit the
    same rule set as the real subsystems.
    """
    parts = path.parts
    rng_allowed = path.name == "seeding.py" and "seir" in parts
    deterministic = any(p in _DETERMINISTIC_PARTS for p in parts)
    typed = rng_allowed or any(p in _TYPED_PARTS for p in parts)
    return FileContext(path=str(path), rng_allowed=rng_allowed,
                       deterministic=deterministic, typed=typed)


def iter_source_files(paths: Iterable[str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for child in p.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in child.parts):
                    out.add(child)
        elif p.suffix == ".py":
            out.add(p)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {raw}")
    return sorted(out)


def validate_select(select: Sequence[str]) -> None:
    """Reject ``--select`` prefixes that match no known rule id.

    A typo like ``--select REPOR1`` used to silently select nothing —
    which in CI reads as "lint passed".  An unknown selector is a usage
    error, never a clean run.
    """
    unknown = sorted({s for s in select
                      if not any(r.startswith(s) for r in RULES)})
    if unknown:
        raise ValueError(
            "unknown rule selector(s): " + ", ".join(unknown)
            + " — no rule id starts with this (see --list-rules)")


def run_lint(paths: Sequence[str],
             select: Sequence[str] | None = None,
             cache_dir: str | None = None) -> list[Violation]:
    """Lint ``paths`` and return violations sorted by location.

    ``select`` keeps only rules whose id starts with one of the given
    prefixes (``["REPRO1"]`` keeps the whole RNG-confinement family);
    unknown prefixes raise :class:`ValueError`.  With ``cache_dir``,
    unchanged files are served from the content-hash cache without being
    re-parsed.
    """
    if select:
        validate_select(select)
    files = iter_source_files(paths)
    cache = AnalysisCache(cache_dir) if cache_dir else None
    fingerprint = ruleset_fingerprint() if cache is not None else ""

    raw: dict[str, bytes] = {str(p): p.read_bytes() for p in files}
    shas = {p: file_sha256(b) for p, b in raw.items()}
    trees: dict[str, ast.Module] = {}
    sources: dict[str, str] = {}
    errors: dict[str, Violation] = {}

    def parsed(path_str: str) -> ast.Module | None:
        if path_str in trees:
            return trees[path_str]
        if path_str in errors:
            return None
        source = raw[path_str].decode("utf-8")
        sources[path_str] = source
        try:
            trees[path_str] = ast.parse(source, filename=path_str)
        except SyntaxError as exc:
            errors[path_str] = Violation(
                path=path_str, line=exc.lineno or 0, col=exc.offset or 0,
                rule="REPRO000", message=f"syntax error: {exc.msg}")
            return None
        return trees[path_str]

    # Pass 1: registrations (and parse errors), per-file cacheable.
    registry = StaticRegistry()
    for path_str in raw:
        key = f"{path_str}\0{shas[path_str]}\0{fingerprint}"
        entry = cache.get("lint-file", key) if cache is not None else None
        if entry is None:
            tree = parsed(path_str)
            regs = [] if tree is None else \
                collect_registrations({path_str: tree}).registrations
            entry = {
                "registrations": [r.__dict__ for r in regs],
                "error": errors[path_str].__dict__
                if path_str in errors else None,
            }
            if cache is not None:
                cache.put("lint-file", key, entry)
        if entry["error"] is not None:
            errors[path_str] = Violation(**entry["error"])
        registry.registrations.extend(
            Registration(**r) for r in entry["registrations"])

    registered = registry.constants
    env = file_sha256("\n".join(sorted(registered)).encode())

    violations: list[Violation] = list(errors.values())

    # Pass 2: per-file rules + waivers, keyed additionally on the
    # cross-file registration environment.
    for path_str in raw:
        if path_str in errors:
            continue
        key = f"{path_str}\0{shas[path_str]}\0{env}\0{fingerprint}"
        entry = cache.get("lint-check", key) if cache is not None else None
        if entry is None:
            tree = parsed(path_str)
            if tree is None:  # unreachable: pass 1 already parsed it
                continue
            context = classify_path(Path(path_str))
            found = check_file(tree, context, registered)
            directives, problems = parse_allow_directives(
                path_str, sources[path_str])
            kept = apply_allow_directives(found, directives,
                                          families=_LINT_FAMILIES)
            kept.extend(problems)
            entry = {"violations": [v.__dict__ for v in kept]}
            if cache is not None:
                cache.put("lint-check", key, entry)
        violations.extend(Violation(**v) for v in entry["violations"])

    violations.extend(registry_violations(registry))

    if select:
        prefixes = tuple(select)
        violations = [v for v in violations if v.rule.startswith(prefixes)]
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Contract-aware static analysis for the calibration "
                    "codebase (RNG confinement, determinism hazards, "
                    "executor payload hygiene, typed-core annotations).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", action="append", default=None,
                        metavar="PREFIX",
                        help="only report rules matching this id prefix "
                             "(repeatable), e.g. --select REPRO1")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format (default: text)")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-hash result cache directory")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id]}")
        return 0

    try:
        violations = run_lint(args.paths, select=args.select,
                              cache_dir=args.cache_dir)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        rendered = json.dumps([v.__dict__ for v in violations], indent=2)
    elif args.format == "sarif":
        from .sarif import to_sarif
        rendered = json.dumps(
            to_sarif(violations, tool_name="repro-lint"), indent=2)
    else:
        rendered = "\n".join(v.render() for v in violations)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    elif rendered:
        print(rendered)
    if violations and args.format == "text" and not args.output:
        print(f"\n{len(violations)} violation(s) found.", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
