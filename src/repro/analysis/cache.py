"""Content-hash result cache for the static analysis passes.

CI and pre-commit run the analyzers on every invocation; almost all of
that work is re-deriving facts about files that did not change.  The
cache keys results on *content*, never on timestamps:

* every entry embeds the **ruleset fingerprint** — a sha256 over the
  source bytes of ``repro.analysis`` itself — so editing any rule,
  the call-graph builder, or this module invalidates everything;
* ``repro lint`` keys per file on ``(file sha256, registered-constant
  environment)``: per-file verdicts also depend on which stream
  constants *other* files registered, so that cross-file environment is
  hashed into the key rather than pretending files are independent;
* ``repro flow`` keys the **whole project** on the sorted
  ``(path, sha256)`` set — a whole-program analysis has no sound
  per-file decomposition, and claiming one would serve stale verdicts
  after a change in a callee two modules away.

Entries are JSON files written atomically (temp file + ``os.replace``)
so a killed run never leaves a truncated entry behind; a corrupt or
unreadable entry is treated as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path

__all__ = ["AnalysisCache", "file_sha256", "ruleset_fingerprint"]


def file_sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@lru_cache(maxsize=1)
def ruleset_fingerprint() -> str:
    """sha256 over the analysis package's own sources.

    Any change to a rule, the flow passes, or the cache layout yields a
    new fingerprint, so stale entries can never satisfy a newer ruleset.
    """
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(str(path.relative_to(package_dir)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class AnalysisCache:
    """Namespace -> key -> JSON payload store under one cache directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _entry_path(self, namespace: str, key: str) -> Path:
        safe = hashlib.sha256(key.encode()).hexdigest()
        return self.root / namespace / f"{safe}.json"

    def get(self, namespace: str, key: str) -> dict | None:
        path = self._entry_path(namespace, key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        # The full key is stored inside the entry and compared exactly:
        # a sha collision on the filename alone can never alias entries.
        if payload.get("key") != key:
            return None
        return payload.get("value")

    def put(self, namespace: str, key: str, value: dict) -> None:
        path = self._entry_path(namespace, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump({"key": key, "value": value}, handle)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache directory degrades to "no cache",
            # never to a failed analysis run.
            return
