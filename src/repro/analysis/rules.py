"""AST rule implementations behind ``python -m repro.analysis.lint``.

Every rule encodes an invariant this codebase has already relied on (and in
two documented cases, already broken).  Rules are deliberately conservative:
they flag the *shapes* of past bugs — rogue RNG construction, integer
stream tags, closures shipped to executors — rather than attempting general
dataflow analysis, so a clean run stays meaningful and a failure is always
actionable.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

from .registry import StaticRegistry

__all__ = ["FileContext", "Violation", "RULES", "check_file",
           "registry_violations", "AllowDirective",
           "parse_allow_directives", "apply_allow_directives"]

#: rule id -> one-line description (surfaced by ``--list-rules``).
RULES: dict[str, str] = {
    "REPRO101": "RNG construction (numpy.random.*, stdlib random) outside "
                "seir/seeding.py",
    "REPRO102": "stream tag fed to mix_seed/ancillary_generator is not a "
                "registered named constant",
    "REPRO103": "stream-tag constant assigned without registering it in "
                "STREAM_DOMAINS",
    "REPRO104": "two stream registrations claim the same (domain, tag)",
    "REPRO201": "wall-clock read (time.time, datetime.now, ...) in a "
                "deterministic subsystem",
    "REPRO202": "unordered set iteration feeding arrays/sequences in a "
                "deterministic subsystem",
    "REPRO203": "invalid, reason-less, or unused '# repro-allow' directive",
    "REPRO301": "lambda or nested function dispatched through an Executor",
    "REPRO302": "raw tuple/dict executor payload instead of a declared "
                "dataclass task",
    "REPRO401": "incomplete signature annotations in a typed-core module",
    # REPRO50x/51x are emitted by the interprocedural pass
    # (python -m repro.analysis.flow), not by the per-file lint; they live
    # in the shared catalogue so --list-rules and repro-allow validation
    # cover both tools.
    "REPRO501": "numpy.random.Generator cached in a module global "
                "(directly or via a helper's return value)",
    "REPRO502": "numpy.random.Generator stored on long-lived service/"
                "supervisor state",
    "REPRO503": "numpy.random.Generator crossing an Executor payload "
                "boundary",
    "REPRO511": "wall-clock read reachable from an Executor dispatch "
                "target",
    "REPRO512": "ambient RNG (stdlib random, legacy numpy.random, "
                "unseeded default_rng) reachable from a dispatch target",
    "REPRO513": "mutable module-global write reachable from a dispatch "
                "target",
    "REPRO514": "filesystem access outside declared stores reachable from "
                "a dispatch target",
}

#: Constant-name shapes that denote stream tags (REPRO103).
_STREAM_CONST_RE = re.compile(r"^_[A-Z0-9_]*_STREAM$|^_PURPOSE_[A-Z0-9_]+$")

#: Wall-clock callables rejected in deterministic subsystems (REPRO201).
_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Array/sequence builders whose input order becomes data (REPRO202).
_ORDER_SENSITIVE_NUMPY = {
    "numpy.array", "numpy.asarray", "numpy.asanyarray", "numpy.fromiter",
    "numpy.stack", "numpy.concatenate",
}
_ORDER_SENSITIVE_BUILTINS = {"list", "tuple", "enumerate"}

#: Executor-protocol dispatch methods (REPRO3xx).
_DISPATCH_METHODS = {"map", "submit"}

#: Registration entry points (their tag argument is *supposed* to be a
#: literal — exempt from REPRO102's named-constant requirement).
_REGISTER_FUNC_NAMES = {"register_stream_tag", "register_ancillary_purpose",
                        "register"}


@dataclass(frozen=True)
class FileContext:
    """Which rule families apply to one file."""

    path: str
    rng_allowed: bool = False     # the one sanctioned RNG construction site
    deterministic: bool = False   # core/, seir/, hpc/
    typed: bool = False           # core/, hpc/, seir/seeding.py


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class _Scope:
    """Per-function bookkeeping for the executor-payload rules."""

    nested_defs: set[str] = field(default_factory=set)
    list_payloads: dict[str, list[ast.expr]] = field(default_factory=dict)


def _receiver_is_executor(node: ast.expr) -> bool:
    """True when a ``.map``/``.submit`` receiver looks like an executor."""
    if isinstance(node, ast.Name):
        term = node.id
    elif isinstance(node, ast.Attribute):
        term = node.attr
    else:
        return False
    term = term.lstrip("_").lower()
    return term.endswith("executor") or term.endswith("pool")


def _is_unordered(node: ast.expr) -> bool:
    """Set displays, set comprehensions, and bare set()/frozenset() calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _FileChecker(ast.NodeVisitor):
    """Single-file rule pass (REPRO101/102/103, 2xx, 3xx, 4xx)."""

    def __init__(self, context: FileContext, registered: set[str]) -> None:
        self.ctx = context
        self.registered = registered
        self.violations: list[Violation] = []
        self._aliases: dict[str, str] = {}
        self._scopes: list[_Scope] = []
        self._class_depth = 0

    # ------------------------------------------------------------------ #
    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(Violation(
            path=self.ctx.path, line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0), rule=rule, message=message))

    def _canonical(self, node: ast.expr) -> str | None:
        """Resolve ``np.random.default_rng`` through import aliases."""
        if isinstance(node, ast.Name):
            return self._aliases.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self._canonical(node.value)
            return None if base is None else f"{base}.{node.attr}"
        return None

    # ------------------------------------------------------------------ #
    # Imports: build the alias table; reject stdlib random outright.
    # ------------------------------------------------------------------ #
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._aliases[alias.asname or alias.name.split(".")[0]] = \
                alias.name if alias.asname else alias.name.split(".")[0]
            if alias.name.split(".")[0] == "random" and \
                    not self.ctx.rng_allowed:
                self._flag(node, "REPRO101",
                           "stdlib 'random' imported outside seir/seeding.py "
                           "— all randomness must flow through the seed bank")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            self._aliases[alias.asname or alias.name] = \
                f"{module}.{alias.name}" if module else alias.name
        root = module.split(".")[0]
        if root == "random" and not self.ctx.rng_allowed:
            self._flag(node, "REPRO101",
                       "stdlib 'random' imported outside seir/seeding.py — "
                       "all randomness must flow through the seed bank")
        if module.startswith("numpy.random") and not self.ctx.rng_allowed:
            self._flag(node, "REPRO101",
                       "numpy.random imported directly outside "
                       "seir/seeding.py — obtain generators from the seed "
                       "bank (repro.seir.seeding) instead")
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # Assignments: stream constants must be registered (REPRO103).
    # ------------------------------------------------------------------ #
    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if _STREAM_CONST_RE.match(name):
                func_name = _terminal_name(node.value.func) \
                    if isinstance(node.value, ast.Call) else None
                if func_name not in _REGISTER_FUNC_NAMES:
                    self._flag(
                        node, "REPRO103",
                        f"stream constant {name} is assigned without "
                        "registration — use register_stream_tag()/"
                        "register_ancillary_purpose() so tag uniqueness is "
                        "enforced at import time")
            if self._scopes and isinstance(node.value, ast.List):
                self._scopes[-1].list_payloads.setdefault(
                    name, []).extend(node.value.elts)
            elif self._scopes and isinstance(
                    node.value, (ast.ListComp, ast.GeneratorExp)):
                self._scopes[-1].list_payloads.setdefault(
                    name, []).append(node.value.elt)
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # Function scopes: nested defs + annotation completeness.
    # ------------------------------------------------------------------ #
    def _check_annotations(self, node: ast.FunctionDef | ast.AsyncFunctionDef
                           ) -> None:
        if node.name.startswith("test_"):
            return
        missing: list[str] = []
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        skip_first = (self._class_depth > 0 and not self._scopes
                      and positional
                      and positional[0].arg in ("self", "cls")
                      and not any(isinstance(d, ast.Name)
                                  and d.id == "staticmethod"
                                  for d in node.decorator_list))
        if skip_first:
            positional = positional[1:]
        for arg in positional + list(args.kwonlyargs):
            if arg.annotation is None:
                missing.append(arg.arg)
        for vararg, prefix in ((args.vararg, "*"), (args.kwarg, "**")):
            if vararg is not None and vararg.annotation is None:
                missing.append(prefix + vararg.arg)
        if node.returns is None:
            missing.append("return")
        if missing:
            self._flag(node, "REPRO401",
                       f"def {node.name}(...) is missing annotations for: "
                       f"{', '.join(missing)} (module is mypy-gated)")

    def _enter_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> None:
        if self.ctx.typed:
            self._check_annotations(node)
        if self._scopes:
            self._scopes[-1].nested_defs.add(node.name)
        scope = _Scope()
        self._scopes.append(scope)
        class_depth = self._class_depth
        self._class_depth = 0  # classes inside functions start fresh
        self.generic_visit(node)
        self._class_depth = class_depth
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_depth += 1
        self.generic_visit(node)
        self._class_depth -= 1

    # ------------------------------------------------------------------ #
    # For loops: unordered iteration (REPRO202).
    # ------------------------------------------------------------------ #
    def visit_For(self, node: ast.For) -> None:
        if self.ctx.deterministic and _is_unordered(node.iter):
            self._flag(node, "REPRO202",
                       "iterating an unordered set in a deterministic "
                       "subsystem — sort it (sorted(...)) before iteration")
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # Calls: RNG confinement, stream tags, clocks, arrays-from-sets,
    # executor dispatch.
    # ------------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        canonical = self._canonical(node.func)
        terminal = _terminal_name(node.func)

        if canonical is not None and not self.ctx.rng_allowed and (
                canonical.startswith("numpy.random.")
                or canonical.startswith("random.")):
            self._flag(node, "REPRO101",
                       f"call to {canonical} outside seir/seeding.py — "
                       "generators and seed sequences are constructed only "
                       "by the seed bank (repro.seir.seeding)")

        if terminal == "mix_seed":
            self._check_mix_seed(node)
        elif terminal == "ancillary_generator":
            self._check_ancillary(node)

        if self.ctx.deterministic:
            if canonical in _WALL_CLOCK:
                self._flag(node, "REPRO201",
                           f"{canonical}() in a deterministic subsystem — "
                           "wall-clock reads make runs irreproducible; pass "
                           "timestamps in from the caller")
            first = node.args[0] if node.args else None
            consumer = (canonical in _ORDER_SENSITIVE_NUMPY
                        or (isinstance(node.func, ast.Name)
                            and node.func.id in _ORDER_SENSITIVE_BUILTINS))
            if consumer and first is not None and _is_unordered(first):
                self._flag(node, "REPRO202",
                           "building an ordered sequence from an unordered "
                           "set — the element order (and any array built "
                           "from it) varies across processes; sort first")

        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _DISPATCH_METHODS and \
                _receiver_is_executor(node.func.value):
            self._check_dispatch(node)

        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    def _stream_arg_ok(self, arg: ast.expr) -> bool:
        name = _terminal_name(arg)
        return name is not None and name in self.registered

    def _check_mix_seed(self, node: ast.Call) -> None:
        if len(node.args) < 2:
            self._flag(node, "REPRO102",
                       "mix_seed call carries no stream tag — pass a "
                       "registered *_STREAM constant right after the base "
                       "seed (the reserved method-tag position)")
            return
        tag = node.args[1]
        if isinstance(tag, ast.Constant):
            self._flag(node, "REPRO102",
                       "integer-literal stream tag in mix_seed — the PR 5 "
                       "aliasing bug shape; register a named constant via "
                       "register_stream_tag() and pass that")
        elif not self._stream_arg_ok(tag):
            name = _terminal_name(tag) or ast.dump(tag)
            self._flag(node, "REPRO102",
                       f"stream tag {name!r} in mix_seed is not a "
                       "registered stream constant (register_stream_tag)")

    def _check_ancillary(self, node: ast.Call) -> None:
        purpose: ast.expr | None = node.args[0] if node.args else None
        for kw in node.keywords:
            if kw.arg == "purpose":
                purpose = kw.value
        if purpose is None:
            return  # default purpose 0 is the documented one-shot stream
        if isinstance(purpose, ast.Constant):
            self._flag(node, "REPRO102",
                       "integer-literal ancillary purpose — register a "
                       "named constant via register_ancillary_purpose() so "
                       "consumers can never silently collide")
        elif not self._stream_arg_ok(purpose):
            name = _terminal_name(purpose) or ast.dump(purpose)
            self._flag(node, "REPRO102",
                       f"ancillary purpose {name!r} is not a registered "
                       "purpose constant (register_ancillary_purpose)")

    # ------------------------------------------------------------------ #
    def _payload_exprs(self, tasks: ast.expr) -> list[ast.expr]:
        """Statically visible payload element expressions of a dispatch."""
        if isinstance(tasks, (ast.ListComp, ast.GeneratorExp)):
            return [tasks.elt]
        if isinstance(tasks, (ast.List, ast.Tuple)):
            return list(tasks.elts)
        if isinstance(tasks, ast.Name):
            for scope in reversed(self._scopes):
                if tasks.id in scope.list_payloads:
                    return scope.list_payloads[tasks.id]
        return []

    def _check_dispatch(self, node: ast.Call) -> None:
        if not node.args:
            return
        fn = node.args[0]
        if isinstance(fn, ast.Lambda):
            self._flag(node, "REPRO301",
                       "lambda dispatched through an Executor — lambdas "
                       "don't pickle and hide their payload contract; use a "
                       "module-level function over a dataclass task")
        elif isinstance(fn, ast.Name) and any(
                fn.id in scope.nested_defs for scope in self._scopes):
            self._flag(node, "REPRO301",
                       f"nested function {fn.id!r} dispatched through an "
                       "Executor — closures don't pickle and capture "
                       "ambient state; hoist it to module level")
        if len(node.args) < 2:
            return
        for elt in self._payload_exprs(node.args[1]):
            if isinstance(elt, (ast.Tuple, ast.Dict, ast.List, ast.Set,
                                ast.Lambda)):
                self._flag(elt, "REPRO302",
                           "executor payload is a raw tuple/dict literal — "
                           "declare a frozen dataclass task (see "
                           "hpc.sharding.ShardTask) so the payload schema "
                           "is named, typed, and lintable")
                break

    # Track appends into candidate payload lists (tasks.append((...,))).
    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if self._scopes and isinstance(call, ast.Call) and \
                isinstance(call.func, ast.Attribute) and \
                call.func.attr == "append" and \
                isinstance(call.func.value, ast.Name) and call.args:
            name = call.func.value.id
            for scope in reversed(self._scopes):
                if name in scope.list_payloads:
                    scope.list_payloads[name].append(call.args[0])
                    break
        self.generic_visit(node)


# --------------------------------------------------------------------------- #
# Scoped allowlisting: ``# repro-allow: RULE <reason>``
# --------------------------------------------------------------------------- #
#: Directive comment shape.  The reason is mandatory: an exemption nobody
#: can justify in one clause should not exist.
_ALLOW_RE = re.compile(
    r"#\s*repro-allow:\s*(?P<rule>\S+)(?:\s+(?P<reason>.+?))?\s*$")

#: A comment *starting* with the directive keyword is a directive attempt;
#: prose merely mentioning repro-allow mid-comment is not.
_ALLOW_CANDIDATE_RE = re.compile(r"#\s*repro-allow\b")

#: Rules a directive may never waive: the directive machinery itself, and
#: the syntax-error pseudo-rule.
_UNWAIVABLE = {"REPRO203", "REPRO000"}


@dataclass(frozen=True)
class AllowDirective:
    """One parsed ``# repro-allow: RULE reason`` comment.

    ``line`` is where the comment sits; ``target_line`` is the single line
    whose violations it waives — the same line for a trailing comment, the
    next code line for a comment standing alone.  The scope is deliberately
    one line: a directive can never blanket a region, let alone a file.
    """

    path: str
    line: int
    target_line: int
    rule: str
    reason: str


def parse_allow_directives(path: str, source: str
                           ) -> tuple[list[AllowDirective], list[Violation]]:
    """Extract allow directives (and directive *mistakes*) from one file.

    Tokenises rather than scanning lines so ``#`` inside string literals
    can never be mistaken for a comment.  Malformed directives — unknown
    or unwaivable rule ids, a missing reason, a missing colon — come back
    as REPRO203 violations instead of being silently ignored, because a
    directive the author believes is active but the linter cannot parse is
    worse than no directive at all.
    """
    directives: list[AllowDirective] = []
    problems: list[Violation] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return [], []  # unparsable files are REPRO000's problem
    for tok in tokens:
        if tok.type != tokenize.COMMENT or \
                _ALLOW_CANDIDATE_RE.match(tok.string) is None:
            continue
        line, col = tok.start
        match = _ALLOW_RE.match(tok.string)
        if match is None:
            problems.append(Violation(
                path=path, line=line, col=col, rule="REPRO203",
                message="malformed repro-allow directive — the shape is "
                        "'# repro-allow: RULEID <reason>'"))
            continue
        rule = match.group("rule")
        reason = (match.group("reason") or "").strip()
        if rule not in RULES or rule in _UNWAIVABLE:
            problems.append(Violation(
                path=path, line=line, col=col, rule="REPRO203",
                message=f"repro-allow names {rule!r}, which is not a "
                        "waivable rule id"))
            continue
        if not reason:
            problems.append(Violation(
                path=path, line=line, col=col, rule="REPRO203",
                message=f"repro-allow for {rule} carries no reason — state "
                        "why this line is exempt"))
            continue
        target = line
        if not lines[line - 1][:col].strip():
            # Standalone comment: it annotates the next code line.
            for j in range(line, len(lines)):
                text = lines[j].strip()
                if text and not text.startswith("#"):
                    target = j + 1
                    break
        directives.append(AllowDirective(path=path, line=line,
                                         target_line=target, rule=rule,
                                         reason=reason))
    return directives, problems


def apply_allow_directives(violations: list[Violation],
                           directives: list[AllowDirective],
                           families: tuple[str, ...] | None = None
                           ) -> list[Violation]:
    """Waive directive-covered violations; flag directives that waive
    nothing.

    An unused directive is itself a REPRO203 violation: once the code it
    excused stops violating the rule, the stale exemption would silently
    re-arm the moment someone reintroduces the hazard on that line.

    ``families`` scopes which directives this *pass* is responsible for,
    by rule-id prefix.  The lint and the flow pass share one directive
    syntax but emit disjoint rule families; without the scope each would
    flag the other's perfectly-used directives as unused.
    """
    if families is not None:
        directives = [d for d in directives if d.rule.startswith(families)]
    by_key: dict[tuple[str, int], list[AllowDirective]] = {}
    for d in directives:
        by_key.setdefault((d.rule, d.target_line), []).append(d)
    used: set[AllowDirective] = set()
    kept: list[Violation] = []
    for v in violations:
        covering = by_key.get((v.rule, v.line))
        if covering:
            used.update(covering)
        else:
            kept.append(v)
    for d in directives:
        if d not in used:
            kept.append(Violation(
                path=d.path, line=d.line, col=0, rule="REPRO203",
                message=f"unused repro-allow directive — line "
                        f"{d.target_line} does not violate {d.rule}; "
                        "delete the directive"))
    return kept


def check_file(tree: ast.Module, context: FileContext,
               registered: set[str]) -> list[Violation]:
    """Run every per-file rule over one parsed module."""
    checker = _FileChecker(context, registered)
    checker.visit(tree)
    return checker.violations


def registry_violations(registry: StaticRegistry) -> list[Violation]:
    """Cross-file duplicate-tag detection (REPRO104)."""
    out: list[Violation] = []
    for first, second in registry.duplicate_tags():
        out.append(Violation(
            path=second.path, line=second.line, col=0, rule="REPRO104",
            message=(f"stream tag {second.tag} in domain {second.domain!r} "
                     f"is registered twice: {first.stream_name!r} at "
                     f"{first.path}:{first.line} and "
                     f"{second.stream_name!r} here — two names on one tag "
                     "alias their seed streams")))
    return out
