"""Deterministic fault injection for the service layer.

PR 7's :mod:`repro.hpc.faults` chaos harness tears individual *shard
dispatches*; this module raises the blast radius one level to the
supervision loop's units of work:

* :class:`ChaosCalibrator` — a transparent proxy around a
  :class:`~repro.core.smc.SequentialCalibrator` that injects scripted (or
  seeded) faults into :meth:`step_window` calls, keyed by
  ``(window_index, attempt)`` where *attempt* counts the calls the
  supervisor has made for that window.  ``crash`` raises the same
  :class:`~repro.hpc.faults.ChaosInjectedError` the shard harness uses;
  ``delay`` stalls the step (through an injectable ``sleep``, so tests
  can drive a fake clock) and then succeeds — the deadline-miss path.
* :func:`tear_artifact` — truncates a sealed artifact's payload in place,
  simulating the torn state a mid-write crash would leave if publication
  were not atomic, so tests can assert readers route around it.

Seeded plans draw on their own registered ancillary purpose
(``service_chaos``), so service-level chaos can never alias the shard
harness's draws, let alone any simulation stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..core.smc import SequentialCalibrator, WindowResult
from ..core.window import TimeWindow
from ..data.sources import ObservationSet
from ..hpc.faults import ChaosInjectedError
from ..seir.seeding import SeedSequenceBank, register_ancillary_purpose
from .artifacts import _FORECAST_NAME, ArtifactStore

__all__ = ["WindowFault", "ServiceFaultPlan", "ChaosCalibrator",
           "tear_artifact", "WINDOW_FAULT_KINDS"]

_PURPOSE_SERVICE_CHAOS = register_ancillary_purpose(
    "service_chaos", 41,
    description="seeded service-level fault-plan draws (window steps)")

#: Injectable window-step fault kinds: ``crash`` raises before the step
#: runs, ``delay`` stalls ``delay_seconds`` and then runs it normally.
WINDOW_FAULT_KINDS = ("crash", "delay")


@dataclass(frozen=True)
class WindowFault:
    """One scripted window-step fault at ``(window, attempt)``."""

    kind: str
    window: int
    attempt: int = 1
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in WINDOW_FAULT_KINDS:
            raise ValueError(f"unknown window fault kind {self.kind!r}; "
                             f"expected one of {WINDOW_FAULT_KINDS}")
        if self.window < 0:
            raise ValueError("window must be >= 0")
        if self.attempt < 1:
            raise ValueError("attempt is 1-based and must be >= 1")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")


@dataclass(frozen=True)
class ServiceFaultPlan:
    """A deterministic set of window-step faults, mirroring
    :class:`~repro.hpc.faults.FaultPlan` one level up.

    Scripted plans target exact ``(window, attempt)`` cells; seeded plans
    materialise at construction from the ``service_chaos`` ancillary
    stream, so the same ``(base_seed, n_windows, rates)`` always injects
    the same faults.
    """

    faults: tuple[WindowFault, ...] = ()

    def fault_for(self, window: int, attempt: int) -> WindowFault | None:
        for fault in self.faults:
            if fault.window == window and fault.attempt == attempt:
                return fault
        return None

    @classmethod
    def scripted(cls, *faults: WindowFault) -> "ServiceFaultPlan":
        return cls(faults=tuple(faults))

    @classmethod
    def seeded(cls, base_seed: int, *, n_windows: int,
               rates: Mapping[str, float], max_attempts: int = 1,
               delay_seconds: float = 0.01) -> "ServiceFaultPlan":
        """Draw a reproducible plan: each ``(window, attempt)`` cell gets
        at most one fault, kind ``k`` with probability ``rates[k]``.
        Draw order is window-major then attempt, one uniform per cell.
        """
        if n_windows < 1:
            raise ValueError("n_windows must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        unknown = set(rates) - set(WINDOW_FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds in rates: {sorted(unknown)}")
        kinds = [(kind, float(rates[kind])) for kind in WINDOW_FAULT_KINDS
                 if kind in rates]
        if sum(rate for _, rate in kinds) > 1.0:
            raise ValueError("fault rates must sum to <= 1")
        rng = SeedSequenceBank(base_seed).ancillary_generator(
            _PURPOSE_SERVICE_CHAOS)
        faults = []
        for window in range(n_windows):
            for attempt in range(1, max_attempts + 1):
                u = float(rng.random())
                cum = 0.0
                for kind, rate in kinds:
                    cum += rate
                    if u < cum:
                        faults.append(WindowFault(
                            kind=kind, window=window, attempt=attempt,
                            delay_seconds=delay_seconds))
                        break
        return cls(faults=tuple(faults))


class ChaosCalibrator:
    """Fault-injecting proxy around a sequential calibrator.

    Forwards everything to the wrapped calibrator except
    :meth:`step_window`, which consults the plan first.  The attempt
    number is the per-window call count, which under
    :class:`~repro.service.supervisor.CalibrationService` is exactly the
    supervisor's restart attempt — so plans address "window 1, second
    try" without the harness reaching into supervisor internals.  Because
    ``step_window`` is deterministic and side-effect-free until it
    returns, a crashed-then-retried step leaves the surviving run
    bit-identical to an unfaulted one.
    """

    def __init__(self, calibrator: SequentialCalibrator,
                 plan: ServiceFaultPlan, *,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self._inner = calibrator
        self._plan = plan
        self._sleep = sleep
        self._calls: dict[int, int] = {}

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    @property
    def injected(self) -> dict[int, int]:
        """Per-window step-call counts (1 = no restarts were forced)."""
        return dict(self._calls)

    def step_window(self, index: int, window: TimeWindow,
                    observations: ObservationSet,
                    posterior: Any = None, *,
                    n_proposals: int | None = None,
                    resample_size: int | None = None) -> WindowResult:
        attempt = self._calls.get(index, 0) + 1
        self._calls[index] = attempt
        fault = self._plan.fault_for(index, attempt)
        if fault is not None:
            if fault.kind == "crash":
                raise ChaosInjectedError(
                    f"chaos: injected window-step crash "
                    f"(window {index}, attempt {attempt})")
            self._sleep(fault.delay_seconds)
        return self._inner.step_window(index, window, observations,
                                       posterior, n_proposals=n_proposals,
                                       resample_size=resample_size)


def tear_artifact(store: ArtifactStore, window_index: int) -> None:
    """Corrupt a sealed artifact's payload in place (keeping its seal).

    Truncates ``forecast.json`` to half its bytes — the torn state a
    non-atomic writer crashing mid-write would leave.  Used by the
    degradation tests to prove readers detect the hash mismatch and
    serve the previous sealed window instead.
    """
    path = store.window_dir(window_index) / _FORECAST_NAME
    data = path.read_bytes()
    path.write_bytes(data[:max(1, len(data) // 2)])
