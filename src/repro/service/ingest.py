"""Supervised streaming intake: validate, quarantine, assemble windows.

Observations reach the service as tidy ``day,series,value`` CSV files
dropped into a spool directory (the format the batch loaders and
:func:`repro.viz.export.write_series_csv` already speak).  Nothing in a
spool file is trusted: every row passes the shared defect detector of
:mod:`repro.data.validation`, and rejected rows become structured
:class:`IngestError` records appended to a quarantine JSONL log — a bad
feed can never poison the calibrator, it can only slow it down (windows
missing data simply stay pending, and forecast reads degrade to the last
sealed artifact).

The :class:`ObservationBuffer` is the accepted-row store.  It enforces the
service's ordering contract: the *frontier* is the first day still open
for ingest (the end of the last calibrated window); rows arriving below a
frontier that advanced in this process are rejected as ``out_of_order``,
because a sealed window's posterior can no longer be revised — late
corrections belong in a fresh run.  Rows below the frontier the buffer
*started* with are silently skipped instead: they are the already-consumed
history a post-crash re-scan legitimately re-reads.

Restart safety comes from re-reading, not bookkeeping: spool files are
immutable once dropped (writers must write-then-rename) and are never
consumed or renamed by the service.  Within one process each file is read
exactly once; after a crash the daemon re-scans the spool from scratch,
the buffer rebuilds deterministically, and windows already sealed in the
checkpoint store are skipped via the resumed frontier.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..data.loaders import _DEFAULT_STREAMS
from ..data.series import TimeSeries
from ..data.sources import ObservationSet, ObservationSource
from ..data.validation import ObservationDefect, find_row_defects

__all__ = ["IngestError", "ObservationBuffer", "SpoolIngest",
           "REASON_OUT_OF_ORDER", "REASON_UNKNOWN_STREAM"]

#: Service-level rejection reasons, extending repro.data.validation's codes.
REASON_OUT_OF_ORDER = "out_of_order"
REASON_UNKNOWN_STREAM = "unknown_stream"


@dataclass(frozen=True)
class IngestError:
    """One rejected observation row, with its origin.

    The service's structured rejection record: the validation defect
    (stream / day / reason code / detail) plus the spool source it came
    from.  These are appended to the quarantine log and surfaced in
    service events; the rejected value itself never reaches the
    calibrator.
    """

    stream: str
    day: int | None
    reason: str
    detail: str
    source: str = "<rows>"

    @classmethod
    def from_defect(cls, defect: ObservationDefect,
                    source: str) -> "IngestError":
        return cls(stream=defect.stream, day=defect.day,
                   reason=defect.reason, detail=defect.detail, source=source)

    def render(self) -> str:
        where = f"day {self.day}" if self.day is not None else "unknown day"
        return (f"{self.source}: {self.stream}[{where}]: "
                f"{self.reason} — {self.detail}")

    def to_dict(self) -> dict:
        return {"stream": self.stream, "day": self.day,
                "reason": self.reason, "detail": self.detail,
                "source": self.source}


class ObservationBuffer:
    """Accepted observations, keyed per stream per day, window-sliceable.

    ``streams`` maps each expected stream name to its ``(channel, biased)``
    wiring (defaulting to the paper's cases/deaths setup); rows for
    unconfigured streams are rejected — silently calibrating an
    unconfigured stream is how reporting-bias errors slip in.

    ``frontier`` is the first day rows may still land on.  It advances as
    windows seal (:meth:`advance_frontier`); accepted rows are retained
    below it so duplicate detection stays exact across the whole run.
    Rows below the *initial* frontier — the resume point a restarted
    daemon constructs the buffer with — are silently skipped: a post-crash
    re-scan re-reads history, and history is not an error.
    """

    def __init__(self, streams: Mapping[str, tuple[str, bool]] | None = None,
                 *, frontier: int = 0) -> None:
        self._streams: dict[str, tuple[str, bool]] = dict(
            streams if streams is not None else _DEFAULT_STREAMS)
        if not self._streams:
            raise ValueError("at least one stream must be configured")
        self._frontier = int(frontier)
        self._initial_frontier = int(frontier)
        self._values: dict[str, dict[int, float]] = {
            name: {} for name in self._streams}

    @property
    def frontier(self) -> int:
        return self._frontier

    @property
    def stream_names(self) -> tuple[str, ...]:
        return tuple(self._streams)

    def advance_frontier(self, day: int) -> None:
        """Seal history up to ``day``: later arrivals below it are rejected
        as out-of-order."""
        if day < self._frontier:
            raise ValueError(
                f"frontier may only advance (now {self._frontier}, "
                f"got {day})")
        self._frontier = int(day)

    def add_rows(self, stream: str, rows: Iterable[tuple[object, object]],
                 source: str = "<rows>") -> list[IngestError]:
        """Ingest raw ``(day, value)`` rows for one stream.

        Accepted values land in the buffer; every rejected row comes back
        as an :class:`IngestError` (malformed / NaN / negative /
        non-finite / duplicate via the shared detector, plus the service's
        out-of-order and unknown-stream rules).  Never raises on bad data.
        """
        if stream not in self._streams:
            return [IngestError(stream=stream, day=None,
                                reason=REASON_UNKNOWN_STREAM,
                                detail=f"stream {stream!r} is not configured "
                                       f"(expected {sorted(self._streams)})",
                                source=source)]
        values = self._values[stream]
        accepted, defects = find_row_defects(stream, rows,
                                             seen_days=values.keys())
        errors = [IngestError.from_defect(d, source) for d in defects
                  if not (d.day is not None
                          and d.day < self._initial_frontier)]
        for day, value in accepted:
            if day < self._initial_frontier:
                continue  # already-consumed history re-read after a restart
            if day < self._frontier:
                errors.append(IngestError(
                    stream=stream, day=day, reason=REASON_OUT_OF_ORDER,
                    detail=f"day {day} is behind the calibration frontier "
                           f"{self._frontier}; sealed windows cannot be "
                           "revised", source=source))
                continue
            values[day] = value
        return errors

    def covered(self, start_day: int, end_day: int) -> bool:
        """True when every stream has every day of ``[start_day, end_day)``."""
        if end_day <= start_day:
            raise ValueError("end_day must exceed start_day")
        days = range(start_day, end_day)
        return all(all(d in values for d in days)
                   for values in self._values.values())

    def missing_days(self, start_day: int, end_day: int) -> dict[str, list[int]]:
        """Per-stream days of ``[start_day, end_day)`` not yet ingested."""
        return {name: [d for d in range(start_day, end_day)
                       if d not in self._values[name]]
                for name in self._streams}

    def observation_set(self, start_day: int, end_day: int) -> ObservationSet:
        """The buffered observations for one window, as calibrator input.

        Requires full coverage (:meth:`covered`); the assembled set passes
        through the loaders' stream wiring, so it is exactly what the
        batch path would have built from the same rows.
        """
        if not self.covered(start_day, end_day):
            missing = {k: v for k, v in
                       self.missing_days(start_day, end_day).items() if v}
            raise ValueError(
                f"window [{start_day}, {end_day}) is not fully ingested; "
                f"missing {missing}")
        sources = []
        for name, (channel, biased) in self._streams.items():
            values = self._values[name]
            series = TimeSeries(
                start_day,
                np.asarray([values[d] for d in range(start_day, end_day)],
                           dtype=float),
                name=name)
            sources.append(ObservationSource(name, series, channel=channel,
                                             biased=biased))
        return ObservationSet.of(*sources)


class SpoolIngest:
    """Directory-watching intake: scan spool CSVs into a buffer.

    Files are tidy ``day,series,value`` CSVs under ``spool_dir``, scanned
    in sorted name order so ingest order is deterministic, and each file
    is read exactly once per process (new data must arrive as new files —
    the write-then-rename spool contract).  Files are never consumed,
    renamed, or rewritten by the service, which is what makes a crash at
    any point recoverable by simply re-scanning everything against the
    resumed frontier.  Unreadable files and invalid rows are quarantined,
    not raised.
    """

    def __init__(self, spool_dir: str | os.PathLike,
                 buffer: ObservationBuffer, *,
                 quarantine_path: str | os.PathLike | None = None) -> None:
        self._spool_dir = Path(spool_dir)
        self._buffer = buffer
        self._quarantine_path = (Path(quarantine_path)
                                 if quarantine_path is not None else None)
        self._seen: set[str] = set()

    @property
    def buffer(self) -> ObservationBuffer:
        return self._buffer

    def _quarantine(self, errors: Sequence[IngestError]) -> None:
        if not errors or self._quarantine_path is None:
            return
        self._quarantine_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self._quarantine_path, "a") as fh:
            for error in errors:
                fh.write(json.dumps(error.to_dict(), sort_keys=True) + "\n")

    def scan(self) -> list[IngestError]:
        """Read every new spool file into the buffer; return rejections."""
        errors: list[IngestError] = []
        if not self._spool_dir.is_dir():
            return errors
        for path in sorted(self._spool_dir.glob("*.csv")):
            if path.name in self._seen:
                continue
            self._seen.add(path.name)
            errors.extend(self._ingest_file(path))
        self._quarantine(errors)
        return errors

    def _ingest_file(self, path: Path) -> list[IngestError]:
        source = path.name
        by_stream: dict[str, list[tuple[object, object]]] = {}
        try:
            with open(path, newline="") as fh:
                reader = csv.DictReader(fh)
                required = {"day", "series", "value"}
                if reader.fieldnames is None or \
                        not required <= set(reader.fieldnames):
                    return [IngestError(
                        stream="<file>", day=None, reason="malformed",
                        detail=f"spool CSV needs columns {sorted(required)}, "
                               f"got {reader.fieldnames}", source=source)]
                for row in reader:
                    stream = row.get("series") or "<missing>"
                    by_stream.setdefault(stream, []).append(
                        (row.get("day"), row.get("value")))
        except (OSError, csv.Error) as exc:
            return [IngestError(stream="<file>", day=None, reason="malformed",
                                detail=f"unreadable spool file: {exc}",
                                source=source)]
        errors: list[IngestError] = []
        for stream in sorted(by_stream):
            errors.extend(self._buffer.add_rows(stream, by_stream[stream],
                                                source=source))
        return errors
