"""Crash-safe forecast artifact publication and degraded reads.

Each calibrated window publishes one artifact directory::

    <root>/
      LATEST.json            # {"window_index": N} — atomic pointer
      window_000/
        forecast.json        # the servable payload, canonical JSON
        SEALED.json          # {"window_index", "files": {name: sha256}}
      window_001/
        ...

Every file is published with the write-temp + ``fsync`` + ``os.replace``
discipline (:func:`repro.hpc.checkpoint_io.write_json_atomic`), and the
seal — which records the content hash of every payload file — is written
strictly last.  A reader therefore never observes a torn artifact: either
the seal is absent (the window is not servable yet) or it validates the
exact bytes on disk.  ``forecast.json`` is canonical (sorted keys), so its
bytes are a pure function of the payload — the property the service's
kill-and-restart bit-identity tests assert file-for-file.

Reads degrade instead of erroring: :meth:`ArtifactStore.read_latest` walks
back from the newest sealed window past anything torn or missing, and tags
the result stale-with-age (windows behind the requested head, plus
wall-clock seconds since its seal) whenever it serves anything but the
window the caller hoped for.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..hpc.checkpoint_io import write_json_atomic

__all__ = ["ArtifactStore", "ArtifactRead", "TornArtifactError"]

_SEAL_NAME = "SEALED.json"
_FORECAST_NAME = "forecast.json"
_LATEST_NAME = "LATEST.json"


class TornArtifactError(RuntimeError):
    """An artifact failed seal validation (missing, truncated, or altered)."""


@dataclass(frozen=True)
class ArtifactRead:
    """One successful (possibly degraded) artifact read.

    ``stale`` is True whenever the served window is not the one the caller
    asked for; ``windows_behind`` counts how far behind it is (0 when the
    head was served), and ``age_seconds`` is the wall-clock age of the
    served artifact's seal — together they are the degradation contract's
    "stale-with-age" tag.
    """

    window_index: int
    payload: Mapping[str, Any]
    path: Path
    stale: bool
    windows_behind: int
    age_seconds: float


class ArtifactStore:
    """File-backed store of sealed per-window forecast artifacts."""

    def __init__(self, root: str | os.PathLike) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    def window_dir(self, window_index: int) -> Path:
        if window_index < 0:
            raise ValueError("window_index must be >= 0")
        return self._root / f"window_{window_index:03d}"

    # ------------------------------------------------------------------ #
    @staticmethod
    def _canonical_bytes(payload: Mapping[str, Any]) -> bytes:
        return json.dumps(payload, sort_keys=True).encode()

    @staticmethod
    def _sha256(data: bytes) -> str:
        return hashlib.sha256(data).hexdigest()

    def publish(self, window_index: int, payload: Mapping[str, Any]) -> Path:
        """Atomically publish and seal one window's forecast artifact.

        Write order: ``forecast.json`` (canonical bytes, atomic), then the
        seal recording its content hash, then the latest pointer.  A crash
        between any two steps leaves the previous sealed window fully
        servable and this window invisible or torn-and-skipped — never a
        half-readable head.
        """
        directory = self.window_dir(window_index)
        body = self._canonical_bytes(payload)
        write_json_atomic(directory / _FORECAST_NAME,
                          json.loads(body), sort_keys=True)
        seal = {"window_index": int(window_index),
                "files": {_FORECAST_NAME: self._sha256(body)}}
        write_json_atomic(directory / _SEAL_NAME, seal, sort_keys=True)
        latest = self.latest_sealed()
        if latest is None or latest <= window_index:
            write_json_atomic(self._root / _LATEST_NAME,
                              {"window_index": int(window_index)},
                              sort_keys=True)
        return directory

    # ------------------------------------------------------------------ #
    def sealed_windows(self) -> list[int]:
        """Indices of every window directory carrying a seal file."""
        out = []
        for child in sorted(self._root.glob("window_*")):
            if child.is_dir() and (child / _SEAL_NAME).exists():
                out.append(int(child.name.split("_", 1)[1]))
        return out

    def latest_sealed(self) -> int | None:
        sealed = self.sealed_windows()
        return sealed[-1] if sealed else None

    def _read_seal(self, window_index: int) -> dict | None:
        path = self.window_dir(window_index) / _SEAL_NAME
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def validate(self, window_index: int) -> bool:
        """Whether the window's seal matches the bytes on disk."""
        seal = self._read_seal(window_index)
        if seal is None:
            return False
        files = seal.get("files")
        if not isinstance(files, dict) or _FORECAST_NAME not in files:
            return False
        directory = self.window_dir(window_index)
        for name, digest in files.items():
            try:
                data = (directory / name).read_bytes()
            except OSError:
                return False
            if self._sha256(data) != digest:
                return False
        return True

    def load(self, window_index: int) -> dict:
        """Load one sealed artifact, verifying its seal byte-for-byte."""
        if not self.validate(window_index):
            raise TornArtifactError(
                f"artifact for window {window_index} is missing, unsealed, "
                "or fails hash validation")
        path = self.window_dir(window_index) / _FORECAST_NAME
        with open(path) as fh:
            return json.load(fh)

    def _age_seconds(self, window_index: int) -> float:
        seal_path = self.window_dir(window_index) / _SEAL_NAME
        try:
            sealed_at = seal_path.stat().st_mtime
        except OSError:
            return 0.0
        # repro-allow: REPRO201 staleness age is wall-clock by definition
        return max(0.0, time.time() - sealed_at)

    def read_latest(self, expected_window: int | None = None
                    ) -> ArtifactRead | None:
        """Serve the newest valid artifact, degraded if necessary.

        Walks sealed windows newest-first, skipping any that fail seal
        validation (a torn artifact is served *around*, never served).
        ``expected_window`` is the window the caller considers current
        (the calibration head the service should have reached); the read
        is tagged stale whenever the served window falls short of it.
        Returns ``None`` only when no valid artifact exists at all.
        """
        sealed = self.sealed_windows()
        for index in reversed(sealed):
            if not self.validate(index):
                continue
            path = self.window_dir(index) / _FORECAST_NAME
            with open(path) as fh:
                payload = json.load(fh)
            behind = (max(0, expected_window - index)
                      if expected_window is not None else 0)
            return ArtifactRead(
                window_index=index, payload=payload, path=path,
                stale=behind > 0 or index != (sealed[-1] if sealed else index),
                windows_behind=behind,
                age_seconds=self._age_seconds(index))
        return None

    def prune(self, keep_last: int) -> list[int]:
        """Retention GC mirroring the checkpoint store's: keep the newest
        ``keep_last`` sealed artifacts, never touch unsealed directories."""
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        doomed = self.sealed_windows()[:-keep_last]
        for index in doomed:
            shutil.rmtree(self.window_dir(index))
        return doomed
