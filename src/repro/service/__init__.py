"""Always-on calibration service (see ``docs/service.md``).

The batch calibrator answers "calibrate this fixed observation record";
this package answers "keep calibrating as observations arrive, and keep
serving forecasts no matter what" — the production shape the sequential
design exists for (re-calibration on data arrival is incremental, not
from-scratch).  Three subsystems:

* :mod:`~repro.service.ingest` — validating, quarantining observation
  intake: malformed / NaN / negative / out-of-order rows become structured
  :class:`~repro.service.ingest.IngestError` records, never calibrator
  input;
* :mod:`~repro.service.supervisor` — the window supervision loop: each
  ready window runs through
  :meth:`~repro.core.smc.SequentialCalibrator.step_window` under a
  deadline and a bounded restart-with-backoff budget
  (:class:`~repro.hpc.faults.RetryPolicy` semantics), with crash recovery
  via :class:`~repro.hpc.checkpoint_io.CheckpointStore` resume;
* :mod:`~repro.service.artifacts` — crash-safe forecast publication: each
  window's forecast artifact is written atomically and sealed with content
  hashes, and reads degrade gracefully to the last sealed artifact
  (tagged stale-with-age) instead of erroring.

:mod:`~repro.service.chaos` extends the PR 7 fault harness to the service
layer: deterministic window-step faults and artifact tearing for tests.
"""

from .artifacts import ArtifactRead, ArtifactStore, TornArtifactError
from .chaos import (ChaosCalibrator, ServiceFaultPlan, WindowFault,
                    tear_artifact)
from .ingest import IngestError, ObservationBuffer, SpoolIngest
from .supervisor import CalibrationService, ServiceConfig, ServiceEvent

__all__ = [
    "ArtifactRead", "ArtifactStore", "TornArtifactError",
    "IngestError", "ObservationBuffer", "SpoolIngest",
    "CalibrationService", "ServiceConfig", "ServiceEvent",
    "ChaosCalibrator", "ServiceFaultPlan", "WindowFault", "tear_artifact",
]
