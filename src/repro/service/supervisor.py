"""The window supervision loop: step, survive, publish, degrade.

:class:`CalibrationService` drives a
:class:`~repro.core.smc.SequentialCalibrator` one window at a time as
observations become available in an
:class:`~repro.service.ingest.ObservationBuffer`.  Each ready window runs
under supervision:

* **deadline** — the window step is timed against
  ``ServiceConfig.restart.timeout_seconds`` (the per-window deadline,
  reusing :class:`~repro.hpc.faults.RetryPolicy` semantics); a miss is a
  degradation event, not a failure — the result is kept, the operator is
  told the service is falling behind.
* **bounded restart** — a window step that raises is retried up to
  ``restart.max_attempts`` times with the policy's deterministic linear
  backoff.  Re-running :meth:`~repro.core.smc.SequentialCalibrator.\
step_window` is provably safe: all of its randomness is keyed by
  ``(base_seed, window index)``, never by wall clock or attempt.
* **sticky failure** — once the restart budget is exhausted the window is
  marked failed and the service stops advancing (state is preserved;
  reads keep serving the last sealed artifact, tagged stale).  A daemon
  restart gets a fresh budget.
* **crash recovery** — :meth:`CalibrationService.resume` restores the
  newest sealed checkpoint window
  (:meth:`~repro.core.smc.SequentialCalibrator.restore_latest_window`),
  re-derives the size-policy plans from it alone, and re-publishes its
  forecast artifact if the crash landed between checkpoint seal and
  artifact seal — so a kill at *any* point resumes to bit-identical
  artifacts.

Every successful window is durably checkpointed first
(:meth:`~repro.core.smc.SequentialCalibrator.persist_window`), then its
posterior forecast is published atomically through
:class:`~repro.service.artifacts.ArtifactStore`.  The checkpoint store is
the source of truth; artifacts are a deterministic function of it.

Time discipline: the supervisor measures durations with an injectable
*monotonic* clock and never reads wall-clock time, so the service layer
stays inside the repo's determinism lint without allowlisting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..core.smc import SequentialCalibrator, WindowResult
from ..core.window import TimeWindow
from ..data.sources import ObservationSet
from ..hpc.checkpoint_io import CheckpointStore
from ..hpc.faults import RetryPolicy
from ..inference.forecast import forecast_from_posterior
from .artifacts import ArtifactRead, ArtifactStore
from .ingest import ObservationBuffer

__all__ = ["CalibrationService", "ServiceConfig", "ServiceEvent",
           "EVENT_KINDS"]

#: Event kinds emitted by the supervisor, in rough lifecycle order.
EVENT_KINDS = ("resumed", "republished", "window_restart", "window_failed",
               "deadline_missed", "window_complete", "published", "pruned")


@dataclass(frozen=True)
class ServiceConfig:
    """Supervision and publication knobs for the calibration service.

    ``restart`` carries the whole supervision budget in
    :class:`~repro.hpc.faults.RetryPolicy` terms: ``max_attempts`` bounds
    window restarts, ``backoff_for`` spaces them deterministically, and
    ``timeout_seconds`` doubles as the per-window deadline (a soft one —
    see :class:`CalibrationService`).  The forecast fields pin everything
    that keys the published artifact bytes, so two services with equal
    configs publish byte-identical artifacts from equal posteriors.
    """

    restart: RetryPolicy = field(default_factory=RetryPolicy)
    horizon_days: int = 14
    forecast_seed: int = 0
    forecast_channels: tuple[str, ...] = ("cases",)
    quantiles: tuple[float, ...] = (0.05, 0.25, 0.5, 0.75, 0.95)
    n_per_particle: int = 1
    keep_last: int | None = None

    def __post_init__(self) -> None:
        if self.horizon_days < 1:
            raise ValueError("horizon_days must be >= 1")
        if self.n_per_particle < 1:
            raise ValueError("n_per_particle must be >= 1")
        if not self.forecast_channels:
            raise ValueError("at least one forecast channel is required")
        if not self.quantiles:
            raise ValueError("at least one forecast quantile is required")
        if self.keep_last is not None and self.keep_last < 1:
            raise ValueError("keep_last must be >= 1 when set")


@dataclass(frozen=True)
class ServiceEvent:
    """One supervision-loop occurrence, for logs and tests.

    ``kind`` is one of :data:`EVENT_KINDS`; ``window_index`` is the window
    it concerns; ``detail`` is a human-readable specifics line.
    """

    kind: str
    window_index: int
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}; "
                             f"expected one of {EVENT_KINDS}")

    def render(self) -> str:
        return f"[{self.kind}] window {self.window_index}: {self.detail}"


def _jsonify(value: Any) -> Any:
    """Recursively coerce numpy scalars/arrays into JSON-native types."""
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


class CalibrationService:
    """Supervised streaming driver around a sequential calibrator.

    The service owns no threads and performs no blocking waits of its own
    beyond the restart backoff: callers (the CLI daemon, tests) poll
    :meth:`tick` whenever new observations may have arrived.  ``clock``
    must be a monotonic duration source (default
    :func:`time.monotonic`) and ``sleep`` the matching wait primitive —
    both injectable so chaos tests control time deterministically.

    The degradation contract: a failing or slow window never breaks
    reads.  :meth:`read_forecast` keeps returning the newest sealed
    artifact, tagged with how many windows behind the ingest head it is
    and the wall-clock age of its seal.
    """

    def __init__(self, calibrator: SequentialCalibrator,
                 checkpoints: CheckpointStore,
                 artifacts: ArtifactStore,
                 config: ServiceConfig | None = None, *,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 progress: Callable[[str], None] | None = None) -> None:
        self.calibrator = calibrator
        self.checkpoints = checkpoints
        self.artifacts = artifacts
        self.config = config or ServiceConfig()
        self._clock = clock
        self._sleep = sleep
        self._progress = progress or (lambda _msg: None)
        self._windows: list[TimeWindow] = list(calibrator.schedule)
        self._next_index = 0
        self._posterior = None
        self._planned = calibrator.config.continuation_ensemble_size
        self._planned_resample = calibrator.config.resample_size
        #: Window whose restart budget ran dry; the service holds position
        #: until a process restart grants a fresh budget.
        self.failed_window: int | None = None
        #: Every event emitted since construction, oldest first.
        self.events: list[ServiceEvent] = []
        # Bind the store to this run's fingerprint immediately: a service
        # pointed at another run's checkpoints must fail at startup, not
        # at first persist.
        checkpoints.validate_run_meta(calibrator.run_fingerprint())

    # ------------------------------------------------------------------ #
    # Position
    # ------------------------------------------------------------------ #
    @property
    def next_window_index(self) -> int:
        """Index of the first window not yet calibrated."""
        return self._next_index

    @property
    def head(self) -> int | None:
        """Index of the newest calibrated window, or ``None`` if none."""
        return self._next_index - 1 if self._next_index > 0 else None

    @property
    def done(self) -> bool:
        """True once every scheduled window is calibrated."""
        return self._next_index >= len(self._windows)

    def pending_window(self) -> tuple[int, TimeWindow] | None:
        """The next uncalibrated window ``(index, window)``, if any."""
        if self.done:
            return None
        return self._next_index, self._windows[self._next_index]

    def ready(self, buffer: ObservationBuffer) -> bool:
        """Whether the next window's observations are fully ingested."""
        pending = self.pending_window()
        if pending is None or self.failed_window is not None:
            return False
        _, window = pending
        return buffer.covered(window.start_day, window.end_day)

    def expected_head(self, buffer: ObservationBuffer | None = None) -> int:
        """The window index the service *should* have reached by now.

        The calibrated head, extended over any further windows whose data
        is already fully ingested — the yardstick
        :meth:`read_forecast` measures staleness against.  ``-1`` when
        nothing is calibrated and nothing is ready.
        """
        expected = self._next_index - 1
        if buffer is not None:
            for index in range(self._next_index, len(self._windows)):
                window = self._windows[index]
                if not buffer.covered(window.start_day, window.end_day):
                    break
                expected = index
        return expected

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #
    def resume(self) -> ServiceEvent | None:
        """Restore position from the newest sealed checkpoint window.

        Re-derives the next window's size-policy plans from the restored
        window alone (the plans are Markovian — see
        :meth:`~repro.core.smc.SequentialCalibrator.planned_sizes_after`),
        then heals the artifact store: if the crash landed after the
        checkpoint seal but before the artifact seal, the missing (or
        torn) artifact is rebuilt from the restored posterior — a pure
        function of it, so the re-published bytes match what the
        uninterrupted run would have written.  Returns the ``resumed``
        event, or ``None`` for a fresh store.
        """
        result = self.calibrator.restore_latest_window(self.checkpoints)
        if result is None:
            return None
        self._accept(result)
        event = self._record(ServiceEvent(
            "resumed", result.index,
            f"restored window {result.index} "
            f"({len(result.posterior)} particles) from {self.checkpoints.root}"))
        if not self.artifacts.validate(result.index):
            path = self.artifacts.publish(result.index,
                                          self._forecast_payload(result))
            self._record(ServiceEvent(
                "republished", result.index,
                f"rebuilt missing/torn artifact at {path}"))
        return event

    # ------------------------------------------------------------------ #
    # The supervision loop
    # ------------------------------------------------------------------ #
    def tick(self, buffer: ObservationBuffer) -> list[ServiceEvent]:
        """Advance through every window the buffer can currently feed.

        Returns the events emitted this tick.  Stops early when a window
        exhausts its restart budget (sticky — see ``failed_window``) or
        when the next window's data has not fully arrived.
        """
        events: list[ServiceEvent] = []
        while self.failed_window is None:
            pending = self.pending_window()
            if pending is None:
                break
            index, window = pending
            if not buffer.covered(window.start_day, window.end_day):
                break
            observations = buffer.observation_set(window.start_day,
                                                  window.end_day)
            events.extend(self._run_window(index, window, observations))
            if self.failed_window is None:
                # The window sealed; its days may no longer be revised.
                buffer.advance_frontier(window.end_day)
        return events

    def _run_window(self, index: int, window: TimeWindow,
                    observations: ObservationSet) -> list[ServiceEvent]:
        policy = self.config.restart
        events: list[ServiceEvent] = []
        for attempt in range(1, policy.max_attempts + 1):
            wait = policy.backoff_for(attempt)
            if wait > 0:
                self._sleep(wait)
            started = self._clock()
            try:
                result = self.calibrator.step_window(
                    index, window, observations, self._posterior,
                    n_proposals=self._planned,
                    resample_size=self._planned_resample)
            except Exception as exc:  # noqa: BLE001 — supervision boundary
                detail = (f"attempt {attempt}/{policy.max_attempts} raised "
                          f"{type(exc).__name__}: {exc}")
                if attempt < policy.max_attempts:
                    events.append(self._record(ServiceEvent(
                        "window_restart", index,
                        f"{detail}; backing off "
                        f"{policy.backoff_for(attempt + 1):.2f}s and retrying")))
                    continue
                self.failed_window = index
                events.append(self._record(ServiceEvent(
                    "window_failed", index,
                    f"{detail}; restart budget exhausted — holding position, "
                    "reads serve the last sealed artifact")))
                return events
            elapsed = self._clock() - started
            deadline = policy.timeout_seconds
            if deadline is not None and elapsed > deadline:
                events.append(self._record(ServiceEvent(
                    "deadline_missed", index,
                    f"window took {elapsed:.2f}s against a {deadline:.2f}s "
                    "deadline; result kept, service is falling behind")))
            events.extend(self._seal(result))
            return events
        raise AssertionError("unreachable: retry loop neither returned "
                             "nor exhausted")

    def _seal(self, result: WindowResult) -> list[ServiceEvent]:
        """Persist, publish, prune, and advance past one window result.

        Order matters for crash safety: the checkpoint seal lands before
        the artifact seal, and :meth:`resume` heals the gap between them,
        so there is no kill point that loses or forks state.
        """
        events: list[ServiceEvent] = []
        self.calibrator.persist_window(self.checkpoints, result)
        path = self.artifacts.publish(result.index,
                                      self._forecast_payload(result))
        diag = result.diagnostics
        detail = f"ESS {diag.ess:.1f}/{diag.n_particles}"
        if diag.shard_failures:
            detail += f"; recovered {diag.shard_failures} shard failure(s)"
        events.append(self._record(ServiceEvent(
            "window_complete", result.index, detail)))
        events.append(self._record(ServiceEvent(
            "published", result.index, str(path))))
        if self.config.keep_last is not None:
            doomed_cp = self.checkpoints.prune(self.config.keep_last)
            doomed_art = self.artifacts.prune(self.config.keep_last)
            if doomed_cp or doomed_art:
                events.append(self._record(ServiceEvent(
                    "pruned", result.index,
                    f"dropped checkpoint windows {doomed_cp} and artifact "
                    f"windows {doomed_art} (keep_last="
                    f"{self.config.keep_last})")))
        self._accept(result)
        return events

    def _accept(self, result: WindowResult) -> None:
        """Adopt ``result`` as the calibration head and re-plan sizes."""
        self._posterior = result.posterior
        self._next_index = result.index + 1
        if self._next_index < len(self._windows):
            self._planned, self._planned_resample = \
                self.calibrator.planned_sizes_after(
                    result,
                    next_window_days=self._windows[self._next_index].n_days)

    # ------------------------------------------------------------------ #
    # Publication and reads
    # ------------------------------------------------------------------ #
    def _forecast_payload(self, result: WindowResult) -> dict:
        """Build the servable forecast artifact for one window.

        Deterministic by construction: the forecast seeds derive from
        ``(forecast_seed, particle seeds)`` on the registered forecast
        stream, the shard layout is pinned to the calibrator's, and every
        value is JSON-native — so the canonical artifact bytes are a pure
        function of the posterior and the service config.  No timestamps
        ride in the payload; staleness is computed at read time from the
        seal file instead.
        """
        cfg = self.config
        cal = self.calibrator
        forecast = forecast_from_posterior(
            result.posterior, cfg.horizon_days,
            executor=cal.executor, base_seed=cfg.forecast_seed,
            n_per_particle=cfg.n_per_particle,
            shard_size=cal.config.shard_size, n_shards=cal.config.n_shards)
        channels: dict[str, dict] = {}
        for channel in cfg.forecast_channels:
            ribbon = forecast.ribbon(channel, cfg.quantiles)
            channels[channel] = {
                "start_day": int(ribbon.start_day),
                "quantiles": {f"{q:g}": [float(v) for v in ribbon.band(q)]
                              for q in cfg.quantiles},
            }
        return {
            "format_version": 1,
            "window_index": int(result.index),
            "window_label": result.window.label(),
            "posterior_size": len(result.posterior),
            "base_seed": int(cal.config.base_seed),
            "forecast_seed": int(cfg.forecast_seed),
            "forecast_start_day": int(forecast.start_day),
            "horizon_days": int(cfg.horizon_days),
            "n_trajectories": len(forecast),
            "channels": channels,
            "diagnostics": _jsonify(result.diagnostics.to_dict()),
            "posterior_summary": _jsonify(result.summary()),
        }

    def read_forecast(self, buffer: ObservationBuffer | None = None
                      ) -> ArtifactRead | None:
        """Serve the freshest valid forecast, degraded if necessary.

        Never raises on service trouble: behind, failed, or mid-publish,
        the newest sealed artifact is returned tagged stale-with-age
        (measured against :meth:`expected_head`).  ``None`` only before
        the first window ever seals.
        """
        expected = self.expected_head(buffer)
        return self.artifacts.read_latest(
            expected_window=expected if expected >= 0 else None)

    def _record(self, event: ServiceEvent) -> ServiceEvent:
        self.events.append(event)
        self._progress(event.render())
        return event
