"""Trajectory cache keyed by (parameters, seed, day range).

Because ``(theta, s) -> trajectory`` is a pure mapping (the framework's core
invariant), simulations are memoisable.  The cache pays off in the baselines
— MCMC revisits parameter values, and grid posteriors evaluate a fixed lattice
— and in interactive exploration; the SMC driver itself rarely repeats an
exact key.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..seir.outputs import Trajectory
from ..seir.parameters import DiseaseParameters

__all__ = ["TrajectoryCache", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss counters (mutable by design)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


def _params_key(params: DiseaseParameters, precision: int) -> tuple:
    return tuple(
        round(v, precision) if isinstance(v, float) else v
        for _, v in sorted(params.to_dict().items())
    )


class TrajectoryCache:
    """Bounded LRU cache of simulated trajectories.

    Parameters
    ----------
    max_entries:
        Eviction threshold (least-recently-used first).
    param_precision:
        Floats in the parameter key are rounded to this many decimals;
        draws closer than the rounding grid are treated as identical, which
        is deliberate for continuous parameters revisited by MCMC proposals.
    """

    def __init__(self, max_entries: int = 4096, param_precision: int = 10) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._max = int(max_entries)
        self._precision = int(param_precision)
        self._store: OrderedDict[tuple, Trajectory] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def _key(self, params: DiseaseParameters, seed: int,
             start_day: int, end_day: int) -> tuple:
        return (_params_key(params, self._precision), int(seed),
                int(start_day), int(end_day))

    def get(self, params: DiseaseParameters, seed: int,
            start_day: int, end_day: int) -> Trajectory | None:
        """Look up a trajectory; None on miss (stats updated)."""
        key = self._key(params, seed, start_day, end_day)
        hit = self._store.get(key)
        if hit is None:
            self.stats.misses += 1
            return None
        self._store.move_to_end(key)
        self.stats.hits += 1
        return hit

    def put(self, params: DiseaseParameters, seed: int,
            start_day: int, end_day: int, trajectory: Trajectory) -> None:
        """Insert (or refresh) a trajectory, evicting LRU entries as needed."""
        key = self._key(params, seed, start_day, end_day)
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = trajectory
        while len(self._store) > self._max:
            self._store.popitem(last=False)
            self.stats.evictions += 1

    def get_or_simulate(self, params: DiseaseParameters, seed: int,
                        end_day: int, *, engine: str = "binomial_leap",
                        **engine_options) -> Trajectory:
        """Cached simulation from day 0 (the baselines' access pattern)."""
        cached = self.get(params, seed, 0, end_day)
        if cached is not None:
            return cached
        from ..seir.model import StochasticSEIRModel  # local: avoid cycle
        model = StochasticSEIRModel(params, seed, engine=engine, **engine_options)
        trajectory = model.run_until(end_day)
        self.put(params, seed, 0, end_day, trajectory)
        return trajectory

    def clear(self) -> None:
        self._store.clear()
