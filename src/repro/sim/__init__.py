"""Simulation orchestration: ground truth, ensemble sweeps, caching."""

from .cache import CacheStats, TrajectoryCache
from .ensemble import EnsembleResult, EnsembleSpec, common_seed_grid, run_ensemble
from .groundtruth import GroundTruth, make_fig2_ground_truth, make_ground_truth

__all__ = [
    "GroundTruth", "make_ground_truth", "make_fig2_ground_truth",
    "EnsembleSpec", "EnsembleResult", "run_ensemble", "common_seed_grid",
    "TrajectoryCache", "CacheStats",
]
