"""Ensemble sweeps: many simulations over a parameter/seed grid.

Used by the baselines (single-shot importance sampling, ABC, MCMC burn-in
pools) and the scaling benches.  The SMC driver has its own task plumbing in
:mod:`repro.core.smc`; this module provides the general-purpose version with
the same picklability discipline (module-level task function over a declared
dataclass payload — the shape the executor-hygiene lint enforces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..hpc.executor import Executor, SerialExecutor
from ..seir.model import StochasticSEIRModel
from ..seir.outputs import Trajectory
from ..seir.parameters import DiseaseParameters

__all__ = ["EnsembleSpec", "EnsembleResult", "run_ensemble"]


@dataclass(frozen=True)
class EnsembleSpec:
    """Declarative description of an ensemble sweep.

    Attributes
    ----------
    base_params:
        Shared disease parameterisation.
    param_updates:
        Per-member field updates; one dict per parameter draw.
    seeds:
        Seeds replicated across every parameter draw (common random numbers).
    start_day / end_day:
        Simulated day range (from scratch at ``start_day = 0``).
    engine / engine_options:
        Simulation engine selection.
    """

    base_params: DiseaseParameters
    param_updates: tuple[dict, ...]
    seeds: tuple[int, ...]
    end_day: int
    engine: str = "binomial_leap"
    engine_options: Mapping[str, object] | None = None

    def __post_init__(self) -> None:
        if not self.param_updates:
            raise ValueError("need at least one parameter draw")
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.end_day < 1:
            raise ValueError("end_day must be >= 1")

    @property
    def n_members(self) -> int:
        return len(self.param_updates) * len(self.seeds)


@dataclass(frozen=True)
class EnsembleResult:
    """Sweep outputs, indexable by (draw, replicate)."""

    spec: EnsembleSpec
    trajectories: tuple[Trajectory, ...]

    def trajectory(self, draw_index: int, seed_index: int) -> Trajectory:
        n_seeds = len(self.spec.seeds)
        return self.trajectories[draw_index * n_seeds + seed_index]

    def channel_matrix(self, channel: str) -> np.ndarray:
        """Stack one channel: shape (n_draws, n_seeds, n_days)."""
        n_draws = len(self.spec.param_updates)
        n_seeds = len(self.spec.seeds)
        n_days = len(self.trajectories[0])
        out = np.empty((n_draws, n_seeds, n_days))
        for i in range(n_draws):
            for r in range(n_seeds):
                out[i, r] = self.trajectory(i, r).series(channel).values
        return out


@dataclass(frozen=True)
class _MemberTask:
    """One sweep member's executor payload (picklable, schema declared)."""

    params_payload: dict
    seed: int
    end_day: int
    engine: str
    engine_options: dict


def _run_member_task(task: _MemberTask) -> Trajectory:
    params = DiseaseParameters.from_dict(task.params_payload)
    model = StochasticSEIRModel(params, task.seed, engine=task.engine,
                                **task.engine_options)
    return model.run_until(task.end_day)


def run_ensemble(spec: EnsembleSpec,
                 executor: Executor | None = None) -> EnsembleResult:
    """Execute the sweep; trajectories ordered draw-major, then seed."""
    executor = executor or SerialExecutor()
    options = dict(spec.engine_options or {})
    tasks = []
    for updates in spec.param_updates:
        payload = spec.base_params.with_updates(**updates).to_dict()
        for seed in spec.seeds:
            tasks.append(_MemberTask(params_payload=payload, seed=int(seed),
                                     end_day=spec.end_day, engine=spec.engine,
                                     engine_options=options))
    trajectories = executor.map(_run_member_task, tasks)
    return EnsembleResult(spec=spec, trajectories=tuple(trajectories))


def common_seed_grid(param_updates: Sequence[dict], seeds: Sequence[int],
                     base_params: DiseaseParameters, end_day: int,
                     engine: str = "binomial_leap",
                     **engine_options) -> EnsembleSpec:
    """Convenience constructor mirroring the paper's draws x common-seeds grid."""
    return EnsembleSpec(base_params=base_params,
                        param_updates=tuple(dict(u) for u in param_updates),
                        seeds=tuple(int(s) for s in seeds),
                        end_day=end_day, engine=engine,
                        engine_options=engine_options or None)
