"""Synthetic ground-truth generation (paper section V-A, Figure 2).

The paper's "empirical" data are produced by its own simulator: one
trajectory run with a piecewise-constant transmission-rate schedule is taken
as the true epidemic; reported cases are obtained by binomially thinning the
true daily infections with a piecewise-constant reporting probability; death
counts are observed without bias.

:func:`make_ground_truth` reproduces that construction for any schedule;
:func:`make_fig2_ground_truth` pins the exact schedules of the paper
(theta = 0.30/0.27/0.25/0.40 and rho = 0.60/0.70/0.85/0.80 with horizons at
days 34, 48, 62).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.schedule import (FIG2_RHO_SCHEDULE, FIG2_THETA_SCHEDULE,
                             PiecewiseConstant)
from ..data.series import TimeSeries
from ..data.sources import CASES, DEATHS, ObservationSet, ObservationSource
from ..data.synthetic import binomial_thin
from ..seir.model import StochasticSEIRModel
from ..seir.outputs import Trajectory
from ..seir.parameters import DiseaseParameters, chicago_defaults
from ..seir.seeding import SeedSequenceBank, register_ancillary_purpose

__all__ = ["GroundTruth", "make_ground_truth", "make_fig2_ground_truth"]

_DEFAULT_SEED = 777

# Observation thinning draws from its own registered ancillary purpose so the
# truth trajectory is identical whether or not observations are generated
# (value pinned by regression test; 10 leaves 4..9 free for calibrator-side
# consumers, which allocate upward from 0).
_PURPOSE_TRUTH_THIN = register_ancillary_purpose(
    "groundtruth_thinning", 10, description="truth-observation binomial thinning")


@dataclass(frozen=True)
class GroundTruth:
    """A simulated epidemic with known parameters and biased observations.

    Attributes
    ----------
    params:
        Disease parameters used for the truth run.
    theta_schedule / rho_schedule:
        The known time-varying truth the calibration tries to recover.
    trajectory:
        The full true trajectory (infections, deaths, censuses).
    observed_cases:
        Binomially thinned daily infections — the reported-case stream.
    seed:
        Seed of the truth trajectory.
    """

    params: DiseaseParameters
    theta_schedule: PiecewiseConstant
    rho_schedule: PiecewiseConstant
    trajectory: Trajectory
    observed_cases: TimeSeries
    seed: int

    @property
    def true_cases(self) -> TimeSeries:
        """The unobservable true daily infections."""
        return self.trajectory.series(CASES)

    @property
    def deaths(self) -> TimeSeries:
        return self.trajectory.series(DEATHS)

    def theta_true(self, day: int) -> float:
        return float(self.theta_schedule(day))

    def rho_true(self, day: int) -> float:
        return float(self.rho_schedule(day))

    def observations(self, include_deaths: bool = False) -> ObservationSet:
        """The data streams handed to the calibrator.

        Cases only for the Fig 3/4 experiments; add unbiased deaths for
        Fig 5.
        """
        sources = [ObservationSource(CASES, self.observed_cases,
                                     channel=CASES, biased=True)]
        if include_deaths:
            sources.append(ObservationSource(DEATHS, self.deaths,
                                             channel=DEATHS, biased=False))
        return ObservationSet.of(*sources)

    def truth_point(self, day: int) -> dict[str, float]:
        """The (theta, rho) truth square plotted in Figs 4b/5b."""
        return {"theta": self.theta_true(day), "rho": self.rho_true(day)}


def make_ground_truth(params: DiseaseParameters | None = None,
                      horizon: int = 100,
                      seed: int = _DEFAULT_SEED,
                      theta_schedule: PiecewiseConstant = FIG2_THETA_SCHEDULE,
                      rho_schedule: PiecewiseConstant = FIG2_RHO_SCHEDULE,
                      engine: str = "binomial_leap",
                      **engine_options) -> GroundTruth:
    """Simulate a truth epidemic and its biased observation stream."""
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    base = params if params is not None else chicago_defaults()
    model = StochasticSEIRModel(base, seed, engine=engine,
                                theta_schedule=theta_schedule, **engine_options)
    trajectory = model.run_until(horizon)
    # Thinning uses a stream independent of the simulation stream so the
    # truth trajectory is identical whether or not observations are drawn.
    rng_thin = SeedSequenceBank(seed).ancillary_generator(
        purpose=_PURPOSE_TRUTH_THIN)
    observed = binomial_thin(trajectory.series(CASES), rho_schedule, rng_thin)
    return GroundTruth(params=base, theta_schedule=theta_schedule,
                       rho_schedule=rho_schedule, trajectory=trajectory,
                       observed_cases=observed, seed=seed)


def make_fig2_ground_truth(seed: int = _DEFAULT_SEED, horizon: int = 100,
                           params: DiseaseParameters | None = None,
                           ) -> GroundTruth:
    """The exact Figure 2 construction (paper schedules, 100-day horizon)."""
    return make_ground_truth(params=params, horizon=horizon, seed=seed,
                             theta_schedule=FIG2_THETA_SCHEDULE,
                             rho_schedule=FIG2_RHO_SCHEDULE)
