"""Adaptive ensemble-size control (the ROADMAP's "adaptive sizing" item).

The paper's section VI warns that SIS weights can "concentrate on just a few
draws".  The repo already ships the within-window counter-measures
(:mod:`repro.core.adaptive`: tempering, adaptive jitter, conditional
resampling), but the ensemble size itself was a fixed ``n_parameter_draws``
per run.  With window simulation batched and sharded (18x cheaper than the
per-particle path), re-sizing the cloud *between* windows becomes affordable,
as in the SMC\\ :sup:`2` line of work: grow the cloud when the effective
sample size collapses, shrink it once the posterior has converged, and spend
the saved particle-steps where the data are actually informative.

:class:`EnsembleSizePolicy` is the protocol the calibrator consults after
weighting each window; the decision applies to the *next* window's proposal
count, flowing through the existing proposal machinery (cycled resampled
parents, jitter, per-draw restart seeds) and the per-window shard layout
(:func:`repro.hpc.sharding.resolve_shard_layout` recomputes bounds from
whatever size arrives).  Concrete policies:

* :class:`FixedSize` — the status quo: every continuation window uses the
  configured ``resample_size * n_continuations`` cloud.
* :class:`ESSTargetPolicy` — multiplicative control with hysteresis: grow
  by ``growth_factor`` when the window's post-weighting ESS fraction falls
  below ``target_low``, shrink by ``shrink_factor`` when it rises above
  ``target_high``, hold inside the band; always clamped to
  ``[n_min, n_max]``.
* :class:`BudgetPolicy` — caps any (optionally wrapped) policy at a
  per-window particle-step budget, trading cloud size against window
  length.

All policies are deterministic pure functions of the window diagnostics, so
adaptive runs stay bit-reproducible for a fixed ``(base_seed, policy, shard
layout)`` — the reproducibility contract of :mod:`repro.hpc.sharding` is
unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Protocol, runtime_checkable

from .diagnostics import WindowDiagnostics

__all__ = ["EnsembleSizePolicy", "FixedSize", "ESSTargetPolicy",
           "BudgetPolicy", "SIZE_POLICY_NAMES", "make_size_policy",
           "resolve_size_policy"]


@runtime_checkable
class EnsembleSizePolicy(Protocol):
    """Decides the next window's proposal-cloud size.

    Called once per calibrated window (after weighting, before the next
    window's proposals are drawn).  Implementations must be deterministic:
    the same arguments must always produce the same size, or runs stop
    being bit-reproducible.
    """

    def next_size(self, *, window_index: int, current_size: int,
                  diagnostics: WindowDiagnostics,
                  next_window_days: int) -> int:
        """Size decision for the cloud after ``window_index``.

        Parameters
        ----------
        window_index:
            Index of the window just weighted.
        current_size:
            The **realised** size of the cloud this decision scales from.
            In the calibrator's proposal-size role this is the
            just-weighted cloud (``== diagnostics.n_particles`` — for
            window 0 the ``n_parameter_draws * n_replicates`` prior cloud,
            *not* the planned continuation size, so a grow decision after
            a degenerate first window multiplies the base the ESS fraction
            was actually measured on); in the resample-size role it is the
            previous window's realised posterior size (initially
            ``SMCConfig.resample_size``).  A multiplicative policy should
            scale ``current_size``; a pass-through "keep the classic size"
            policy must pin an explicit size instead (the calibrator pins
            the default ``FixedSize()`` to ``continuation_ensemble_size``
            for the proposal role).
        diagnostics:
            The just-weighted window's degeneracy diagnostics (ESS fraction,
            cloud size, particle-steps).
        next_window_days:
            Length in days of the window the decision applies to (for the
            resample-size role: the just-weighted window itself, whose
            posterior is being sized).
        """
        ...


def _clamp(size: float, n_min: int, n_max: int) -> int:
    return int(min(max(int(math.ceil(size)), n_min), n_max))


@dataclass(frozen=True)
class FixedSize:
    """The non-adaptive baseline: keep the current (realised) size.

    ``size=None`` (the default) passes ``current_size`` through.  The
    calibrator pins the default instance to its classic fixed size for each
    role (``resample_size * n_continuations`` for proposals,
    ``resample_size`` for the posterior), so a ``"fixed"`` run stays
    bit-identical to one with no policy at all.  An explicit ``size`` pins
    every decision to that count.
    """

    size: int | None = None

    def __post_init__(self) -> None:
        if self.size is not None and self.size < 1:
            raise ValueError("size must be >= 1")

    def next_size(self, *, window_index: int, current_size: int,
                  diagnostics: WindowDiagnostics,
                  next_window_days: int) -> int:
        return int(self.size if self.size is not None else current_size)


@dataclass(frozen=True)
class ESSTargetPolicy:
    """Multiplicative ESS-fraction controller with a hysteresis band.

    After each window, the post-weighting ESS fraction ``f`` is compared to
    the band ``[target_low, target_high]``:

    * ``f < target_low`` — weights are concentrating: the next cloud grows
      by ``growth_factor``;
    * ``f > target_high`` — the posterior is comfortable: the next cloud
      shrinks by ``shrink_factor``, banking the saved particle-steps;
    * inside the band — hold (the hysteresis that prevents the size from
      oscillating between two adjacent windows).

    The output is always clamped to ``[n_min, n_max]``, and the response is
    monotone in ESS: a lower fraction never yields a smaller next cloud.
    """

    target_low: float = 0.1
    target_high: float = 0.5
    growth_factor: float = 2.0
    shrink_factor: float = 0.5
    n_min: int = 50
    n_max: int = 100_000

    def __post_init__(self) -> None:
        if not 0 < self.target_low < self.target_high <= 1:
            raise ValueError("need 0 < target_low < target_high <= 1")
        if self.growth_factor < 1:
            raise ValueError("growth_factor must be >= 1")
        if not 0 < self.shrink_factor <= 1:
            raise ValueError("shrink_factor must be in (0, 1]")
        if not 1 <= self.n_min <= self.n_max:
            raise ValueError("need 1 <= n_min <= n_max")

    def next_size(self, *, window_index: int, current_size: int,
                  diagnostics: WindowDiagnostics,
                  next_window_days: int) -> int:
        fraction = diagnostics.ess_fraction
        if fraction < self.target_low:
            proposed = current_size * self.growth_factor
        elif fraction > self.target_high:
            proposed = current_size * self.shrink_factor
        else:
            proposed = float(current_size)
        return _clamp(proposed, self.n_min, self.n_max)


@dataclass(frozen=True)
class BudgetPolicy:
    """Cap a policy's output at a per-window particle-step budget.

    ``step_budget`` is measured in particle-days: a window of ``d`` days can
    afford at most ``step_budget // d`` particles.  ``base`` is the policy
    whose decisions are being capped (default: :class:`FixedSize`, i.e. the
    budget alone drives the size).  ``n_max`` (optional) is an absolute
    ceiling on top of the budget; the floor ``n_min`` wins over both so a
    long window can never starve the cloud below a usable size.
    """

    step_budget: int
    base: EnsembleSizePolicy | None = None
    n_min: int = 50
    n_max: int | None = None

    def __post_init__(self) -> None:
        if self.step_budget < 1:
            raise ValueError("step_budget must be >= 1")
        if self.n_min < 1:
            raise ValueError("n_min must be >= 1")
        if self.n_max is not None and self.n_max < self.n_min:
            raise ValueError("need n_min <= n_max")

    def next_size(self, *, window_index: int, current_size: int,
                  diagnostics: WindowDiagnostics,
                  next_window_days: int) -> int:
        base = self.base if self.base is not None else FixedSize()
        proposed = base.next_size(window_index=window_index,
                                  current_size=current_size,
                                  diagnostics=diagnostics,
                                  next_window_days=next_window_days)
        if next_window_days < 1:
            raise ValueError("next_window_days must be >= 1")
        affordable = self.step_budget // next_window_days
        if self.n_max is not None:
            affordable = min(affordable, self.n_max)
        return max(self.n_min, min(int(proposed), affordable))


#: Declarative policy names accepted by configs and the CLI.
SIZE_POLICY_NAMES = ("fixed", "ess", "budget")


def make_size_policy(name: str, **options: Any) -> EnsembleSizePolicy:
    """Build a policy from its declarative name and keyword options.

    ``"budget"`` accepts a nested ``base`` spec — either a policy instance
    or a dict like ``{"name": "ess", "target_high": 0.4}`` — so budget caps
    compose with ESS control from pure-JSON configuration.
    """
    if name == "fixed":
        return FixedSize(**options)
    if name == "ess":
        return ESSTargetPolicy(**options)
    if name == "budget":
        base = options.pop("base", None)
        if isinstance(base, Mapping):
            base = make_size_policy(**dict(base))
        return BudgetPolicy(base=base, **options)
    raise ValueError(f"unknown size policy {name!r}; "
                     f"available: {SIZE_POLICY_NAMES}")


def resolve_size_policy(policy: "str | EnsembleSizePolicy",
                        options: Mapping | None = None) -> EnsembleSizePolicy:
    """Turn a config's policy knob (name or instance) into a policy object.

    A string goes through :func:`make_size_policy` with ``options``; an
    object is validated against the protocol and returned as-is (``options``
    must then be empty — they would be silently ignored otherwise).
    """
    opts = dict(options or {})
    if isinstance(policy, str):
        return make_size_policy(policy, **opts)
    if opts:
        raise ValueError("size_policy_options only apply to a named policy, "
                         "not a policy instance")
    if not isinstance(policy, EnsembleSizePolicy):
        raise ValueError(f"{policy!r} does not implement EnsembleSizePolicy "
                         "(needs a next_size method)")
    return policy
