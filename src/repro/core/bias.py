"""The binomial reporting-bias model (paper section IV-A, eq. 2).

Observed counts are modelled as a binomial thinning of the true simulated
counts:

    eta_obs_t ~ Binomial(eta_t(theta, s), rho),    0 < rho < 1

so a particle's *simulated observed* series depends on ``(theta, s, rho)``.
The module offers two evaluation modes:

``sample``
    Draw the binomial (the paper's construction; keeps the likelihood a
    proper stochastic function of rho and makes the weight an unbiased
    pseudo-marginal estimate).
``mean``
    Use the conditional expectation ``rho * eta_t`` (deterministic; cheaper
    and lower-variance, at the cost of ignoring thinning noise).

Exact binomial log-pmf evaluation is also provided for likelihood ablations
that skip the Gaussian approximation altogether.

Ensemble draw-order contract (``sample`` mode)
----------------------------------------------
Batched thinning via :meth:`BinomialBiasModel.apply_batch` issues **one**
``rng.binomial`` call over the full ``(n_particles, n_days)`` count matrix.
NumPy fills broadcast variate arrays in C order, so the generator stream is
consumed *particle-major, day-minor*: all of particle 0's days, then all of
particle 1's days, and so on.  When an observation model carries several
biased sources, the batched path thins them *source-major* in observation-set
order (every particle for source A, then every particle for source B).  This
is the canonical order: a fixed ``base_seed`` makes batched runs
bit-reproducible against each other.  The scalar reference path interleaves
draws per particle across sources instead, so in ``sample`` mode its thinned
counts are equal in distribution — but not bit-identical — to the batched
path; in ``mean`` mode the two paths agree exactly.  With a *single* biased
source (the paper's cases-only bias) the two orders coincide, so batched and
scalar weighting agree bit-for-bit in both modes — provided each particle's
thinned series exactly spans the observed window.  The calibrator guarantees
this by cutting segments to the window; the scalar ``SourceModel.loglik``
thins a trajectory's *full* day range before windowing, so handing it a
wider trajectory consumes extra draws for the out-of-window days and shifts
the stream relative to the batched path.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..data.series import TimeSeries

__all__ = ["BinomialBiasModel"]


class BinomialBiasModel:
    """Binomial thinning bias with a scalar reporting probability.

    The paper assumes rho is constant "within a relatively shorter time
    window" (end of section IV-A); the sequential scheme re-estimates it per
    window, which is how the time variation is recovered.
    """

    def __init__(self, mode: str = "sample") -> None:
        if mode not in ("sample", "mean"):
            raise ValueError(f"mode must be 'sample' or 'mean', got {mode!r}")
        self.mode = mode

    # ------------------------------------------------------------------ #
    def apply(self, true_counts: np.ndarray, rho: float,
              rng: np.random.Generator | None = None) -> np.ndarray:
        """Map true counts to simulated observed counts.

        Parameters
        ----------
        true_counts:
            Non-negative counts (rounded to integers for sampling).
        rho:
            Reporting probability in (0, 1]; rho = 0 is rejected because a
            zero reporting rate makes every observation identically zero and
            the likelihood degenerate.
        rng:
            Required in ``sample`` mode.
        """
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"rho must be in (0, 1], got {rho}")
        counts = np.asarray(true_counts, dtype=np.float64)
        if np.any(counts < 0):
            raise ValueError("true counts must be non-negative")
        if self.mode == "mean":
            return rho * counts
        if rng is None:
            raise ValueError("sample mode requires an rng")
        n = np.rint(counts).astype(np.int64)
        return rng.binomial(n, rho).astype(np.float64)

    def apply_batch(self, true_counts: np.ndarray, rho: np.ndarray,
                    rng: np.random.Generator | None = None) -> np.ndarray:
        """Vectorised :meth:`apply` across a particle ensemble.

        One binomial call thins the whole ensemble; see the module docstring
        for the draw-order contract that makes this reproducible.

        Parameters
        ----------
        true_counts:
            ``(n_particles, n_days)`` matrix of non-negative counts.
        rho:
            Length ``n_particles`` vector of reporting probabilities in
            (0, 1], one per particle (broadcast across the day axis).
        rng:
            Required in ``sample`` mode.
        """
        counts = np.asarray(true_counts, dtype=np.float64)
        if counts.ndim != 2:
            raise ValueError(
                f"true_counts must be (n_particles, n_days), got shape {counts.shape}")
        rho_arr = np.asarray(rho, dtype=np.float64)
        if rho_arr.shape != (counts.shape[0],):
            raise ValueError(
                f"rho must have one entry per particle: expected shape "
                f"({counts.shape[0]},), got {rho_arr.shape}")
        if np.any((rho_arr <= 0.0) | (rho_arr > 1.0)):
            raise ValueError("every rho must be in (0, 1]")
        if np.any(counts < 0):
            raise ValueError("true counts must be non-negative")
        if self.mode == "mean":
            return rho_arr[:, None] * counts
        if rng is None:
            raise ValueError("sample mode requires an rng")
        n = np.rint(counts).astype(np.int64)
        return rng.binomial(n, rho_arr[:, None]).astype(np.float64)

    def apply_series(self, series: TimeSeries, rho: float,
                     rng: np.random.Generator | None = None) -> TimeSeries:
        """:meth:`apply` preserving the day axis."""
        return TimeSeries(series.start_day, self.apply(series.values, rho, rng),
                          name=f"observed_{series.name}" if series.name else "observed")

    # ------------------------------------------------------------------ #
    @staticmethod
    def log_pmf(observed: np.ndarray, true_counts: np.ndarray,
                rho: float) -> np.ndarray:
        """Exact elementwise ``log P(observed | true, rho)``.

        Used by the exact-binomial likelihood ablation; ``-inf`` where
        ``observed > true`` (an impossible thinning).
        """
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"rho must be in (0, 1], got {rho}")
        y = np.rint(np.asarray(observed, dtype=np.float64)).astype(np.int64)
        n = np.rint(np.asarray(true_counts, dtype=np.float64)).astype(np.int64)
        if y.shape != n.shape:
            raise ValueError("observed and true counts must share a shape")
        return np.asarray(stats.binom.logpmf(y, n, rho))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinomialBiasModel(mode={self.mode!r})"
