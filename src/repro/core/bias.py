"""The binomial reporting-bias model (paper section IV-A, eq. 2).

Observed counts are modelled as a binomial thinning of the true simulated
counts:

    eta_obs_t ~ Binomial(eta_t(theta, s), rho),    0 < rho < 1

so a particle's *simulated observed* series depends on ``(theta, s, rho)``.
The module offers two evaluation modes:

``sample``
    Draw the binomial (the paper's construction; keeps the likelihood a
    proper stochastic function of rho and makes the weight an unbiased
    pseudo-marginal estimate).
``mean``
    Use the conditional expectation ``rho * eta_t`` (deterministic; cheaper
    and lower-variance, at the cost of ignoring thinning noise).

Exact binomial log-pmf evaluation is also provided for likelihood ablations
that skip the Gaussian approximation altogether.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..data.series import TimeSeries

__all__ = ["BinomialBiasModel"]


class BinomialBiasModel:
    """Binomial thinning bias with a scalar reporting probability.

    The paper assumes rho is constant "within a relatively shorter time
    window" (end of section IV-A); the sequential scheme re-estimates it per
    window, which is how the time variation is recovered.
    """

    def __init__(self, mode: str = "sample") -> None:
        if mode not in ("sample", "mean"):
            raise ValueError(f"mode must be 'sample' or 'mean', got {mode!r}")
        self.mode = mode

    # ------------------------------------------------------------------ #
    def apply(self, true_counts: np.ndarray, rho: float,
              rng: np.random.Generator | None = None) -> np.ndarray:
        """Map true counts to simulated observed counts.

        Parameters
        ----------
        true_counts:
            Non-negative counts (rounded to integers for sampling).
        rho:
            Reporting probability in (0, 1]; rho = 0 is rejected because a
            zero reporting rate makes every observation identically zero and
            the likelihood degenerate.
        rng:
            Required in ``sample`` mode.
        """
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"rho must be in (0, 1], got {rho}")
        counts = np.asarray(true_counts, dtype=np.float64)
        if np.any(counts < 0):
            raise ValueError("true counts must be non-negative")
        if self.mode == "mean":
            return rho * counts
        if rng is None:
            raise ValueError("sample mode requires an rng")
        n = np.rint(counts).astype(np.int64)
        return rng.binomial(n, rho).astype(np.float64)

    def apply_series(self, series: TimeSeries, rho: float,
                     rng: np.random.Generator | None = None) -> TimeSeries:
        """:meth:`apply` preserving the day axis."""
        return TimeSeries(series.start_day, self.apply(series.values, rho, rng),
                          name=f"observed_{series.name}" if series.name else "observed")

    # ------------------------------------------------------------------ #
    @staticmethod
    def log_pmf(observed: np.ndarray, true_counts: np.ndarray,
                rho: float) -> np.ndarray:
        """Exact elementwise ``log P(observed | true, rho)``.

        Used by the exact-binomial likelihood ablation; ``-inf`` where
        ``observed > true`` (an impossible thinning).
        """
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"rho must be in (0, 1], got {rho}")
        y = np.rint(np.asarray(observed, dtype=np.float64)).astype(np.int64)
        n = np.rint(np.asarray(true_counts, dtype=np.float64)).astype(np.int64)
        if y.shape != n.shape:
            raise ValueError("observed and true counts must share a shape")
        return np.asarray(stats.binom.logpmf(y, n, rho))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinomialBiasModel(mode={self.mode!r})"
