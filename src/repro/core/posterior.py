"""Posterior summaries: credible ribbons, marginal histograms, 2-d contours.

These produce exactly the quantities the paper plots: per-day 50%/90%
credible ribbons over posterior trajectories (Figs 3-5 top panels), marginal
prior/posterior densities of theta and rho (Fig 3), and the joint (theta,
rho) density per window (Figs 4b/5b contour panels).  Since this environment
has no plotting stack, the summaries are numeric; :mod:`repro.viz` renders
them as ASCII or CSV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..seir.outputs import Trajectory
from .weights import weighted_quantile

__all__ = ["TrajectoryRibbon", "trajectory_ribbon", "marginal_histogram",
           "joint_density_grid", "hpd_region_mass"]


@dataclass(frozen=True)
class TrajectoryRibbon:
    """Per-day quantile bands over an ensemble of trajectories.

    Attributes
    ----------
    start_day:
        Day of the first column.
    quantiles:
        The quantile levels, ascending.
    bands:
        Array of shape ``(len(quantiles), n_days)``.
    """

    start_day: int
    quantiles: tuple[float, ...]
    bands: np.ndarray

    @property
    def n_days(self) -> int:
        return int(self.bands.shape[1])

    @property
    def days(self) -> np.ndarray:
        return np.arange(self.start_day, self.start_day + self.n_days)

    def band(self, q: float) -> np.ndarray:
        """The per-day series for one quantile level."""
        try:
            idx = self.quantiles.index(q)
        except ValueError:
            raise KeyError(f"quantile {q} not in {self.quantiles}") from None
        return self.bands[idx]

    def median(self) -> np.ndarray:
        return self.band(0.5)

    def coverage_of(self, truth: np.ndarray, lo_q: float, hi_q: float) -> float:
        """Fraction of days on which ``truth`` falls inside ``[lo_q, hi_q]``."""
        t = np.asarray(truth, dtype=np.float64)
        if t.shape[0] != self.n_days:
            raise ValueError("truth length must match ribbon days")
        lo = self.band(lo_q)
        hi = self.band(hi_q)
        inside = (t >= lo) & (t <= hi)
        return float(inside.mean())


def trajectory_ribbon(trajectories: Sequence[Trajectory], channel: str,
                      quantiles: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.95),
                      weights: np.ndarray | None = None) -> TrajectoryRibbon:
    """Per-day (optionally weighted) quantiles over trajectory ensemble.

    All trajectories must share a day range; posterior ensembles do by
    construction.  Default quantiles give the paper's 50% (0.25-0.75) and
    90% (0.05-0.95) ribbons plus the median.
    """
    if not trajectories:
        raise ValueError("need at least one trajectory")
    qs = tuple(float(q) for q in quantiles)
    if any(not 0 <= q <= 1 for q in qs) or list(qs) != sorted(qs):
        raise ValueError("quantiles must be ascending values in [0, 1]")
    start = trajectories[0].start_day
    n_days = len(trajectories[0])
    stack = np.empty((len(trajectories), n_days))
    for i, traj in enumerate(trajectories):
        if traj.start_day != start or len(traj) != n_days:
            raise ValueError("trajectories must share one day range")
        stack[i] = traj.series(channel).values

    if weights is None:
        bands = np.quantile(stack, qs, axis=0)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (len(trajectories),):
            raise ValueError("weights must have one entry per trajectory")
        bands = np.empty((len(qs), n_days))
        for d in range(n_days):
            bands[:, d] = weighted_quantile(stack[:, d], w, np.asarray(qs))
    return TrajectoryRibbon(start_day=start, quantiles=qs, bands=bands)


def marginal_histogram(values: np.ndarray, weights: np.ndarray | None = None,
                       bins: int = 40,
                       support: tuple[float, float] | None = None,
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Weighted density histogram ``(bin_edges, density)``.

    Mirrors the paper's Fig 3 marginal density panels; ``density`` integrates
    to 1 over the binned range.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise ValueError("empty sample")
    rng_lo, rng_hi = support if support is not None else (float(v.min()),
                                                          float(v.max()))
    if rng_hi <= rng_lo:
        rng_hi = rng_lo + 1e-9
    density, edges = np.histogram(v, bins=bins, range=(rng_lo, rng_hi),
                                  weights=weights, density=True)
    return edges, density


def joint_density_grid(x: np.ndarray, y: np.ndarray,
                       weights: np.ndarray | None = None,
                       bins: int = 30,
                       x_range: tuple[float, float] | None = None,
                       y_range: tuple[float, float] | None = None,
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Weighted 2-d density on a grid: ``(x_edges, y_edges, density)``.

    The numeric backing of the paper's (theta, rho) contour panels.
    """
    xv = np.asarray(x, dtype=np.float64)
    yv = np.asarray(y, dtype=np.float64)
    if xv.shape != yv.shape or xv.size == 0:
        raise ValueError("x and y must be equal-length non-empty arrays")
    ranges = [
        x_range if x_range is not None else (float(xv.min()), float(xv.max())),
        y_range if y_range is not None else (float(yv.min()), float(yv.max())),
    ]
    for i, (lo, hi) in enumerate(ranges):
        if hi <= lo:
            ranges[i] = (lo, lo + 1e-9)
    density, x_edges, y_edges = np.histogram2d(
        xv, yv, bins=bins, range=ranges, weights=weights, density=True)
    return x_edges, y_edges, density


def hpd_region_mass(density: np.ndarray, point_index: tuple[int, int]) -> float:
    """Probability mass of the highest-density region containing a grid cell.

    Small values mean the point (e.g. the ground-truth (theta, rho) square in
    Figs 4b/5b) sits in the high-density core of the posterior; values near 1
    mean it sits in the far tails.  Used to check "the black square lies
    inside the contours" quantitatively.
    """
    d = np.asarray(density, dtype=np.float64)
    if d.ndim != 2:
        raise ValueError("density must be a 2-d grid")
    i, j = point_index
    if not (0 <= i < d.shape[0] and 0 <= j < d.shape[1]):
        raise ValueError("point index outside the density grid")
    level = d[i, j]
    total = d.sum()
    if total <= 0:
        raise ValueError("density grid sums to zero")
    return float(d[d >= level].sum() / total)
