"""Observation model: bias + likelihood per data source.

This is the glue between a simulated :class:`~repro.seir.outputs.Trajectory`
and the observed data streams.  Each :class:`SourceModel` declares which
simulator channel it reads, whether the binomial reporting bias applies (the
paper biases cases but not deaths), and which likelihood scores it.  The
:class:`ObservationModel` sums the per-source log-likelihoods for the sources
actually present in an observation window — calibrating to cases alone
(Fig 3/4) or to cases and deaths (Fig 5) is purely a matter of which streams
the :class:`~repro.data.sources.ObservationSet` carries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..data.series import TimeSeries
from ..data.sources import CASES, DEATHS, ObservationSet
from ..seir.outputs import Trajectory
from .bias import BinomialBiasModel
from .likelihood import Likelihood, paper_likelihood

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .particle import ParticleEnsemble

__all__ = ["SourceModel", "ObservationModel", "paper_observation_model"]


class SourceModel:
    """Bias + likelihood configuration for one observed stream."""

    def __init__(self, name: str, channel: str, *,
                 biased: bool = True,
                 likelihood: Likelihood | None = None,
                 bias: BinomialBiasModel | None = None) -> None:
        self.name = name
        self.channel = channel
        self.biased = bool(biased)
        self.likelihood = likelihood if likelihood is not None else paper_likelihood()
        self.bias = bias if bias is not None else BinomialBiasModel("sample")

    def simulated_observed(self, trajectory: Trajectory, rho: float,
                           rng: np.random.Generator | None) -> TimeSeries:
        """The particle's simulated *observed* series for this stream.

        Applies the binomial bias with the particle's rho when the stream is
        biased; otherwise returns the raw channel (the paper's death stream).
        """
        raw = trajectory.series(self.channel)
        if not self.biased:
            return raw
        return self.bias.apply_series(raw, rho, rng)

    def loglik(self, observed: TimeSeries, trajectory: Trajectory, rho: float,
               rng: np.random.Generator | None) -> float:
        """Log-likelihood of the observed window under this particle."""
        simulated = self.simulated_observed(trajectory, rho, rng)
        sim_window = simulated.window(observed.start_day, observed.end_day)
        return self.likelihood.loglik_series(observed, sim_window)

    def simulated_observed_batch(self, segments: np.ndarray, rho: np.ndarray,
                                 rng: np.random.Generator | None) -> np.ndarray:
        """Ensemble counterpart of :meth:`simulated_observed`.

        ``segments`` is the ``(n_particles, n_days)`` raw channel matrix and
        ``rho`` the per-particle reporting probabilities; unbiased streams
        pass through untouched and consume no randomness.
        """
        matrix = np.asarray(segments, dtype=np.float64)
        if not self.biased:
            return matrix
        return self.bias.apply_batch(matrix, rho, rng)

    def loglik_batch(self, observed: TimeSeries, segments: np.ndarray,
                     rho: np.ndarray,
                     rng: np.random.Generator | None) -> np.ndarray:
        """Per-particle log-likelihoods of one observed window.

        ``segments`` must already be windowed to the observed day range
        (``ParticleEnsemble.segment_matrix`` does this in one pass).
        """
        simulated = self.simulated_observed_batch(segments, rho, rng)
        if simulated.ndim != 2 or simulated.shape[1] != len(observed):
            raise ValueError(
                f"segments not aligned with observed window: got shape "
                f"{simulated.shape}, expected (n_particles, {len(observed)})")
        return self.likelihood.loglik_batch(observed.values, simulated)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SourceModel({self.name!r}, channel={self.channel!r}, "
                f"biased={self.biased}, likelihood={self.likelihood!r})")


class ObservationModel:
    """Name-keyed bundle of :class:`SourceModel` objects."""

    def __init__(self, sources: Mapping[str, SourceModel]) -> None:
        if not sources:
            raise ValueError("need at least one source model")
        for key, model in sources.items():
            if key != model.name:
                raise ValueError(f"source key {key!r} != model name {model.name!r}")
        self._sources = dict(sources)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._sources)

    def source(self, name: str) -> SourceModel:
        return self._sources[name]

    def _require_source(self, name: str) -> SourceModel:
        """The model for an observed stream; silently ignoring data would
        corrupt the posterior, so an unconfigured stream is an error."""
        if name not in self._sources:
            raise KeyError(
                f"no SourceModel configured for observed stream "
                f"{name!r}; configured: {sorted(self._sources)}")
        return self._sources[name]

    def loglik(self, observations: ObservationSet, trajectory: Trajectory,
               rho: float, rng: np.random.Generator | None) -> float:
        """Sum of per-source log-likelihoods over the streams present.

        Streams in ``observations`` without a configured source model are an
        error (silently ignoring data would corrupt the posterior); sources
        configured but absent from the data are simply unused.
        """
        total = 0.0
        for obs_source in observations:
            model = self._require_source(obs_source.name)
            total += model.loglik(obs_source.series, trajectory, rho, rng)
        return total

    def loglik_ensemble(self, observations: ObservationSet,
                        ensemble: "ParticleEnsemble", rho: np.ndarray,
                        rng: np.random.Generator | None) -> np.ndarray:
        """Batched :meth:`loglik` over a whole particle ensemble.

        Returns the ``(n_particles,)`` vector of summed per-source
        log-likelihoods.  Sources are evaluated in observation-set order and
        each biased source thins the whole ensemble with one batched binomial
        call (source-major draw order; see :mod:`repro.core.bias`).  Stream
        configuration errors follow the scalar path's rules.
        """
        rho_arr = np.asarray(rho, dtype=np.float64)
        if rho_arr.shape != (len(ensemble),):
            raise ValueError(
                f"rho must have one entry per particle: expected shape "
                f"({len(ensemble)},), got {rho_arr.shape}")
        total = np.zeros(len(ensemble), dtype=np.float64)
        for obs_source in observations:
            model = self._require_source(obs_source.name)
            segments = ensemble.segment_matrix(model.channel,
                                               obs_source.series.start_day,
                                               obs_source.series.end_day)
            total += model.loglik_batch(obs_source.series, segments, rho_arr,
                                        rng)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObservationModel(sources={sorted(self._sources)})"


def paper_observation_model(sigma: float = 1.0,
                            bias_mode: str = "sample") -> ObservationModel:
    """Cases (binomially biased) + deaths (unbiased), Gaussian sqrt likelihoods.

    Matches section V: "We do not assume any reporting bias on death counts,
    instead we use a Gaussian error model on the square-root counts similar
    to reported case counts."
    """
    bias = BinomialBiasModel(bias_mode)
    return ObservationModel({
        CASES: SourceModel(CASES, CASES, biased=True,
                           likelihood=paper_likelihood(sigma), bias=bias),
        DEATHS: SourceModel(DEATHS, DEATHS, biased=False,
                            likelihood=paper_likelihood(sigma)),
    })
