"""Window-to-window proposal (jitter) kernels.

After resampling window *m-1*, the posterior atoms would collapse onto a few
distinct parameter values if propagated unchanged.  The paper instead draws
the next window's prior samples from "a uniform distribution centered around
each posterior value" (section V-B): a symmetric uniform jitter for theta and
an *asymmetric* uniform for rho "with a higher density toward the higher
value of rho, reflecting the reduced reporting error in later epidemic
stages".

:class:`UniformJitter` implements both shapes (set ``down`` = ``up`` for the
symmetric case) with reflection at the support bounds so proposals stay in
the parameter's legal range, and exposes the conditional log-density needed
if a caller wants full proposal corrections.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

import numpy as np

__all__ = ["JitterKernel", "UniformJitter", "NoJitter", "JointJitter",
           "paper_window_jitter"]


class JitterKernel(ABC):
    """Conditional proposal ``q(x' | x)`` for one scalar parameter."""

    @abstractmethod
    def propose(self, centers: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw one proposal per center."""

    @abstractmethod
    def logpdf(self, proposed: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """Elementwise conditional log-density ``log q(proposed | center)``."""


def _reflect(values: np.ndarray, low: float, high: float) -> np.ndarray:
    """Reflect values into ``[low, high]`` (preserves uniform mass near edges)."""
    if not np.isfinite(low) and not np.isfinite(high):
        return values
    out = values.copy()
    span = high - low
    if span <= 0:
        raise ValueError("reflection interval must have positive length")
    # One reflection pass suffices because jitter widths are < span in
    # practice; loop defensively for pathological widths.
    for _ in range(64):
        over = out > high
        under = out < low
        if not (over.any() or under.any()):
            break
        out[over] = 2 * high - out[over]
        out[under] = 2 * low - out[under]
    return np.clip(out, low, high)


class UniformJitter(JitterKernel):
    """Uniform jitter on ``[x - down, x + up]``, reflected into bounds.

    ``down == up`` gives the paper's symmetric theta kernel; ``down > up``
    (more mass *above* the center... note the asymmetry direction) — for the
    paper's rho kernel the interval extends further upward, i.e.
    ``up > down``.
    """

    def __init__(self, down: float, up: float,
                 bounds: tuple[float, float] = (-np.inf, np.inf)) -> None:
        if down < 0 or up < 0 or (down == 0 and up == 0):
            raise ValueError("jitter widths must be >= 0 and not both zero")
        self.down = float(down)
        self.up = float(up)
        self.bounds = (float(bounds[0]), float(bounds[1]))

    @classmethod
    def symmetric(cls, width: float,
                  bounds: tuple[float, float] = (-np.inf, np.inf)) -> "UniformJitter":
        """Symmetric kernel of half-width ``width`` (the theta kernel)."""
        return cls(width, width, bounds)

    @classmethod
    def asymmetric_upward(cls, width: float, skew: float = 3.0,
                          bounds: tuple[float, float] = (-np.inf, np.inf),
                          ) -> "UniformJitter":
        """Kernel extending ``skew`` times further up than down (rho kernel)."""
        if skew <= 0:
            raise ValueError("skew must be positive")
        return cls(width, width * skew, bounds)

    def propose(self, centers: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        c = np.asarray(centers, dtype=np.float64)
        raw = c + rng.uniform(-self.down, self.up, size=c.shape)
        return _reflect(raw, *self.bounds)

    def logpdf(self, proposed: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """Density of the *pre-reflection* uniform (adequate for diagnostics;
        the SIS weight update in this framework treats the jittered draws as
        the next window's prior, so no proposal correction is applied —
        matching the paper's construction)."""
        p = np.asarray(proposed, dtype=np.float64)
        c = np.asarray(centers, dtype=np.float64)
        width = self.down + self.up
        inside = (p >= c - self.down) & (p <= c + self.up)
        out = np.full(p.shape, -np.inf)
        out[inside] = -np.log(width)
        return out


class NoJitter(JitterKernel):
    """Identity kernel: propagate posterior atoms unchanged."""

    def propose(self, centers: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.asarray(centers, dtype=np.float64).copy()

    def logpdf(self, proposed: np.ndarray, centers: np.ndarray) -> np.ndarray:
        p = np.asarray(proposed, dtype=np.float64)
        c = np.asarray(centers, dtype=np.float64)
        return np.where(p == c, 0.0, -np.inf)


class JointJitter:
    """Name-keyed bundle of per-parameter jitter kernels."""

    def __init__(self, kernels: Mapping[str, JitterKernel]) -> None:
        if not kernels:
            raise ValueError("need at least one kernel")
        self._kernels = dict(kernels)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._kernels)

    def kernel(self, name: str) -> JitterKernel:
        return self._kernels[name]

    def propose(self, centers: Mapping[str, np.ndarray],
                rng: np.random.Generator) -> dict[str, np.ndarray]:
        """Jitter every named parameter array."""
        missing = set(self._kernels) - set(centers)
        if missing:
            raise ValueError(f"missing centers for parameters: {sorted(missing)}")
        return {name: kernel.propose(np.asarray(centers[name]), rng)
                for name, kernel in self._kernels.items()}


def paper_window_jitter(theta_width: float = 0.05,
                        rho_width: float = 0.02,
                        rho_skew: float = 3.0,
                        theta_bounds: tuple[float, float] = (0.05, 0.8),
                        ) -> JointJitter:
    """The paper's window-to-window proposal.

    Symmetric uniform around each theta posterior atom; asymmetric uniform
    around each rho atom, skewed upward (improving reporting over time),
    reflected into the legal ranges.
    """
    return JointJitter({
        "theta": UniformJitter.symmetric(theta_width, bounds=theta_bounds),
        "rho": UniformJitter.asymmetric_upward(rho_width, skew=rho_skew,
                                               bounds=(0.0, 1.0)),
    })
