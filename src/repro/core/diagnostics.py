"""Weight-degeneracy diagnostics for the SIS update.

Section VI of the paper discusses the failure modes this module watches for:
posterior weights concentrating on a few draws, and highly weighted
trajectories that still do not track reality.  The calibrator records a
:class:`WindowDiagnostics` per window; :func:`assess` turns one into a
human-readable health verdict used by examples and benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .weights import effective_sample_size, logsumexp, weight_entropy

__all__ = ["WindowDiagnostics", "compute_diagnostics", "assess"]

#: Below this ESS fraction a window is flagged as degenerate.
DEGENERACY_THRESHOLD = 0.05


@dataclass(frozen=True)
class WindowDiagnostics:
    """Summary statistics of one window's importance weights.

    Attributes
    ----------
    n_particles:
        Size of the weighted (pre-resampling) ensemble.
    ess:
        Kish effective sample size.
    ess_fraction:
        ``ess / n_particles``.
    entropy:
        Shannon entropy of the normalised weights (nats).
    entropy_fraction:
        Entropy relative to the uniform maximum ``log(n)``; 1.0 for a
        single-particle ensemble, whose only attainable distribution is
        uniform.
    max_weight:
        Largest single normalised weight.
    unique_ancestors:
        Distinct ancestors surviving the resampling step.
    log_evidence:
        Log of the window's average unnormalised weight — an estimate of the
        incremental marginal likelihood ``log p(y_window | y_past)``.
    particle_steps:
        Simulation cost of producing this window's cloud, in particle-days
        (ensemble size times days simulated, including burn-in for the
        first window).  The adaptive ensemble-size policies trade this
        against ESS; 0 when the producer did not record it.
    temper_schedule:
        Realised tempering exponents of the window's resampling pass when
        the calibrator routed it through the tempered bridge
        (:func:`repro.core.adaptive.temper_and_resample`); empty for a
        plain single-pass resample.  A schedule longer than one stage is
        the audit trail of a degenerate window that was rescued.
    temper_stage_ess:
        Per-stage incremental ESS realised along ``temper_schedule``
        (same length; empty when no tempering ran).
    shard_failures:
        Recovered shard-dispatch failures while producing this window's
        cloud (each is one failed attempt of one shard that was retried to
        success — see :class:`repro.hpc.faults.ShardFailure`).  Execution
        metadata, not statistical state: a retried run reports its
        recoveries here while its weights/posterior stay bit-identical to
        a fault-free run.
    shard_failure_causes:
        The cause code of each recovered failure, in occurrence order
        (same length as ``shard_failures``).
    """

    n_particles: int
    ess: float
    ess_fraction: float
    entropy: float
    entropy_fraction: float
    max_weight: float
    unique_ancestors: int
    log_evidence: float
    particle_steps: int = 0
    temper_schedule: tuple[float, ...] = ()
    temper_stage_ess: tuple[float, ...] = ()
    shard_failures: int = 0
    shard_failure_causes: tuple[str, ...] = ()

    @property
    def degenerate(self) -> bool:
        """True when the weighted ensemble has effectively collapsed."""
        return self.ess_fraction < DEGENERACY_THRESHOLD

    @property
    def tempered(self) -> bool:
        """True when the window's resampling ran through the tempered bridge."""
        return len(self.temper_schedule) > 0

    @property
    def temper_stages(self) -> int:
        """Number of bridge stages (0 when no tempering ran, 1 = plain)."""
        return len(self.temper_schedule)

    def to_dict(self) -> dict:
        return {
            "n_particles": self.n_particles,
            "ess": self.ess,
            "ess_fraction": self.ess_fraction,
            "entropy": self.entropy,
            "entropy_fraction": self.entropy_fraction,
            "max_weight": self.max_weight,
            "unique_ancestors": self.unique_ancestors,
            "log_evidence": self.log_evidence,
            "particle_steps": self.particle_steps,
            "temper_schedule": list(self.temper_schedule),
            "temper_stage_ess": list(self.temper_stage_ess),
            "shard_failures": self.shard_failures,
            "shard_failure_causes": list(self.shard_failure_causes),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WindowDiagnostics":
        return cls(n_particles=int(d["n_particles"]), ess=float(d["ess"]),
                   ess_fraction=float(d["ess_fraction"]),
                   entropy=float(d["entropy"]),
                   entropy_fraction=float(d["entropy_fraction"]),
                   max_weight=float(d["max_weight"]),
                   unique_ancestors=int(d["unique_ancestors"]),
                   log_evidence=float(d["log_evidence"]),
                   particle_steps=int(d.get("particle_steps", 0)),
                   temper_schedule=tuple(
                       float(b) for b in d.get("temper_schedule", ())),
                   temper_stage_ess=tuple(
                       float(e) for e in d.get("temper_stage_ess", ())),
                   shard_failures=int(d.get("shard_failures", 0)),
                   shard_failure_causes=tuple(
                       str(c) for c in d.get("shard_failure_causes", ())))


def compute_diagnostics(log_weights: np.ndarray, normalized: np.ndarray,
                        unique_ancestors: int, *,
                        particle_steps: int = 0,
                        temper_schedule: Sequence[float] = (),
                        temper_stage_ess: Sequence[float] = ()
                        ) -> WindowDiagnostics:
    """Assemble diagnostics from a window's weight vectors."""
    lw = np.asarray(log_weights, dtype=np.float64)
    w = np.asarray(normalized, dtype=np.float64)
    if lw.shape != w.shape:
        raise ValueError("log_weights and normalized weights must align")
    if len(temper_schedule) != len(temper_stage_ess):
        raise ValueError("temper_schedule and temper_stage_ess must align")
    n = int(w.size)
    ess = effective_sample_size(w)
    entropy = weight_entropy(w)
    # A single-particle ensemble is uniform over its only state — the maximum
    # attainable entropy — so its fraction is 1.0, not 0.0 ("collapsed").
    entropy_fraction = float(entropy / np.log(n)) if n > 1 else 1.0
    log_evidence = logsumexp(lw) - float(np.log(n))
    return WindowDiagnostics(
        n_particles=n,
        ess=float(ess),
        ess_fraction=float(ess / n),
        entropy=float(entropy),
        entropy_fraction=entropy_fraction,
        max_weight=float(np.max(w)),
        unique_ancestors=int(unique_ancestors),
        log_evidence=float(log_evidence),
        particle_steps=int(particle_steps),
        temper_schedule=tuple(float(b) for b in temper_schedule),
        temper_stage_ess=tuple(float(e) for e in temper_stage_ess),
    )


def assess(diag: WindowDiagnostics) -> str:
    """One-line health verdict for logs and bench output."""
    if diag.degenerate:
        return (f"DEGENERATE: ESS {diag.ess:.1f}/{diag.n_particles} "
                f"({100 * diag.ess_fraction:.1f}%) — increase the ensemble "
                "or widen proposals")
    if diag.ess_fraction < 0.2:
        return (f"marginal: ESS {diag.ess:.1f}/{diag.n_particles} "
                f"({100 * diag.ess_fraction:.1f}%)")
    return (f"healthy: ESS {diag.ess:.1f}/{diag.n_particles} "
            f"({100 * diag.ess_fraction:.1f}%)")
