"""Count transforms applied before the Gaussian likelihood.

The paper uses "a Gaussian likelihood on square-root transformed counts with
sigma_t = 1" (section V-B).  The square root is the classical
variance-stabilising transform for Poisson-like counts; with it a single
noise scale is meaningful across four orders of magnitude of case counts.
Alternative transforms are provided for the likelihood ablations.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import numpy.typing as npt

__all__ = ["Transform", "SQRT", "LOG1P", "IDENTITY", "ANSCOMBE",
           "get_transform", "TRANSFORMS"]


class Transform:
    """Named, invertible elementwise transform for count series."""

    def __init__(self, name: str,
                 forward: Callable[[np.ndarray], np.ndarray],
                 inverse: Callable[[np.ndarray], np.ndarray]) -> None:
        self.name = name
        self._forward = forward
        self._inverse = inverse

    def __call__(self, values: npt.ArrayLike) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if np.any(arr < 0):
            raise ValueError(f"{self.name} transform requires non-negative counts")
        return self._forward(arr)

    def inverse(self, values: npt.ArrayLike) -> np.ndarray:
        return self._inverse(np.asarray(values, dtype=np.float64))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Transform({self.name!r})"


SQRT = Transform("sqrt", np.sqrt, np.square)
"""The paper's variance-stabilising square root."""

LOG1P = Transform("log1p", np.log1p, np.expm1)
"""Log transform tolerant of zero counts."""

IDENTITY = Transform("identity", lambda x: x, lambda x: x)
"""No transform (raw-count Gaussian likelihood)."""

ANSCOMBE = Transform(
    "anscombe",
    lambda x: 2.0 * np.sqrt(x + 3.0 / 8.0),
    lambda y: np.maximum(np.square(y / 2.0) - 3.0 / 8.0, 0.0),
)
"""Anscombe's exact Poisson variance stabiliser."""

TRANSFORMS: dict[str, Transform] = {
    t.name: t for t in (SQRT, LOG1P, IDENTITY, ANSCOMBE)
}


def get_transform(name: str) -> Transform:
    """Resolve a transform by configuration name."""
    try:
        return TRANSFORMS[name]
    except KeyError:
        raise ValueError(
            f"unknown transform {name!r}; available: {sorted(TRANSFORMS)}"
        ) from None
