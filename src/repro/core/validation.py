"""Uncertainty-quantification validation utilities.

The paper's title promises *improved uncertainty quantification*; these
utilities measure whether the produced posteriors actually are calibrated:

* :func:`posterior_rank` / :func:`sbc_ranks_uniformity` — simulation-based
  calibration (Talts et al. 2018): if truths are drawn from the prior and
  the pipeline is exact, the rank of each truth within its posterior sample
  is uniform.  A chi-square statistic against uniformity flags over- or
  under-dispersed posteriors.
* :func:`interval_coverage` — empirical coverage of credible intervals over
  repeated runs (a 90% interval should contain the truth ~90% of the time).
* :func:`crps` — the continuous ranked probability score of a posterior
  sample against the realised truth; a proper scoring rule for comparing
  calibration variants (e.g. cases-only vs cases+deaths, Fig 4 vs Fig 5).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = ["posterior_rank", "sbc_ranks_uniformity", "interval_coverage",
           "crps"]


def posterior_rank(truth: float, posterior_samples: np.ndarray) -> int:
    """Rank of the truth within a posterior sample (0..n inclusive).

    The SBC statistic: number of posterior draws strictly below the truth.
    """
    draws = np.asarray(posterior_samples, dtype=np.float64)
    if draws.ndim != 1 or draws.size == 0:
        raise ValueError("posterior_samples must be a non-empty 1-d array")
    return int(np.sum(draws < truth))


def sbc_ranks_uniformity(ranks: np.ndarray, n_posterior: int,
                         n_bins: int = 10) -> dict:
    """Chi-square test of SBC rank uniformity.

    Parameters
    ----------
    ranks:
        One rank per replication, each in ``0..n_posterior``.
    n_posterior:
        Posterior sample size used for every rank.
    n_bins:
        Histogram bins for the chi-square statistic.

    Returns
    -------
    dict with ``statistic``, ``p_value``, ``bin_counts``, and a boolean
    ``calibrated`` at the 1% level (lenient: SBC is a screening tool).
    """
    r = np.asarray(ranks, dtype=np.int64)
    if r.ndim != 1 or r.size == 0:
        raise ValueError("ranks must be a non-empty 1-d array")
    if np.any((r < 0) | (r > n_posterior)):
        raise ValueError("ranks must lie in [0, n_posterior]")
    if n_bins < 2 or n_bins > n_posterior + 1:
        raise ValueError("n_bins must be in [2, n_posterior + 1]")
    edges = np.linspace(0, n_posterior + 1, n_bins + 1)
    counts, _ = np.histogram(r, bins=edges)
    expected = r.size / n_bins
    statistic = float(np.sum((counts - expected) ** 2 / expected))
    p_value = float(stats.chi2.sf(statistic, df=n_bins - 1))
    return {"statistic": statistic, "p_value": p_value,
            "bin_counts": counts.tolist(), "calibrated": p_value > 0.01}


def interval_coverage(truths: np.ndarray, lowers: np.ndarray,
                      uppers: np.ndarray) -> float:
    """Fraction of truths inside their per-run credible intervals."""
    t = np.asarray(truths, dtype=np.float64)
    lo = np.asarray(lowers, dtype=np.float64)
    hi = np.asarray(uppers, dtype=np.float64)
    if not (t.shape == lo.shape == hi.shape) or t.size == 0:
        raise ValueError("truths/lowers/uppers must share a non-empty shape")
    if np.any(lo > hi):
        raise ValueError("interval bounds reversed")
    return float(np.mean((t >= lo) & (t <= hi)))


def crps(posterior_samples: np.ndarray, truth: float) -> float:
    """Continuous ranked probability score (lower is better).

    Sample-based estimator ``E|X - y| - 0.5 E|X - X'|`` using the O(n log n)
    sorted form for the second term.
    """
    x = np.sort(np.asarray(posterior_samples, dtype=np.float64))
    n = x.size
    if n == 0:
        raise ValueError("empty posterior sample")
    term1 = float(np.mean(np.abs(x - truth)))
    # E|X - X'| = 2/n^2 * sum_i (2i - n - 1) x_(i)   (1-based i)
    i = np.arange(1, n + 1)
    gini = 2.0 / (n * n) * float(np.sum((2 * i - n - 1) * x))
    return term1 - 0.5 * gini
