"""Calibration time windows (the outer loop of the paper's framework).

The sequential scheme partitions the observation horizon into contiguous
windows ``[1, t1], [t1+1, t2], ...`` (paper section IV-C).  In our day-indexed
convention a :class:`TimeWindow` is half-open, ``[start_day, end_day)``, and a
:class:`WindowSchedule` is an ordered, gap-free sequence of them.

The paper's experiments use four windows whose boundaries track the
ground-truth horizons: days 20-33, 34-47, 48-61, 62-75, with a burn-in
period (days 0-19) simulated before the first window but not calibrated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["TimeWindow", "WindowSchedule", "paper_window_schedule"]


@dataclass(frozen=True)
class TimeWindow:
    """Half-open day interval ``[start_day, end_day)``."""

    start_day: int
    end_day: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "start_day", int(self.start_day))
        object.__setattr__(self, "end_day", int(self.end_day))
        if self.end_day <= self.start_day:
            raise ValueError(
                f"window must have positive length, got [{self.start_day}, {self.end_day})")

    @property
    def n_days(self) -> int:
        return self.end_day - self.start_day

    def contains_day(self, day: int) -> bool:
        return self.start_day <= day < self.end_day

    def label(self) -> str:
        """Human-readable label matching the paper's figures ("Days 20-33")."""
        return f"Days {self.start_day}-{self.end_day - 1}"

    def to_dict(self) -> dict:
        return {"start_day": self.start_day, "end_day": self.end_day}

    @classmethod
    def from_dict(cls, d: dict) -> "TimeWindow":
        return cls(int(d["start_day"]), int(d["end_day"]))


@dataclass(frozen=True)
class WindowSchedule:
    """Contiguous, ordered calibration windows plus an optional burn-in.

    Attributes
    ----------
    windows:
        The calibration windows; each must start where the previous ended.
    burn_in_start:
        Day at which simulation begins (default 0).  Days in
        ``[burn_in_start, windows[0].start_day)`` are simulated but not
        scored — the paper's runs start at day 0 while calibration starts
        at day 20.
    """

    windows: tuple[TimeWindow, ...]
    burn_in_start: int = 0

    def __post_init__(self) -> None:
        wins = tuple(self.windows)
        if not wins:
            raise ValueError("schedule needs at least one window")
        for prev, cur in zip(wins, wins[1:]):
            if cur.start_day != prev.end_day:
                raise ValueError(
                    f"windows must be contiguous: [{prev.start_day},{prev.end_day}) "
                    f"then [{cur.start_day},{cur.end_day})")
        if self.burn_in_start > wins[0].start_day:
            raise ValueError("burn-in must start at or before the first window")
        object.__setattr__(self, "windows", wins)
        object.__setattr__(self, "burn_in_start", int(self.burn_in_start))

    @classmethod
    def from_breaks(cls, breaks: Sequence[int], burn_in_start: int = 0,
                    ) -> "WindowSchedule":
        """Build from boundary days ``[t0, t1, ..., tK]`` (K windows)."""
        if len(breaks) < 2:
            raise ValueError("need at least two boundary days")
        windows = tuple(TimeWindow(breaks[i], breaks[i + 1])
                        for i in range(len(breaks) - 1))
        return cls(windows=windows, burn_in_start=burn_in_start)

    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self) -> Iterator[TimeWindow]:
        return iter(self.windows)

    def __getitem__(self, index: int) -> TimeWindow:
        return self.windows[index]

    @property
    def start_day(self) -> int:
        """First calibrated day."""
        return self.windows[0].start_day

    @property
    def end_day(self) -> int:
        """One past the last calibrated day."""
        return self.windows[-1].end_day

    def window_of_day(self, day: int) -> int:
        """Index of the window containing ``day``."""
        for i, w in enumerate(self.windows):
            if w.contains_day(day):
                return i
        raise ValueError(f"day {day} is not inside any calibration window")

    def to_dict(self) -> dict:
        return {"breaks": [self.windows[0].start_day,
                           *(w.end_day for w in self.windows)],
                "burn_in_start": self.burn_in_start}

    @classmethod
    def from_dict(cls, d: dict) -> "WindowSchedule":
        return cls.from_breaks(d["breaks"], burn_in_start=int(d.get("burn_in_start", 0)))


def paper_window_schedule() -> WindowSchedule:
    """The four windows of Figures 4-5: days 20-33, 34-47, 48-61, 62-75."""
    return WindowSchedule.from_breaks([20, 34, 48, 62, 76], burn_in_start=0)
