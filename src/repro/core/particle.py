"""Particles: weighted trajectory hypotheses.

A particle in this framework is richer than a parameter vector — it is the
tuple the paper calibrates: parameters ``theta``, reporting probability
``rho``, the random seed ``s`` (a first-class coordinate, section IV), the
stored simulator state (checkpoint) at the end of the last calibrated
window, and the trajectory history it has generated so far.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..seir.checkpoint import Checkpoint
from ..seir.outputs import Trajectory
from .weights import (effective_sample_size, normalize_log_weights,
                      weighted_mean, weighted_quantile)

__all__ = ["Particle", "ParticleEnsemble"]


@dataclass(frozen=True)
class Particle:
    """One weighted trajectory hypothesis.

    Attributes
    ----------
    params:
        Calibration parameters, e.g. ``{"theta": 0.31, "rho": 0.62}``.
    seed:
        The random seed that generated :attr:`segment`.
    log_weight:
        Unnormalised importance log-weight from the current window.
    segment:
        Trajectory of the most recent calibration window.
    history:
        Full trajectory from simulation start through the current window
        (used for posterior ribbons across the whole horizon).
    checkpoint:
        Simulator state at the end of the current window, for restart.
    ancestor:
        Index of the parent particle in the previous window's posterior
        (-1 for first-window particles); exposes lineage for diagnostics.
    """

    params: dict[str, float]
    seed: int
    log_weight: float = 0.0
    segment: Trajectory | None = None
    history: Trajectory | None = None
    checkpoint: Checkpoint | None = None
    ancestor: int = -1

    def __post_init__(self) -> None:
        object.__setattr__(self, "params",
                           {k: float(v) for k, v in dict(self.params).items()})
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "log_weight", float(self.log_weight))

    def value(self, name: str) -> float:
        """Parameter value by name (KeyError if absent)."""
        return self.params[name]

    def with_weight(self, log_weight: float) -> "Particle":
        return replace(self, log_weight=float(log_weight))


class ParticleEnsemble:
    """An ordered collection of particles with weight-aware summaries."""

    def __init__(self, particles: Sequence[Particle]) -> None:
        if not particles:
            raise ValueError("ensemble must contain at least one particle")
        self._particles = list(particles)
        names = set(self._particles[0].params)
        for p in self._particles:
            if set(p.params) != names:
                raise ValueError("particles disagree on parameter names")

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._particles)

    def __iter__(self) -> Iterator[Particle]:
        return iter(self._particles)

    def __getitem__(self, index: int) -> Particle:
        return self._particles[index]

    @property
    def particles(self) -> list[Particle]:
        return list(self._particles)

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._particles[0].params))

    # ------------------------------------------------------------------ #
    def values(self, name: str) -> np.ndarray:
        """Array of one named parameter across the ensemble."""
        return np.array([p.params[name] for p in self._particles])

    def seeds(self) -> np.ndarray:
        return np.array([p.seed for p in self._particles], dtype=np.int64)

    def log_weights(self) -> np.ndarray:
        return np.array([p.log_weight for p in self._particles])

    def normalized_weights(self) -> np.ndarray:
        """Normalised weights (uniform if all log-weights are equal)."""
        return normalize_log_weights(self.log_weights())

    def effective_sample_size(self) -> float:
        return effective_sample_size(self.normalized_weights())

    # ------------------------------------------------------------------ #
    def weighted_mean(self, name: str) -> float:
        return weighted_mean(self.values(name), self.normalized_weights())

    def weighted_quantile(self, name: str,
                          q: float | np.ndarray) -> np.ndarray | float:
        return weighted_quantile(self.values(name), self.normalized_weights(), q)

    def credible_interval(self, name: str, level: float = 0.9) -> tuple[float, float]:
        """Equal-tailed credible interval at the given level."""
        if not 0 < level < 1:
            raise ValueError("level must be in (0, 1)")
        alpha = (1.0 - level) / 2.0
        lo, hi = self.weighted_quantile(name, np.array([alpha, 1.0 - alpha]))
        return float(lo), float(hi)

    # ------------------------------------------------------------------ #
    def select(self, indices: Sequence[int] | np.ndarray) -> "ParticleEnsemble":
        """Sub-ensemble by ancestor indices (weights reset to uniform).

        This is the post-resampling constructor: resampled particles are
        equally weighted draws from the weighted ensemble, and each records
        which ancestor it came from.
        """
        idx = np.asarray(indices, dtype=np.int64)
        chosen = [replace(self._particles[int(i)], log_weight=0.0,
                          ancestor=int(i)) for i in idx]
        return ParticleEnsemble(chosen)

    def unique_ancestors(self) -> int:
        """Number of distinct ancestor indices (post-resampling diversity)."""
        return len({p.ancestor for p in self._particles})

    def trajectories(self, which: str = "segment") -> list[Trajectory]:
        """Collect per-particle trajectories (``segment`` or ``history``)."""
        if which not in ("segment", "history"):
            raise ValueError("which must be 'segment' or 'history'")
        out = []
        for p in self._particles:
            traj = p.segment if which == "segment" else p.history
            if traj is None:
                raise ValueError(f"particle missing {which} trajectory")
            out.append(traj)
        return out

    def segment_matrix(self, channel: str, start_day: int | None = None,
                       end_day: int | None = None) -> np.ndarray:
        """Stack one segment channel into an ``(n_particles, n_days)`` matrix.

        The batched weighting path extracts every particle's window segment
        in a single pass instead of building per-particle TimeSeries objects.
        ``start_day``/``end_day`` window each segment to ``[start_day,
        end_day)`` (defaulting to the first particle's full segment range);
        every segment must cover the requested range.
        """
        first = self._particles[0].segment
        if first is None:
            raise ValueError("particle missing segment trajectory")
        lo = first.start_day if start_day is None else int(start_day)
        hi = first.end_day if end_day is None else int(end_day)
        if hi < lo:
            raise ValueError("window end before start")
        out = np.empty((len(self._particles), hi - lo), dtype=np.float64)
        for i, p in enumerate(self._particles):
            seg = p.segment
            if seg is None:
                raise ValueError("particle missing segment trajectory")
            if seg.start_day > lo or seg.end_day < hi:
                raise ValueError(
                    f"segment [{seg.start_day}, {seg.end_day}) does not cover "
                    f"requested window [{lo}, {hi})")
            values = seg.channel_values(channel)
            out[i] = values[lo - seg.start_day:hi - seg.start_day]
        return out

    def params_matrix(self) -> np.ndarray:
        """(n_particles, n_params) matrix, columns in :attr:`param_names` order."""
        names = self.param_names
        return np.column_stack([self.values(n) for n in names])

    @classmethod
    def from_param_arrays(cls, params: Mapping[str, np.ndarray],
                          seeds: np.ndarray) -> "ParticleEnsemble":
        """Build an unweighted ensemble from name-keyed parameter arrays."""
        names = list(params)
        if not names:
            raise ValueError("need at least one parameter array")
        n = len(np.asarray(params[names[0]]))
        seeds_arr = np.asarray(seeds, dtype=np.int64)
        if seeds_arr.shape != (n,):
            raise ValueError("seeds must match parameter array length")
        particles = [
            Particle(params={name: float(np.asarray(params[name])[i])
                             for name in names},
                     seed=int(seeds_arr[i]))
            for i in range(n)
        ]
        return cls(particles)
