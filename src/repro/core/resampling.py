"""Resampling schemes for the SIS update.

The paper resamples particles "with probabilities proportional to the
importance weights" — plain multinomial resampling (Algorithm 1, step 4),
including the Figure 3 case of drawing a posterior sample *larger or smaller*
than the prior ensemble (500,000 prior trajectories down-sampled to 10,000).

Multinomial resampling is unbiased but adds the most Monte-Carlo variance of
the classical schemes, so the library also ships systematic, stratified, and
residual resamplers; ``benchmarks/bench_ablation_resampling.py`` quantifies
the variance gap, one of the design-choice ablations DESIGN.md calls out.

All resamplers share one signature::

    indices = resampler(weights, n_out, rng)

returning ancestor indices into the weighted ensemble.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

__all__ = ["Resampler", "multinomial_resample", "systematic_resample",
           "stratified_resample", "residual_resample", "get_resampler",
           "RESAMPLERS"]


class Resampler(Protocol):
    """Callable protocol all resampling schemes implement."""

    def __call__(self, weights: np.ndarray, n_out: int,
                 rng: np.random.Generator) -> np.ndarray: ...


def _validated(weights: np.ndarray, n_out: int) -> np.ndarray:
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-d array")
    if n_out < 1:
        raise ValueError("n_out must be >= 1")
    if np.any(w < 0) or np.any(np.isnan(w)):
        raise ValueError("weights must be non-negative and finite")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights sum to zero")
    return w / total


def multinomial_resample(weights: np.ndarray, n_out: int,
                         rng: np.random.Generator) -> np.ndarray:
    """IID draws from the weight distribution (the paper's scheme)."""
    w = _validated(weights, n_out)
    return rng.choice(w.size, size=n_out, replace=True, p=w)


def systematic_resample(weights: np.ndarray, n_out: int,
                        rng: np.random.Generator) -> np.ndarray:
    """Single uniform offset, evenly spaced CDF probes (lowest variance)."""
    w = _validated(weights, n_out)
    positions = (rng.uniform() + np.arange(n_out)) / n_out
    cdf = np.cumsum(w)
    cdf[-1] = 1.0  # guard rounding
    return np.searchsorted(cdf, positions, side="left").astype(np.int64)


def stratified_resample(weights: np.ndarray, n_out: int,
                        rng: np.random.Generator) -> np.ndarray:
    """One uniform probe per stratum ``[k/n, (k+1)/n)``."""
    w = _validated(weights, n_out)
    positions = (rng.uniform(size=n_out) + np.arange(n_out)) / n_out
    cdf = np.cumsum(w)
    cdf[-1] = 1.0
    return np.searchsorted(cdf, positions, side="left").astype(np.int64)


def residual_resample(weights: np.ndarray, n_out: int,
                      rng: np.random.Generator) -> np.ndarray:
    """Deterministic copies of ``floor(n w_i)``, multinomial on the residual."""
    w = _validated(weights, n_out)
    scaled = n_out * w
    # Tolerate floating-point round-off so exactly-integer expected counts
    # (e.g. uniform weights) produce their deterministic copies.
    copies = np.floor(scaled + 1e-9).astype(np.int64)
    indices = np.repeat(np.arange(w.size), copies)
    n_residual = n_out - int(copies.sum())
    if n_residual > 0:
        residual = scaled - copies
        residual_sum = residual.sum()
        if residual_sum <= 0:  # exact integer weights
            extra = rng.choice(w.size, size=n_residual, replace=True, p=w)
        else:
            extra = rng.choice(w.size, size=n_residual, replace=True,
                               p=residual / residual_sum)
        indices = np.concatenate([indices, extra])
    rng.shuffle(indices)
    return indices


RESAMPLERS: dict[str, Callable] = {
    "multinomial": multinomial_resample,
    "systematic": systematic_resample,
    "stratified": stratified_resample,
    "residual": residual_resample,
}


def get_resampler(name: str) -> Callable:
    """Resolve a resampler by configuration name."""
    try:
        return RESAMPLERS[name]
    except KeyError:
        raise ValueError(
            f"unknown resampler {name!r}; available: {sorted(RESAMPLERS)}"
        ) from None
