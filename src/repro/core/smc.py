"""Sequential importance sampling calibrator (paper Algorithm 1 + eq. 5).

The driver implements the paper's two-loop structure:

* **outer loop** over calibration windows, moving the epidemic forward in
  time and carrying posterior particles (with their checkpoints) from one
  window to the next;
* **inner loop** per window: sample parameters, simulate trajectories in
  parallel, weight them against the window's observations, and resample.

Window 1 draws ``n_parameter_draws`` parameter tuples from the prior and
replicates each across a *common* seed set (``n_replicates`` trajectories per
tuple, same seeds for every tuple — the paper's variance-control device).
Every later window starts from the previous window's resampled posterior:
each particle's parameters are jittered (symmetric uniform for theta,
asymmetric for rho), its stored checkpoint is restarted with the overridden
transmission rate and a fresh seed, and only the new window is simulated —
the computational saving checkpointing buys (paper section III-B).

Weights follow eq. (5): conditioned on a sample from the previous posterior,
the incremental weight is the likelihood of the *new* window's observations
alone.  Because the jittered draws constitute the next window's prior (the
paper's construction), no proposal-density correction is applied.

The weighting step runs on the batched ensemble path by default: segments
are stacked once per source (``ParticleEnsemble.segment_matrix``), thinned
with one binomial call (``BinomialBiasModel.apply_batch``) and scored with
one vectorised likelihood evaluation per source
(``ObservationModel.loglik_ensemble``) — O(1) NumPy calls per window instead
of O(n_particles) Python iterations.  ``SMCConfig(weighting="scalar")``
selects the per-particle reference implementation the batched path is
cross-checked against.  All per-window ancillary randomness (jitter, bias
thinning, resampling) draws from window-indexed streams of the
:class:`~repro.seir.seeding.SeedSequenceBank`, so no two windows ever share
a random stream.

The *simulation* step is batched by default too
(``SMCConfig(engine="binomial_leap_batched")``): both the first-window and
every continuation ensemble are advanced as stacked
``(n_particles, n_compartments)`` state matrices by the
:class:`~repro.seir.batch_engine.BatchedBinomialLeapEngine`, with no
per-task dict/JSON checkpoint round-trips — the :class:`ParticleEnsemble`
is built directly from the stacked day-by-day outputs.  Particles whose
structural parameters differ (anything beyond the transmission rate, e.g. a
``param_map`` targeting ``mild_fraction``) are grouped by structural
identity and each group is stepped as its own batch.

The ensemble size itself can adapt between windows
(``SMCConfig.size_policy``): after each window's weighting, an
:class:`~repro.core.ensemble_control.EnsembleSizePolicy` maps the window's
diagnostics to the *next* window's proposal count — growing the cloud when
the ESS collapses, shrinking it when the posterior has converged.  The
resampled *posterior* size is policy-driven too
(``SMCConfig.resample_size_policy``): consulted per window with the
pre-resampling weight diagnostics, it decides how many particles survive the
resampling pass instead of pinning every window to a fixed
``resample_size``.  Proposals flow through the same machinery at any size:
parents are taken by cycling through the resampled posterior (draw ``i``
descends from parent ``i mod len(posterior)``, the exact order the fixed
``n_continuations`` replication produces), every draw's restart seed is
keyed by ``(window, draw_index)``
(:meth:`~repro.seir.seeding.SeedSequenceBank.window_draw_seed` — stable
under size changes, unlike position-keyed seeds), and the shard layout is
recomputed per window from whatever size arrives.

Degenerate windows can be rescued in place
(``SMCConfig.temper_degenerate``): when a window's ESS fraction falls below
``temper_threshold``, the single resampling pass is replaced by the staged
tempered bridge of :func:`repro.core.adaptive.temper_and_resample` — the
likelihood is raised through adaptively chosen exponents, reweighting and
resampling among the window's already-simulated trajectories so each
bridging step keeps the incremental ESS above ``temper_ess_floor`` (no
re-simulation).  The bridge draws from the same window-indexed resampling
stream as the plain pass, preserving bit-reproducibility per ``(base_seed,
shard layout)``, and the realised exponent schedule and per-stage ESS are
recorded in the window's diagnostics for audit.

Batched simulation is *sharded* across the executor
(:mod:`repro.hpc.sharding`): each structural group is split into
contiguous, evenly chunked sub-batches (``SMCConfig.shard_size`` /
``n_shards``; ``"auto"`` matches the executor's worker count), the shards
are fanned out as one executor map per window, and the stacked shard
outputs are stitched back into the ensemble in order.  A
:class:`~repro.hpc.executor.SerialExecutor` under the auto policy gets
exactly one shard per group — the in-process fast path with zero pickling.
Every shard draws from its own batch stream keyed by the ordered seed
vector of its slice
(:meth:`~repro.seir.seeding.SeedSequenceBank.shard_simulation_generators`),
so a run is bit-reproducible given ``(base_seed, shard layout)`` and
identical across executors for the same layout; different layouts — like
scalar vs batched engines — agree in distribution only (see the batch RNG
contract in :mod:`repro.seir.batch_engine`).  Selecting any scalar engine
(``engine="binomial_leap"`` and friends) restores the per-particle executor
path unchanged; the scalar engine is the reference oracle the batched
engine is parity-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from ..data.sources import ObservationSet
from ..hpc.checkpoint_io import CheckpointStore
from ..hpc.executor import Executor, SerialExecutor
from ..hpc.faults import RetryPolicy, ShardFailure
from ..hpc.sharding import (GroupShards, GroupSpec, build_group_specs,
                            resolve_shard_layout, simulate_groups,
                            structural_groups, validate_shard_policy)
from ..seir.checkpoint import Checkpoint, CheckpointError
from ..seir.model import (BATCH_ENGINE_NAMES, ENGINE_NAMES,
                          StochasticSEIRModel)
from ..seir.outputs import Trajectory
from ..seir.parameters import DiseaseParameters, ParameterOverride
from ..seir.seeding import SeedSequenceBank, register_ancillary_purpose
from .adaptive import temper_and_resample
from .diagnostics import (DEGENERACY_THRESHOLD, WindowDiagnostics,
                          compute_diagnostics)
from .ensemble_control import (BudgetPolicy, EnsembleSizePolicy, FixedSize,
                               resolve_size_policy)
from .observation import ObservationModel
from .particle import Particle, ParticleEnsemble
from .priors import IndependentProduct
from .proposals import JointJitter
from .resampling import get_resampler
from .weights import normalize_log_weights
from .window import TimeWindow, WindowSchedule

if TYPE_CHECKING:  # imported lazily to avoid a cycle with core.scenarios
    from .scenarios import ScenarioSpec

__all__ = ["SMCConfig", "WindowResult", "PendingWindow",
           "SequentialCalibrator", "BIAS_PARAM", "DEFAULT_PARAM_MAP"]

#: Reserved name of the reporting-bias parameter in priors/jitters.
BIAS_PARAM = "rho"

#: Default mapping from prior parameter names to DiseaseParameters fields.
DEFAULT_PARAM_MAP: dict[str, str] = {"theta": "transmission_rate"}

# RNG stream purposes (see SeedSequenceBank.ancillary_generator).  Each is
# registered in the stream-domain registry, which raises at import time if a
# purpose value is ever reused by another consumer.
_PURPOSE_PRIOR = register_ancillary_purpose(
    "smc_prior", 0, description="first-window prior sampling")
_PURPOSE_BIAS = register_ancillary_purpose(
    "smc_bias", 1, description="per-window reporting-bias thinning")
_PURPOSE_RESAMPLE = register_ancillary_purpose(
    "smc_resample", 2, description="per-window resampling / tempered bridge")
_PURPOSE_JITTER = register_ancillary_purpose(
    "smc_jitter", 3, description="per-window proposal jitter")


@dataclass(frozen=True)
class SMCConfig:
    """Tuning knobs of the sequential calibrator.

    The paper-scale configuration is ``n_parameter_draws=25_000,
    n_replicates=20, resample_size=10_000``; defaults here are laptop-scale
    with identical algorithmic behaviour.

    ``engine`` may name a scalar engine (per-particle tasks mapped through
    the executor) or a batched ensemble engine (the default,
    ``"binomial_leap_batched"``), which simulates whole windows as stacked
    state matrices, sharded across the executor.

    ``shard_size``/``n_shards`` control the sharded batched dispatch:
    ``n_shards="auto"`` (the default) cuts each structural group into one
    shard per executor worker — a serial executor keeps the in-process
    single-shard fast path — while an explicit ``shard_size`` (members per
    shard; wins over ``n_shards``) or integer ``n_shards`` pins the layout,
    making results bit-reproducible across executors (see
    :mod:`repro.hpc.sharding`).  Scalar engines ignore both knobs.

    ``size_policy`` selects the adaptive ensemble-size controller consulted
    after every window (:mod:`repro.core.ensemble_control`): ``"fixed"``
    (the default — every continuation window proposes
    ``resample_size * n_continuations`` draws, the classic behaviour),
    ``"ess"`` (:class:`~repro.core.ensemble_control.ESSTargetPolicy`: grow
    the cloud when the post-weighting ESS fraction falls below its target
    band, shrink it when the band is exceeded, clamped to
    ``[n_min, n_max]``), ``"budget"``
    (:class:`~repro.core.ensemble_control.BudgetPolicy`: cap the cloud at a
    per-window particle-step budget), or any object implementing
    :class:`~repro.core.ensemble_control.EnsembleSizePolicy`.
    ``size_policy_options`` are the named policy's constructor keywords
    (e.g. ``{"target_high": 0.4, "n_min": 100}``).  Policies are
    deterministic, so adaptive runs remain bit-reproducible for a fixed
    ``(base_seed, size_policy, shard layout)`` and identical across
    executors; the first window always uses
    ``n_parameter_draws * n_replicates`` prior draws.

    ``resample_size_policy`` drives the *posterior* size the same way
    ``size_policy`` drives the proposal cloud: it is consulted per window
    with that window's pre-resampling weight diagnostics and decides how
    many particles the resampled posterior keeps (``"fixed"``, the default,
    keeps ``resample_size`` throughout).  Both policies compose — a grow
    decision and a tempering pass can land on the same window — because
    the continuation machinery is size-agnostic (parents are cycled from
    whatever posterior size arrives, restart seeds are keyed by
    ``(window, draw_index)``).

    ``temper_degenerate`` routes degenerate windows through the tempered
    bridge of :func:`repro.core.adaptive.temper_and_resample` instead of a
    single resampling pass: when a window's pre-resampling ESS fraction
    falls below ``temper_threshold`` (default: the
    :data:`~repro.core.diagnostics.DEGENERACY_THRESHOLD` that flags a
    window as degenerate), the likelihood is raised through an adaptive
    exponent schedule — resampling among the already-simulated trajectories
    at each stage, no re-simulation — chosen so every bridging step keeps
    the incremental ESS above ``temper_ess_floor``.  The bridge draws from
    the same window-indexed resampling stream as the plain pass, so runs
    stay bit-reproducible per ``(base_seed, shard layout)`` and identical
    across executors; the realised schedule is recorded in the window's
    :class:`~repro.core.diagnostics.WindowDiagnostics`.
    ``temper_resampler`` is the resampler used *inside* the bridge (default
    ``"systematic"``, independent of the plain pass's ``resampler``): the
    bridge resamples at every stage, so its variance-reduction depends on a
    stratified, low-variance scheme — a multinomial bridge compounds
    resampling noise across stages and can end up noisier than the single
    pass it replaces.

    ``retry`` (a :class:`~repro.hpc.faults.RetryPolicy`, default ``None`` =
    the legacy fail-fast behaviour) makes every batched window's sharded
    dispatch fault-tolerant: failed / timed-out / dropped / corrupted
    shards are re-executed with deterministic backoff, falling back to
    serial in-process execution on the final attempt.  Because shard
    outputs are pure functions of ``(base_seed, shard layout)``, retried
    runs stay bit-identical to fault-free ones (see
    ``docs/fault_tolerance.md``).
    """

    n_parameter_draws: int = 500
    n_replicates: int = 5
    resample_size: int = 500
    n_continuations: int = 1
    resampler: str = "multinomial"
    engine: str = "binomial_leap_batched"
    engine_options: dict = field(default_factory=dict)
    shard_size: int | None = None
    n_shards: int | str = "auto"
    base_seed: int = 20240215
    keep_weighted_ensemble: bool = False
    weighting: str = "batched"
    size_policy: str | EnsembleSizePolicy = "fixed"
    size_policy_options: dict = field(default_factory=dict)
    resample_size_policy: str | EnsembleSizePolicy = "fixed"
    resample_size_policy_options: dict = field(default_factory=dict)
    temper_degenerate: bool = False
    temper_threshold: float = DEGENERACY_THRESHOLD
    temper_ess_floor: float = 0.5
    temper_resampler: str = "systematic"
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise ValueError(
                f"retry must be a RetryPolicy or None, got {self.retry!r}")
        for name in ("n_parameter_draws", "n_replicates", "resample_size",
                     "n_continuations"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        resolve_size_policy(self.size_policy, self.size_policy_options)
        resolve_size_policy(self.resample_size_policy,
                            self.resample_size_policy_options)
        if not 0.0 <= self.temper_threshold <= 1.0:
            raise ValueError("temper_threshold must lie in [0, 1]")
        if not 0.0 < self.temper_ess_floor < 1.0:
            raise ValueError("temper_ess_floor must lie in (0, 1)")
        if self.weighting not in ("batched", "scalar"):
            raise ValueError(
                f"weighting must be 'batched' or 'scalar', got {self.weighting!r}")
        if self.engine not in ENGINE_NAMES and \
                self.engine not in BATCH_ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; available: "
                f"{ENGINE_NAMES + BATCH_ENGINE_NAMES}")
        validate_shard_policy(self.shard_size, self.n_shards)
        get_resampler(self.resampler)  # validate eagerly
        get_resampler(self.temper_resampler)

    @property
    def uses_batched_simulation(self) -> bool:
        """True when ``engine`` names a whole-ensemble (batched) engine."""
        return self.engine in BATCH_ENGINE_NAMES

    def size_policy_instance(self) -> EnsembleSizePolicy:
        """The configured ensemble-size controller, ready to consult."""
        return resolve_size_policy(self.size_policy, self.size_policy_options)

    def resample_size_policy_instance(self) -> EnsembleSizePolicy:
        """The configured posterior-size controller, ready to consult."""
        return resolve_size_policy(self.resample_size_policy,
                                   self.resample_size_policy_options)

    @property
    def first_window_ensemble_size(self) -> int:
        return self.n_parameter_draws * self.n_replicates

    @property
    def continuation_ensemble_size(self) -> int:
        return self.resample_size * self.n_continuations


@dataclass(frozen=True)
class WindowResult:
    """Everything the calibrator records about one window.

    Attributes
    ----------
    index:
        Window index (0-based).
    window:
        The day range calibrated.
    posterior:
        Resampled, equally weighted posterior ensemble.
    diagnostics:
        Weight-degeneracy diagnostics of the pre-resampling ensemble.
    weighted_ensemble:
        The full weighted ensemble (kept only when
        ``SMCConfig.keep_weighted_ensemble`` is set; memory-heavy).
    """

    index: int
    window: TimeWindow
    posterior: ParticleEnsemble
    diagnostics: WindowDiagnostics
    weighted_ensemble: ParticleEnsemble | None = None

    def summary(self) -> dict:
        """Posterior parameter summary used by benches and examples."""
        out: dict = {"window": self.window.label(),
                     "ess_fraction": self.diagnostics.ess_fraction,
                     "n_particles": self.diagnostics.n_particles,
                     "particle_steps": self.diagnostics.particle_steps,
                     "resample_size": len(self.posterior),
                     "temper_stages": self.diagnostics.temper_stages,
                     "shard_failures": self.diagnostics.shard_failures,
                     "shard_failure_causes":
                         list(self.diagnostics.shard_failure_causes)}
        for name in self.posterior.param_names:
            lo50, hi50 = self.posterior.credible_interval(name, 0.5)
            lo90, hi90 = self.posterior.credible_interval(name, 0.9)
            out[name] = {
                "mean": self.posterior.weighted_mean(name),
                "median": float(self.posterior.weighted_quantile(name, 0.5)),
                "ci50": (lo50, hi50),
                "ci90": (lo90, hi90),
            }
        return out


@dataclass(frozen=True)
class PendingWindow:
    """One window's proposal cloud, built but not yet simulated.

    The parent-side handle of the split-phase batched window API
    (:meth:`SequentialCalibrator.propose_window` /
    :meth:`~SequentialCalibrator.assemble_window` /
    :meth:`~SequentialCalibrator.weigh_window`): it carries everything the
    proposal phase decided — the per-member parameter draws, seeds, and
    effective :class:`~repro.seir.parameters.DiseaseParameters`, the
    structural grouping, and the ready-to-dispatch
    :class:`~repro.hpc.sharding.GroupSpec` list — so a multi-scenario
    driver can pool many windows' specs into **one** flattened shard
    dispatch (:func:`~repro.hpc.sharding.simulate_group_sets`) and
    reassemble each window independently.  All per-window randomness is
    consumed while *building* a pending window (prior/jitter draws, seed
    derivations); simulation randomness is keyed by the seed vectors inside
    the specs, so dispatching pending windows together or apart is
    bit-identical.

    ``parents`` is ``None`` for window 0 (fresh starts from burn-in) and
    the per-member parent particles for continuations.
    """

    index: int
    window: TimeWindow
    sim_days: int
    groups: list[list[int]]
    specs: list[GroupSpec]
    member_draws: list[dict[str, float]]
    member_seeds: list[int]
    member_params: list[DiseaseParameters]
    parents: list[Particle] | None = None

    @property
    def n_members(self) -> int:
        return len(self.member_seeds)


# --------------------------------------------------------------------------- #
# Module-level simulation tasks (picklable for process pools).
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _FirstWindowTask:
    params_payload: dict
    seed: int
    end_day: int
    start_day: int
    engine: str
    engine_options: dict


def _run_first_window_task(task: _FirstWindowTask) -> tuple[Trajectory, dict]:
    """Simulate day ``start_day`` .. ``end_day`` from scratch; checkpoint at end."""
    params = DiseaseParameters.from_dict(task.params_payload)
    model = StochasticSEIRModel(params, task.seed, engine=task.engine,
                                start_day=task.start_day,
                                **dict(task.engine_options))
    trajectory = model.run_until(task.end_day)
    return trajectory, model.checkpoint().to_dict()


@dataclass(frozen=True)
class _ContinuationTask:
    checkpoint_payload: dict
    override_payload: dict
    end_day: int


def _run_continuation_task(task: _ContinuationTask) -> tuple[Trajectory, dict]:
    """Restart a checkpoint with overrides and simulate one window."""
    checkpoint = Checkpoint.from_dict(task.checkpoint_payload)
    override = ParameterOverride.from_dict(task.override_payload)
    model = StochasticSEIRModel.from_checkpoint(checkpoint, override)
    trajectory = model.run_until(task.end_day)
    return trajectory, model.checkpoint().to_dict()


# --------------------------------------------------------------------------- #
class SequentialCalibrator:
    """The paper's HPC-aware sequential calibration framework.

    Parameters
    ----------
    base_params:
        Disease parameterisation; fields named in ``param_map`` are
        overridden per particle.
    prior:
        First-window joint prior.  Must contain :data:`BIAS_PARAM` (rho) and
        every key of ``param_map``.
    jitter:
        Window-to-window proposal kernels for the same parameter names.
    observation_model:
        Bias + likelihood configuration per observed stream.
    schedule:
        Calibration windows (plus burn-in start).
    config:
        Ensemble sizes and algorithmic switches.
    executor:
        Parallel map backend; defaults to serial.
    param_map:
        Mapping from prior parameter names to ``DiseaseParameters`` fields.
        Every mapped field must be one of the six checkpoint-restart knobs
        (the paper's contract); rho is handled by the observation model and
        must not be mapped.
    progress:
        Optional callback ``progress(message: str)`` for run logging.
    scenario:
        Optional :class:`~repro.core.scenarios.ScenarioSpec` of declarative
        parameter overrides this run calibrates under.  Day-0 overrides
        rewrite the base parameterisation; later overrides must target a
        checkpoint-restart knob and take effect exactly at a continuation
        window's start day.  By default scenarios share the run's
        ``base_seed`` (common random numbers — a scenario whose effective
        parameters equal the baseline's over a window prefix produces
        bit-identical windows); ``independent_streams=True`` re-roots every
        stream on :meth:`~repro.seir.seeding.SeedSequenceBank.scenario_base_seed`.
        ``None`` (and any override-free, shared-stream scenario) is
        bit-identical to a scenario-less run.
    """

    def __init__(self, base_params: DiseaseParameters,
                 prior: IndependentProduct,
                 jitter: JointJitter,
                 observation_model: ObservationModel,
                 schedule: WindowSchedule,
                 config: SMCConfig | None = None,
                 executor: Executor | None = None,
                 param_map: Mapping[str, str] | None = None,
                 progress: Callable[[str], None] | None = None,
                 scenario: "ScenarioSpec | None" = None) -> None:
        self.base_params = base_params
        self.prior = prior
        self.jitter = jitter
        self.observation_model = observation_model
        self.schedule = schedule
        self.config = config or SMCConfig()
        self.executor = executor or SerialExecutor()
        self.param_map = dict(param_map or DEFAULT_PARAM_MAP)
        self.scenario = scenario
        self._progress = progress or (lambda _msg: None)
        bank_seed = int(self.config.base_seed)
        if scenario is not None and scenario.independent_streams:
            bank_seed = SeedSequenceBank(bank_seed).scenario_base_seed(
                scenario.stream_key)
        self._bank = SeedSequenceBank(bank_seed)
        # A default FixedSize() passes the realised size through, which for
        # window 0 would promote the (larger) prior cloud into every later
        # window; pin it to each role's classic fixed size instead so
        # "fixed" stays bit-identical to a run with no policy at all.
        self._size_policy = self._pin_fixed(
            self.config.size_policy_instance(),
            self.config.continuation_ensemble_size)
        self._resample_policy = self._pin_fixed(
            self.config.resample_size_policy_instance(),
            self.config.resample_size)
        #: Index of the last window restored from a checkpoint store by the
        #: most recent ``run(..., resume=True)``; None for fresh runs.
        self.resumed_from: int | None = None
        #: Shard failures recovered while producing the current window's
        #: cloud; reset per window and folded into its diagnostics.
        self._window_shard_failures: list[ShardFailure] = []
        self._validate()

    @classmethod
    def _pin_fixed(cls, policy: EnsembleSizePolicy,
                   classic_size: int) -> EnsembleSizePolicy:
        if isinstance(policy, FixedSize) and policy.size is None:
            return FixedSize(size=classic_size)
        if isinstance(policy, BudgetPolicy) and (
                policy.base is None or (isinstance(policy.base, FixedSize)
                                        and policy.base.size is None)):
            # A budget cap over the default pass-through base must cap the
            # classic size, not whatever realised size window 0 produced.
            return replace(policy, base=FixedSize(size=classic_size))
        return policy

    def _validate(self) -> None:
        prior_names = set(self.prior.names)
        if BIAS_PARAM not in prior_names:
            raise ValueError(f"prior must include the bias parameter {BIAS_PARAM!r}")
        if BIAS_PARAM in self.param_map:
            raise ValueError(f"{BIAS_PARAM!r} is the observation-bias parameter "
                             "and cannot be mapped to a simulator field")
        unknown = set(self.param_map) - prior_names
        if unknown:
            raise ValueError(f"param_map names missing from prior: {sorted(unknown)}")
        allowed_fields = set(ParameterOverride._PARAM_FIELDS)
        bad = {f for f in self.param_map.values() if f not in allowed_fields}
        if bad:
            raise ValueError(
                f"param_map targets {sorted(bad)} are not checkpoint-restartable; "
                f"the paper allows only {sorted(allowed_fields)}")
        jitter_names = set(self.jitter.names)
        needed = (prior_names if len(self.schedule) > 1 else set())
        if needed and needed - jitter_names:
            raise ValueError(
                f"jitter kernels missing for parameters: {sorted(needed - jitter_names)}")
        if self.scenario is not None:
            self._validate_scenario()

    def _validate_scenario(self) -> None:
        """Check the scenario's overrides against this run's schedule.

        Calibrated fields belong to the sampler: a scenario overriding a
        ``param_map`` target would be silently overwritten by every draw.
        Mid-run overrides can only take effect where the engine stops —
        simulation runs window-at-a-time, so any override after day 0 must
        start exactly at a continuation window's start day (and
        :class:`~repro.core.scenarios.ScenarioOverride` already restricts
        those to the checkpoint-restart knobs).
        """
        assert self.scenario is not None
        mapped = set(self.param_map.values())
        windows = list(self.schedule)
        continuation_starts = {w.start_day for w in windows[1:]}
        for override in self.scenario.overrides:
            if override.field in mapped:
                raise ValueError(
                    f"scenario {self.scenario.name!r} overrides "
                    f"{override.field!r}, which param_map calibrates; "
                    "a calibrated field cannot be scenario-pinned")
            if override.start_day > 0 and \
                    override.start_day not in continuation_starts:
                raise ValueError(
                    f"scenario {self.scenario.name!r} override of "
                    f"{override.field!r} starts at day {override.start_day}, "
                    "which is not a continuation window start "
                    f"({sorted(continuation_starts)}); mid-run overrides "
                    "can only take effect at a window boundary")

    # ------------------------------------------------------------------ #
    def run(self, observations: ObservationSet, *,
            store: CheckpointStore | None = None,
            resume: bool = False) -> list[WindowResult]:
        """Calibrate every window in the schedule against ``observations``.

        After each window, the configured size policy maps the window's
        diagnostics to the next window's proposal count (the fixed policy
        keeps ``continuation_ensemble_size`` throughout); the size it
        scales from is the window's **realised** cloud
        (``diagnostics.n_particles`` — for window 0 the prior cloud of
        ``n_parameter_draws * n_replicates``, not the planned continuation
        size).  The resample-size policy is consulted inside each window's
        weighting pass and drives the posterior size the same way.  The
        realised per-window sizes are recorded in each result's
        diagnostics and posterior.

        With a ``store`` every completed window's resampled posterior
        (checkpoints, parameters, seeds, ancestry, diagnostics) is durably
        persisted, each window sealed by a completion marker only after
        its full population is on disk.  ``resume=True`` restarts from the
        last *complete* stored window: because all per-window randomness
        is keyed by window index (window-indexed ancillary streams,
        ``(window, draw_index)`` restart seeds) and the store pins the
        run's config/seed fingerprint, the remaining windows are
        bit-identical to an uninterrupted run.  Restored prefix windows
        carry posterior samples, diagnostics, and (for the restart window)
        checkpoints, but not trajectory segments/histories — recompute
        ribbons from a full run if needed.
        """
        if resume and store is None:
            raise ValueError("resume=True requires a checkpoint store")
        self._check_coverage(observations)
        results: list[WindowResult] = []
        posterior: ParticleEnsemble | None = None
        windows = list(self.schedule)
        planned = self.config.continuation_ensemble_size
        planned_resample = self.config.resample_size
        self.resumed_from = None
        start_index = 0
        if store is not None:
            store.validate_run_meta(self.run_fingerprint())
            if resume:
                results = self._restore_results(store, windows)
                if results:
                    posterior = results[-1].posterior
                    start_index = len(results)
                    self.resumed_from = results[-1].index
                    planned, planned_resample = self._replay_policies(
                        results, windows)
                    self._progress(
                        f"resuming after window {self.resumed_from} "
                        f"({start_index}/{len(windows)} windows restored "
                        f"from {store.root})")
        for index, window in enumerate(windows):
            if index < start_index:
                continue
            result = self.step_window(index, window, observations,
                                      posterior, n_proposals=planned,
                                      resample_size=planned_resample)
            posterior = result.posterior
            if store is not None:
                self.persist_window(store, result)
            self._progress(
                f"window {index} ({window.label()}): "
                f"ESS {result.diagnostics.ess:.1f}/{result.diagnostics.n_particles}")
            results.append(result)
            if index + 1 < len(windows):
                proposed, planned_resample = self.planned_sizes_after(
                    result, next_window_days=windows[index + 1].n_days)
                if proposed != planned:
                    self._progress(
                        f"window {index}: size policy resized next cloud "
                        f"{planned} -> {proposed} (ESS fraction "
                        f"{result.diagnostics.ess_fraction:.2f})")
                planned = proposed
        return results

    def step_window(self, index: int, window: TimeWindow,
                    observations: ObservationSet,
                    posterior: ParticleEnsemble | None = None, *,
                    n_proposals: int | None = None,
                    resample_size: int | None = None) -> WindowResult:
        """Calibrate one window — the single-step entry point.

        The body of :meth:`run`'s outer loop, exposed so a streaming driver
        (the always-on service of :mod:`repro.service`) can advance the
        calibration one window at a time as observations arrive.  Window 0
        simulates the prior cloud from burn-in; every later window needs
        the previous window's resampled ``posterior`` (its particles must
        carry checkpoints).  ``n_proposals`` / ``resample_size`` are the
        size-policy plans for this window (see :meth:`planned_sizes_after`;
        defaults reproduce the classic fixed sizes).  ``observations`` only
        needs to cover this window's day range, and all per-window
        randomness is keyed by ``index``, so stepping windows one at a time
        is bit-identical to a full :meth:`run` over the same schedule.
        """
        if observations.start_day > window.start_day or \
                observations.end_day < window.end_day:
            raise ValueError(
                f"observations cover days [{observations.start_day}, "
                f"{observations.end_day}) but window {index} needs "
                f"[{window.start_day}, {window.end_day})")
        self._window_shard_failures = []
        if index == 0:
            ensemble = self._first_window_ensemble(window)
            sim_days = window.end_day - self.schedule.burn_in_start
        else:
            if posterior is None:
                raise ValueError(
                    f"window {index} is a continuation and needs the "
                    "previous window's posterior")
            ensemble = self._continuation_ensemble(window, index, posterior,
                                                   n_proposals=n_proposals)
            sim_days = window.n_days
        return self.weigh_window(index, window, ensemble,
                                 observations, sim_days=sim_days,
                                 resample_size=resample_size)

    def planned_sizes_after(self, result: WindowResult, *,
                            next_window_days: int) -> tuple[int, int]:
        """The size plans ``(n_proposals, resample_size)`` for the window
        after ``result``.

        Both policies are stateless and Markovian in the previous window's
        realised outcome: the proposal plan depends only on
        ``result.diagnostics`` and the realised cloud size, the resample
        plan is the realised posterior size.  This is what lets a resumed
        or streaming run recover the exact plans of an uninterrupted run
        from the latest window alone (see :meth:`restore_latest_window`).
        """
        proposed = int(self._size_policy.next_size(
            window_index=result.index,
            current_size=result.diagnostics.n_particles,
            diagnostics=result.diagnostics,
            next_window_days=next_window_days))
        if proposed < 1:
            raise ValueError(
                f"size policy proposed a cloud of {proposed} "
                f"particles after window {result.index}")
        return proposed, len(result.posterior)

    def _check_coverage(self, observations: ObservationSet) -> None:
        if observations.start_day > self.schedule.start_day or \
                observations.end_day < self.schedule.end_day:
            raise ValueError(
                f"observations cover days [{observations.start_day}, "
                f"{observations.end_day}) but the schedule needs "
                f"[{self.schedule.start_day}, {self.schedule.end_day})")

    # ------------------------------------------------------------------ #
    # Fault tolerance: shard-failure reporting, persistence, resume.
    # ------------------------------------------------------------------ #
    def _on_shard_failure(self, failure: ShardFailure) -> None:
        self._window_shard_failures.append(failure)
        self._progress(
            f"shard {failure.shard_id} attempt {failure.attempt} failed "
            f"[{failure.cause}] {failure.error}; retrying")

    def run_fingerprint(self) -> dict:
        """JSON-stable identity of everything that determines a run's bits.

        Stored in the checkpoint store's ``run_meta.json`` and validated on
        reuse/resume: two runs with equal fingerprints produce bit-identical
        windows, so resuming across a fingerprint mismatch is refused.  The
        shard layout is recorded in *resolved* form — ``n_shards="auto"``
        depends on the executor's worker count, and that resolution (not
        the config string) is what keys the per-shard RNG streams.
        """
        cfg = self.config

        def policy_tag(policy: str | EnsembleSizePolicy) -> str:
            return policy if isinstance(policy, str) else repr(policy)

        def sorted_dict(d: Mapping) -> dict:
            return {str(k): d[k] for k in sorted(d)}

        layout = {}
        if cfg.uses_batched_simulation:
            layout = self._shard_layout_kwargs()
        fingerprint = {
            "format_version": 1,
            "base_seed": cfg.base_seed,
            "engine": cfg.engine,
            "engine_options": sorted_dict(cfg.engine_options),
            "shard_layout": layout,
            "n_parameter_draws": cfg.n_parameter_draws,
            "n_replicates": cfg.n_replicates,
            "resample_size": cfg.resample_size,
            "n_continuations": cfg.n_continuations,
            "resampler": cfg.resampler,
            "weighting": cfg.weighting,
            "size_policy": policy_tag(cfg.size_policy),
            "size_policy_options": sorted_dict(cfg.size_policy_options),
            "resample_size_policy": policy_tag(cfg.resample_size_policy),
            "resample_size_policy_options":
                sorted_dict(cfg.resample_size_policy_options),
            "temper": [cfg.temper_degenerate, cfg.temper_threshold,
                       cfg.temper_ess_floor, cfg.temper_resampler],
            "schedule": [w.label() for w in self.schedule],
            "burn_in_start": self.schedule.burn_in_start,
            "param_map": sorted_dict(self.param_map),
        }
        # Pre-scenario stores carry no "scenario" key; a baseline scenario
        # is bit-identical to no scenario, so it must fingerprint the same
        # way — the key appears only when the scenario changes the bits.
        if self.scenario is not None and not self.scenario.is_baseline:
            fingerprint["scenario"] = self.scenario.fingerprint_payload()
        return fingerprint

    def persist_window(self, store: CheckpointStore,
                        result: WindowResult) -> None:
        """Durably persist one completed window's resampled posterior.

        Checkpoints land as individual particle files; parameters, seeds,
        ancestry, and diagnostics ride in the window's ``state.json``; the
        completion marker is written strictly last (see
        :meth:`~repro.hpc.checkpoint_io.CheckpointStore.save_window_state`),
        so a crash mid-persist leaves a torn — and therefore skipped —
        window, never a corrupt restart point.
        """
        posterior = result.posterior
        checkpoints = []
        for particle in posterior:
            if particle.checkpoint is None:
                raise ValueError(
                    "cannot persist a posterior whose particles carry no "
                    "checkpoints")
            checkpoints.append(particle.checkpoint)
        meta = {
            "format_version": 1,
            "window_index": result.index,
            "window_label": result.window.label(),
            "params": [particle.params for particle in posterior],
            "seeds": [int(particle.seed) for particle in posterior],
            "ancestors": [int(particle.ancestor) for particle in posterior],
            "diagnostics": result.diagnostics.to_dict(),
        }
        store.save_window_state(result.index, checkpoints, meta)

    def _restore_results(self, store: CheckpointStore,
                         windows: list[TimeWindow]) -> list[WindowResult]:
        """Rebuild :class:`WindowResult`\\ s for the complete stored prefix.

        Only a gapless prefix of complete windows is restored (a gap means
        everything after it must be recomputed anyway).  Checkpoints are
        loaded for the final restored window only — that is the posterior
        the next window restarts from; earlier windows carry posterior
        samples and diagnostics for reporting.
        """
        prefix: list[int] = []
        for index in range(len(windows)):
            if not store.window_complete(index):
                break
            prefix.append(index)
        return [self._restore_window(store, index, windows[index],
                                     with_checkpoints=(index == prefix[-1]))
                for index in prefix]

    def _restore_window(self, store: CheckpointStore, index: int,
                        window: TimeWindow, *,
                        with_checkpoints: bool) -> WindowResult:
        """Rebuild one stored window's :class:`WindowResult`.

        Checkpoints are loaded only when requested (they are needed only
        for the window the run restarts from); posterior samples,
        ancestry, and diagnostics always restore.
        """
        meta = store.load_window_meta(index)
        if int(meta.get("window_index", -1)) != index:
            raise CheckpointError(
                f"window {index} metadata names window "
                f"{meta.get('window_index')!r}; store is inconsistent")
        if str(meta.get("window_label")) != window.label():
            raise CheckpointError(
                f"stored window {index} covers "
                f"{meta.get('window_label')!r} but the schedule expects "
                f"{window.label()!r}")
        params = list(meta["params"])
        seeds = list(meta["seeds"])
        ancestors = list(meta["ancestors"])
        if not len(params) == len(seeds) == len(ancestors):
            raise CheckpointError(
                f"window {index} metadata arrays disagree on length")
        checkpoints: list[Checkpoint] | None = None
        if with_checkpoints:
            checkpoints, _ = store.load_window_state(index)
            if len(checkpoints) != len(params):
                raise CheckpointError(
                    f"window {index} stores {len(checkpoints)} "
                    f"checkpoints but {len(params)} posterior samples")
        particles = []
        for i in range(len(params)):
            particles.append(Particle(
                params={k: float(v) for k, v in dict(params[i]).items()},
                seed=int(seeds[i]), ancestor=int(ancestors[i]),
                checkpoint=checkpoints[i] if checkpoints is not None
                else None))
        return WindowResult(
            index=index, window=window,
            posterior=ParticleEnsemble(particles),
            diagnostics=WindowDiagnostics.from_dict(
                dict(meta["diagnostics"])))

    def restore_latest_window(self, store: CheckpointStore
                              ) -> WindowResult | None:
        """Restore the newest *complete* stored window alone, with
        checkpoints.

        The streaming-service resume path: unlike :meth:`run`'s
        gapless-prefix restore (which rebuilds every window for the final
        :class:`~repro.inference.results.CalibrationResult`), continuing
        the calibration needs only the latest sealed window — the size
        plans for the next window derive from it alone
        (:meth:`planned_sizes_after`) — so this tolerates stores whose
        older windows were pruned by
        :meth:`~repro.hpc.checkpoint_io.CheckpointStore.prune`.  Returns
        ``None`` for a store with no complete window.
        """
        windows = list(self.schedule)
        for index in sorted(store.stored_windows(), reverse=True):
            if not store.window_complete(index):
                continue
            if index >= len(windows):
                raise CheckpointError(
                    f"store holds window {index} but the schedule has only "
                    f"{len(windows)} windows")
            return self._restore_window(store, index, windows[index],
                                        with_checkpoints=True)
        return None

    def _replay_policies(self, results: list[WindowResult],
                         windows: list[TimeWindow]) -> tuple[int, int]:
        """Replay the size policies over the restored prefix.

        Size policies are stateless (frozen dataclasses of
        :mod:`repro.core.ensemble_control`) and Markovian in the previous
        window's outcome, so the last restored window alone recovers
        exactly the ``planned`` / ``planned_resample`` values the
        uninterrupted run would carry into the first recomputed window —
        no policy state needs persisting.
        """
        last = results[-1]
        if last.index + 1 >= len(windows):
            # Everything restored; the plans are never consulted again.
            return (self.config.continuation_ensemble_size,
                    len(last.posterior))
        return self.planned_sizes_after(
            last, next_window_days=windows[last.index + 1].n_days)

    # ------------------------------------------------------------------ #
    def _window_base_params(self, window: TimeWindow) -> DiseaseParameters:
        """The scenario-effective base parameterisation for one window.

        Applies every scenario override whose start day has been reached by
        ``window.start_day`` (validation guarantees those are day-0
        rewrites or overrides landing exactly on this window's start);
        without a scenario this is ``base_params`` itself, bit-for-bit.
        """
        if self.scenario is None:
            return self.base_params
        return self.scenario.params_at(window.start_day, self.base_params)

    def _params_for_draw(self, draw: Mapping[str, float],
                         base: DiseaseParameters) -> DiseaseParameters:
        updates = {fld: float(draw[name]) for name, fld in self.param_map.items()}
        return base.with_updates(**updates)

    def _scenario_restart_overrides(self, window: TimeWindow
                                    ) -> dict[str, float]:
        """Restart-knob values the scenario pins for this window's restarts.

        A checkpoint carries the *previous* window's parameters, so every
        restart-knob field any scenario override targets must be
        re-asserted on restart — including fields whose override returns
        them to the baseline value — or a stale override would leak
        forward through the checkpoint.  Applied before the calibrated
        ``param_map`` fields, which always win (validation forbids the
        overlap anyway).
        """
        if self.scenario is None:
            return {}
        base = self.scenario.params_at(window.start_day, self.base_params)
        fields = ({o.field for o in self.scenario.overrides}
                  & set(ParameterOverride._PARAM_FIELDS))
        return {field: float(getattr(base, field))
                for field in sorted(fields)}

    def _shard_layout_kwargs(self) -> dict:
        """Resolve the configured shard policy against the executor.

        Delegates to the shared policy implementation
        (:func:`~repro.hpc.sharding.resolve_shard_layout`): one shard per
        worker under ``"auto"``, so a serial executor keeps the
        single-shard in-process fast path.
        """
        return resolve_shard_layout(self.executor,
                                    shard_size=self.config.shard_size,
                                    n_shards=self.config.n_shards)

    # ------------------------------------------------------------------ #
    # Split-phase batched API: propose -> simulate -> assemble.
    #
    # ``step_window`` fuses the three phases for a single scenario;
    # :class:`~repro.core.scenarios.ScenarioSweep` calls them separately so
    # that many scenarios' proposal clouds can be flattened into ONE shard
    # dispatch (``simulate_group_sets``).  Because per-shard RNG streams are
    # keyed by seed slices only — never by shard id — the flattened dispatch
    # is bit-identical to dispatching each scenario alone.
    # ------------------------------------------------------------------ #
    def propose_window(self, index: int, window: TimeWindow,
                       posterior: ParticleEnsemble | None = None, *,
                       n_proposals: int | None = None) -> PendingWindow:
        """Build (but do not simulate) one window's proposal cloud.

        Consumes exactly the ancillary/jitter randomness the fused path
        consumes, in the same order, so
        ``assemble_window(p, simulate_groups(...))`` over the returned plan
        is bit-identical to the classic in-place window.  Window 0 ignores
        ``posterior``; continuations require it (particles must carry
        checkpoints).  Batched engines only — the scalar engines have no
        group-spec representation to defer.
        """
        if not self.config.uses_batched_simulation:
            raise ValueError(
                f"propose_window requires a batched engine; "
                f"{self.config.engine!r} simulates particle-at-a-time")
        self._window_shard_failures = []
        if index == 0:
            return self._propose_first_window(window)
        if posterior is None:
            raise ValueError(
                f"window {index} is a continuation and needs the "
                "previous window's posterior")
        return self._propose_continuation(index, window, posterior,
                                          n_proposals=n_proposals)

    def _propose_first_window(self, window: TimeWindow) -> PendingWindow:
        cfg = self.config
        base = self._window_base_params(window)
        rng_prior = self._bank.ancillary_generator(_PURPOSE_PRIOR)
        draws = self.prior.sample(cfg.n_parameter_draws, rng_prior)
        seeds = self._bank.common_replicate_seeds(cfg.n_replicates)
        draw_dicts = [{name: float(draws[name][i]) for name in self.prior.names}
                      for i in range(cfg.n_parameter_draws)]
        # Replicates share the particle order of the scalar path
        # (draw-major, replicate-minor), so the two paths are positionally
        # comparable.
        entry_draws: list[dict[str, float]] = []
        entry_params: list[DiseaseParameters] = []
        entry_seeds: list[int] = []
        for draw in draw_dicts:
            params = self._params_for_draw(draw, base)
            for seed in seeds:
                entry_draws.append(draw)
                entry_params.append(params)
                entry_seeds.append(seed)
        groups = structural_groups(entry_params)
        specs = build_group_specs(groups, entry_params, entry_seeds,
                                  start_day=self.schedule.burn_in_start)
        self._progress(f"window 0: batch-simulating {len(entry_seeds)} prior "
                       f"trajectories ({len(groups)} structural group(s), "
                       f"{self.executor.workers} worker(s))")
        return PendingWindow(
            index=0, window=window,
            sim_days=window.end_day - self.schedule.burn_in_start,
            groups=groups, specs=specs, member_draws=entry_draws,
            member_seeds=[int(s) for s in entry_seeds],
            member_params=entry_params, parents=None)

    def _propose_continuation(self, index: int, window: TimeWindow,
                              posterior: ParticleEnsemble, *,
                              n_proposals: int | None = None) -> PendingWindow:
        cfg = self.config
        n = int(n_proposals) if n_proposals is not None \
            else cfg.continuation_ensemble_size
        if n < 1:
            raise ValueError("n_proposals must be >= 1")
        base = self._window_base_params(window)
        rng_jitter = self._bank.ancillary_generator(_PURPOSE_JITTER,
                                                    window_index=index)
        parent_idx = np.arange(n) % len(posterior)
        centers = {name: posterior.values(name)[parent_idx]
                   for name in self.prior.names}
        proposal = self.jitter.propose(centers, rng_jitter)
        proposed_params = [{name: float(proposal[name][i])
                            for name in self.prior.names} for i in range(n)]
        seeds = [self._bank.window_draw_seed(index, i) for i in range(n)]
        parents = [posterior[int(j)] for j in parent_idx]
        params_list = [self._params_for_draw(draw, base)
                       for draw in proposed_params]
        groups = structural_groups(params_list)
        for parent in parents:
            assert parent.checkpoint is not None
        specs = build_group_specs(
            groups, params_list, seeds,
            snapshots=[p.checkpoint.snapshot for p in parents])
        self._progress(
            f"window {index}: batch-restarting {len(parents)} "
            f"checkpoints ({window.label()})")
        return PendingWindow(
            index=index, window=window, sim_days=window.n_days,
            groups=groups, specs=specs, member_draws=proposed_params,
            member_seeds=[int(s) for s in seeds], member_params=params_list,
            parents=parents)

    def _simulate_pending(self, pending: PendingWindow) -> list[GroupShards]:
        cfg = self.config
        return simulate_groups(self.executor, pending.specs,
                               end_day=pending.window.end_day,
                               engine=cfg.engine,
                               engine_options=cfg.engine_options,
                               retry=cfg.retry,
                               on_failure=self._on_shard_failure,
                               **self._shard_layout_kwargs())

    def assemble_window(self, pending: PendingWindow,
                        shards: list[GroupShards]) -> ParticleEnsemble:
        """Reassemble a dispatched :class:`PendingWindow` into particles.

        ``shards`` is the per-group result list for exactly
        ``pending.specs`` (e.g. one element of a
        :func:`~repro.hpc.sharding.simulate_group_sets` return).  Window 0
        turns each whole trajectory into history+segment; continuations
        splice each parent's history with its restarted segment.
        """
        first_window = pending.parents is None
        particles: list[Particle | None] = [None] * pending.n_members
        for indices, group in zip(pending.groups, shards):
            for member, result, row in group.member_items():
                idx = indices[member]
                checkpoint = Checkpoint(
                    params=pending.member_params[idx],
                    snapshot=result.particle_snapshot(row))
                if first_window:
                    history = result.batch.trajectory(row)
                    segment = history.window(pending.window.start_day,
                                             pending.window.end_day)
                else:
                    segment = result.batch.trajectory(row)
                    assert pending.parents is not None
                    parent = pending.parents[idx]
                    history = parent.history.extended_by(segment) \
                        if parent.history is not None else segment
                particles[idx] = Particle(
                    params=pending.member_draws[idx],
                    seed=pending.member_seeds[idx],
                    segment=segment, history=history, checkpoint=checkpoint)
        return ParticleEnsemble(particles)

    # ------------------------------------------------------------------ #
    def _first_window_ensemble(self, window: TimeWindow) -> ParticleEnsemble:
        cfg = self.config
        if cfg.uses_batched_simulation:
            pending = self.propose_window(0, window)
            return self.assemble_window(pending,
                                        self._simulate_pending(pending))
        base = self._window_base_params(window)
        rng_prior = self._bank.ancillary_generator(_PURPOSE_PRIOR)
        draws = self.prior.sample(cfg.n_parameter_draws, rng_prior)
        seeds = self._bank.common_replicate_seeds(cfg.n_replicates)
        draw_dicts = [{name: float(draws[name][i]) for name in self.prior.names}
                      for i in range(cfg.n_parameter_draws)]

        tasks = []
        meta = []  # (draw_index, seed)
        for i, draw in enumerate(draw_dicts):
            payload = self._params_for_draw(draw, base).to_dict()
            for seed in seeds:
                tasks.append(_FirstWindowTask(
                    params_payload=payload, seed=seed,
                    end_day=window.end_day,
                    start_day=self.schedule.burn_in_start,
                    engine=cfg.engine,
                    engine_options=dict(cfg.engine_options)))
                meta.append((i, seed))
        self._progress(f"window 0: simulating {len(tasks)} prior trajectories")
        outputs = self.executor.map(_run_first_window_task, tasks)

        particles = []
        for (i, seed), (trajectory, cp_payload) in zip(meta, outputs):
            particles.append(Particle(
                params=draw_dicts[i], seed=seed,
                segment=trajectory.window(window.start_day, window.end_day),
                history=trajectory,
                checkpoint=Checkpoint.from_dict(cp_payload)))
        return ParticleEnsemble(particles)

    def _continuation_ensemble(self, window: TimeWindow, index: int,
                               posterior: ParticleEnsemble,
                               n_proposals: int | None = None,
                               ) -> ParticleEnsemble:
        """Propose and simulate the next window's cloud at any size.

        ``n_proposals`` (default ``continuation_ensemble_size``) is the
        size-policy output: draw ``i`` descends from parent ``i mod
        len(posterior)`` — cycling through the resampled posterior, which
        reproduces the classic ``n_continuations`` replication when the
        size is a multiple of it, subsamples an exchangeable prefix when
        shrinking, and revisits parents when growing.  Each draw's restart
        seed is keyed by ``(window, draw_index)`` alone
        (:meth:`~repro.seir.seeding.SeedSequenceBank.window_draw_seed`), so
        the seed vector is prefix-stable under size changes.
        """
        cfg = self.config
        if cfg.uses_batched_simulation:
            pending = self.propose_window(index, window, posterior,
                                          n_proposals=n_proposals)
            return self.assemble_window(pending,
                                        self._simulate_pending(pending))
        n = int(n_proposals) if n_proposals is not None \
            else cfg.continuation_ensemble_size
        if n < 1:
            raise ValueError("n_proposals must be >= 1")
        rng_jitter = self._bank.ancillary_generator(_PURPOSE_JITTER,
                                                    window_index=index)
        parent_idx = np.arange(n) % len(posterior)
        centers = {name: posterior.values(name)[parent_idx]
                   for name in self.prior.names}
        proposal = self.jitter.propose(centers, rng_jitter)

        proposed_params = [{name: float(proposal[name][i])
                            for name in self.prior.names} for i in range(n)]
        seeds = [self._bank.window_draw_seed(index, i) for i in range(n)]
        parents = [posterior[int(j)] for j in parent_idx]

        # Resampling duplicates ancestors, and every continuation re-visits
        # each parent, so serialise each distinct parent checkpoint once per
        # window instead of once per task.
        scenario_pins = self._scenario_restart_overrides(window)
        payload_cache: dict[int, dict] = {}
        tasks = []
        for draw, seed, parent in zip(proposed_params, seeds, parents):
            assert parent.checkpoint is not None
            payload = payload_cache.get(id(parent.checkpoint))
            if payload is None:
                payload = parent.checkpoint.to_dict()
                payload_cache[id(parent.checkpoint)] = payload
            override: dict = {"seed": seed}
            override.update(scenario_pins)
            override.update({fld: draw[name]
                             for name, fld in self.param_map.items()})
            tasks.append(_ContinuationTask(
                checkpoint_payload=payload,
                override_payload=override,
                end_day=window.end_day))
        self._progress(
            f"window {index}: restarting {len(tasks)} checkpoints "
            f"({window.label()})")
        outputs = self.executor.map(_run_continuation_task, tasks)

        particles = []
        for draw, seed, parent, (segment, cp_payload) in zip(
                proposed_params, seeds, parents, outputs):
            history = parent.history.extended_by(segment) \
                if parent.history is not None else segment
            particles.append(Particle(
                params=draw, seed=seed, segment=segment, history=history,
                checkpoint=Checkpoint.from_dict(cp_payload)))
        return ParticleEnsemble(particles)

    # ------------------------------------------------------------------ #
    def _scalar_log_weights(self, window_obs: ObservationSet,
                            ensemble: ParticleEnsemble,
                            rng_bias: np.random.Generator) -> np.ndarray:
        """Per-particle reference weighting loop.

        Kept as the cross-check oracle for the batched path (and selected by
        ``SMCConfig(weighting="scalar")``).  In "sample" bias mode its
        thinning draws interleave per particle, so it matches the batched
        path exactly in "mean" mode and in distribution otherwise — see the
        draw-order contract in :mod:`repro.core.bias`.
        """
        log_weights = np.empty(len(ensemble))
        for i, particle in enumerate(ensemble):
            assert particle.segment is not None
            log_weights[i] = self.observation_model.loglik(
                window_obs, particle.segment, particle.params[BIAS_PARAM],
                rng_bias)
        return log_weights

    def weigh_window(self, index: int, window: TimeWindow,
                     ensemble: ParticleEnsemble,
                     observations: ObservationSet,
                     sim_days: int | None = None,
                     resample_size: int | None = None) -> WindowResult:
        """Weight the window's cloud and draw its resampled posterior.

        The third phase of the split-phase API (after
        :meth:`propose_window` / :meth:`assemble_window`) — also the tail
        of every fused :meth:`step_window`.  ``resample_size`` is the
        resample-size policy's running state (the
        previous window's realised posterior size; default
        ``SMCConfig.resample_size``): the policy maps it and the window's
        pre-resampling weight diagnostics to this window's posterior count.
        With ``temper_degenerate`` set, a window whose ESS fraction falls
        below ``temper_threshold`` is resampled through the staged tempered
        bridge instead of one multinomial pass — drawing from the same
        window-indexed resampling stream, so reproducibility per
        ``(base_seed, shard layout)`` is unchanged — and the realised
        schedule lands in the diagnostics.
        """
        cfg = self.config
        if sim_days is None:
            sim_days = window.n_days
        window_obs = observations.window(window.start_day, window.end_day)
        rng_bias = self._bank.ancillary_generator(_PURPOSE_BIAS,
                                                  window_index=index)

        if cfg.weighting == "batched":
            log_weights = self.observation_model.loglik_ensemble(
                window_obs, ensemble, ensemble.values(BIAS_PARAM), rng_bias)
        else:
            log_weights = self._scalar_log_weights(window_obs, ensemble,
                                                   rng_bias)
        weighted_ensemble = ParticleEnsemble(
            [p.with_weight(ll) for p, ll in zip(ensemble, log_weights)])

        normalized = normalize_log_weights(log_weights)
        particle_steps = len(ensemble) * int(sim_days)
        # The posterior-size decision needs this window's weight health, so
        # the policy sees the pre-resampling diagnostics (ancestors unknown
        # yet, hence 0); the recorded diagnostics are rebuilt below with the
        # realised ancestry and tempering audit trail.
        pre_diag = compute_diagnostics(log_weights, normalized, 0,
                                       particle_steps=particle_steps)
        current_resample = int(resample_size if resample_size is not None
                               else cfg.resample_size)
        n_out = int(self._resample_policy.next_size(
            window_index=index, current_size=current_resample,
            diagnostics=pre_diag, next_window_days=window.n_days))
        if n_out < 1:
            raise ValueError(
                f"resample size policy proposed a posterior of {n_out} "
                f"particles for window {index}")
        if n_out != current_resample:
            self._progress(
                f"window {index}: resample policy resized posterior "
                f"{current_resample} -> {n_out} (ESS fraction "
                f"{pre_diag.ess_fraction:.2f})")

        rng_resample = self._bank.ancillary_generator(_PURPOSE_RESAMPLE,
                                                      window_index=index)
        schedule: tuple[float, ...] = ()
        stage_ess: tuple[float, ...] = ()
        if cfg.temper_degenerate and \
                pre_diag.ess_fraction < cfg.temper_threshold:
            tempered = temper_and_resample(
                log_weights, n_out, rng_resample,
                ess_floor_fraction=cfg.temper_ess_floor,
                resampler=cfg.temper_resampler)
            indices = tempered.indices
            schedule, stage_ess = tempered.schedule, tempered.stage_ess
            self._progress(
                f"window {index}: tempered rescue bridged "
                f"{tempered.n_stages} stage(s) (ESS fraction "
                f"{pre_diag.ess_fraction:.3f} < {cfg.temper_threshold})")
        else:
            indices = get_resampler(cfg.resampler)(normalized, n_out,
                                                   rng_resample)
        posterior = weighted_ensemble.select(indices)

        # The weight statistics are unchanged since pre_diag; only the
        # realised ancestry, the tempering audit trail, and the window's
        # recovered shard failures are new.
        failures = self._window_shard_failures
        diagnostics = replace(
            pre_diag, unique_ancestors=int(posterior.unique_ancestors()),
            temper_schedule=tuple(float(b) for b in schedule),
            temper_stage_ess=tuple(float(e) for e in stage_ess),
            shard_failures=len(failures),
            shard_failure_causes=tuple(f.cause for f in failures))
        return WindowResult(
            index=index, window=window, posterior=posterior,
            diagnostics=diagnostics,
            weighted_ensemble=weighted_ensemble
            if cfg.keep_weighted_ensemble else None)

    # Pre-split-phase private name, kept for callers and tests.
    _weigh_and_resample = weigh_window
