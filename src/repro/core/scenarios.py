"""Named scenarios: declarative parameter worlds over one calibration.

A :class:`ScenarioSpec` is a small, validated, canonical description of
"the same epidemic under different assumptions": a name plus a set of
:class:`ScenarioOverride`\\ s on :class:`~repro.seir.parameters
.DiseaseParameters` fields.  Day-0 overrides rewrite the structural world
(population, seeding, baseline rates); later overrides model mid-run
events — a milder variant taking over, an intervention landing, detection
practice changing — and are restricted to the paper's checkpoint-restart
knobs (:attr:`~repro.seir.parameters.ParameterOverride._PARAM_FIELDS`)
starting exactly at a continuation window boundary, because that is where
the engine stops and parameters can actually change.

Scenarios are registered in the process-wide :data:`SCENARIOS` registry
(same discipline as the stream-tag registry of :mod:`repro.seir.seeding`:
idempotent re-registration of an identical spec, hard error on rebinding a
name) and grouped into named :data:`SCENARIO_SETS` for the CLI's
``--scenario-set``.

**RNG contract.**  Scenarios use *common random numbers* by default: every
scenario of a sweep draws from the same ``base_seed`` streams, so two
scenarios whose effective parameters agree over a window prefix produce
bit-identical windows — which is what makes scenario differences estimates
of the *scenario effect* rather than of Monte Carlo noise, and what lets
:class:`ScenarioSweep` compute each distinct world-line once.
``independent_streams=True`` opts a scenario out by re-rooting all its
streams on the registered ``scenario`` stream tag
(:meth:`~repro.seir.seeding.SeedSequenceBank.scenario_base_seed`).

**World-line deduplication.**  :class:`ScenarioSweep` runs S scenarios over
one shared :class:`~repro.core.smc.SequentialCalibrator` configuration.
Within each window it partitions the still-active scenarios into
*world-lines* — groups whose upcoming window is provably bit-identical:
same stream root, same effective window parameters, same lineage (they
shared every previous window), same size plans.  Each line is computed
once via the calibrator's split-phase API
(:meth:`~repro.core.smc.SequentialCalibrator.propose_window` /
``assemble_window`` / ``weigh_window``) with **all** lines' shards
flattened into one :func:`~repro.hpc.sharding.simulate_group_sets`
dispatch — the flattened scenario×group space.  Lines split when a
scenario's override kicks in and never re-merge (diverged state stays
diverged even if parameters re-converge).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, fields as dataclass_fields
from typing import Callable, Iterator, Mapping, Sequence

from ..data.schedule import PiecewiseConstant
from ..data.sources import ObservationSet
from ..hpc.checkpoint_io import CheckpointStore
from ..hpc.executor import Executor
from ..hpc.sharding import simulate_group_sets
from ..seir.parameters import DiseaseParameters, ParameterOverride
from .observation import ObservationModel
from .particle import ParticleEnsemble
from .priors import IndependentProduct
from .proposals import JointJitter
from .smc import (PendingWindow, SequentialCalibrator, SMCConfig,
                  WindowResult)
from .window import TimeWindow, WindowSchedule

__all__ = ["ScenarioOverride", "ScenarioSpec", "ScenarioRegistry",
           "SCENARIOS", "SCENARIO_SETS", "register_scenario", "get_scenario",
           "scenario_set", "ScenarioSweep"]

_PARAM_FIELD_TYPES: dict[str, str] = {
    f.name: str(f.type) for f in dataclass_fields(DiseaseParameters)}
_RESTART_FIELDS = frozenset(ParameterOverride._PARAM_FIELDS)


@dataclass(frozen=True)
class ScenarioOverride:
    """One field's scenario value, effective from ``start_day`` onward.

    ``start_day=0`` rewrites the base world before simulation begins and
    may target any :class:`~repro.seir.parameters.DiseaseParameters`
    field.  A positive ``start_day`` models a mid-run change and must
    target a checkpoint-restart knob — the only fields the engine can
    change at a window boundary (schedule alignment itself is validated
    against the run's :class:`~repro.core.window.WindowSchedule` by the
    calibrator, which knows the boundaries).
    """

    field: str
    value: float
    start_day: int = 0

    def __post_init__(self) -> None:
        if self.field not in _PARAM_FIELD_TYPES:
            raise ValueError(
                f"unknown DiseaseParameters field {self.field!r}")
        value = float(self.value)
        if not math.isfinite(value):
            raise ValueError(f"override value for {self.field!r} must be "
                             f"finite, got {self.value!r}")
        if int(self.start_day) < 0:
            raise ValueError("start_day must be >= 0")
        if self.start_day > 0 and self.field not in _RESTART_FIELDS:
            raise ValueError(
                f"override of {self.field!r} at day {self.start_day}: only "
                f"the checkpoint-restart knobs {sorted(_RESTART_FIELDS)} "
                "can change mid-run; structural fields need start_day=0")
        if _PARAM_FIELD_TYPES[self.field] == "int" and value != int(value):
            raise ValueError(
                f"{self.field!r} is an integer field; got {self.value!r}")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "start_day", int(self.start_day))

    def coerced(self) -> float | int:
        """The value in the field's own type."""
        if _PARAM_FIELD_TYPES[self.field] == "int":
            return int(self.value)
        return self.value

    def to_dict(self) -> dict[str, object]:
        return {"field": self.field, "value": self.value,
                "start_day": self.start_day}


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, validated, canonically ordered set of overrides.

    Overrides are stored sorted by ``(start_day, field)`` (so equal specs
    compare equal however they were written) and no two overrides may
    share a ``(field, start_day)`` pair.  ``independent_streams`` opts out
    of the common-random-numbers default — see the module docstring.
    """

    name: str
    description: str = ""
    overrides: tuple[ScenarioOverride, ...] = ()
    independent_streams: bool = False

    def __post_init__(self) -> None:
        if not self.name or not all(
                (c.isascii() and c.isalnum()) or c in "_-"
                for c in self.name):
            raise ValueError(
                f"scenario name must be a non-empty [a-zA-Z0-9_-] slug, "
                f"got {self.name!r}")
        ordered = tuple(sorted(self.overrides,
                               key=lambda o: (o.start_day, o.field)))
        seen: set[tuple[str, int]] = set()
        for override in ordered:
            key = (override.field, override.start_day)
            if key in seen:
                raise ValueError(
                    f"scenario {self.name!r} overrides {override.field!r} "
                    f"twice at day {override.start_day}")
            seen.add(key)
        object.__setattr__(self, "overrides", ordered)

    @classmethod
    def from_field_schedule(cls, name: str, field: str,
                            schedule: PiecewiseConstant, *,
                            description: str = "",
                            independent_streams: bool = False
                            ) -> "ScenarioSpec":
        """One override per step of a piecewise-constant field schedule."""
        overrides = [ScenarioOverride(field=field,
                                      value=float(schedule.values[0]),
                                      start_day=0)]
        overrides.extend(
            ScenarioOverride(field=field, value=float(value),
                             start_day=int(day))
            for day, value in zip(schedule.breakpoints, schedule.values[1:]))
        return cls(name=name, description=description,
                   overrides=tuple(overrides),
                   independent_streams=independent_streams)

    @property
    def is_baseline(self) -> bool:
        """True when the spec changes nothing about a scenario-less run."""
        return not self.overrides and not self.independent_streams

    @property
    def stream_key(self) -> int:
        """Deterministic integer identity for independent-stream rooting."""
        return zlib.crc32(self.name.encode("utf-8"))

    def override_days(self) -> tuple[int, ...]:
        """Sorted distinct days at which some override takes effect."""
        return tuple(sorted({o.start_day for o in self.overrides}))

    def params_at(self, day: int,
                  base: DiseaseParameters) -> DiseaseParameters:
        """``base`` with every override whose ``start_day <= day`` applied.

        Later start days win per field (canonical ordering guarantees the
        application order).  With no reached overrides this returns
        ``base`` itself, bit-for-bit.
        """
        updates: dict[str, float | int] = {}
        for override in self.overrides:
            if override.start_day <= day:
                updates[override.field] = override.coerced()
        if not updates:
            return base
        return base.with_updates(**updates)

    def fingerprint_through(self, day: int
                            ) -> tuple[tuple[str, int, float], ...]:
        """Canonical identity of every override reached by ``day``.

        Two shared-stream scenarios with equal prefixes through a window's
        start day are *candidates* for sharing that window's world-line
        (the sweep keys lines on effective parameters, which is stronger —
        this is the cheap declarative form for audit and tests).
        """
        return tuple((o.field, o.start_day, o.value) for o in self.overrides
                     if o.start_day <= day)

    def fingerprint_payload(self) -> dict[str, object]:
        """JSON-stable identity for run fingerprints (checkpoint stores)."""
        return {"name": self.name,
                "independent_streams": self.independent_streams,
                "overrides": [o.to_dict() for o in self.overrides]}


class ScenarioRegistry:
    """Process-wide named-scenario registry.

    Same discipline as the stream-tag registry
    (:class:`~repro.seir.seeding.StreamDomainRegistry`): re-registering an
    *identical* spec is an idempotent no-op; rebinding a name to a
    different spec raises — a silently swapped scenario definition would
    change what stored results mean.
    """

    def __init__(self) -> None:
        self._specs: dict[str, ScenarioSpec] = {}

    def register(self, spec: ScenarioSpec) -> ScenarioSpec:
        existing = self._specs.get(spec.name)
        if existing is not None:
            if existing == spec:
                return existing
            raise ValueError(
                f"scenario {spec.name!r} is already registered with a "
                "different definition; scenario names cannot be rebound")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ScenarioSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; registered: "
                f"{self.names()}") from None

    def names(self) -> list[str]:
        """Registered names, sorted (the canonical scenario ordering)."""
        return sorted(self._specs)

    def specs(self) -> list[ScenarioSpec]:
        """Registered specs in canonical (name-sorted) order."""
        return [self._specs[name] for name in self.names()]

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self.specs())


SCENARIOS = ScenarioRegistry()


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Register ``spec`` in the process-wide registry (see the class)."""
    return SCENARIOS.register(spec)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    return SCENARIOS.get(name)


# --------------------------------------------------------------------------- #
# Built-in scenarios.  Mid-run start days (34, 48) sit on the paper
# schedule's continuation window boundaries (breaks 20/34/48/62/76).
# --------------------------------------------------------------------------- #
BASELINE = register_scenario(ScenarioSpec(
    name="baseline",
    description="the calibration exactly as configured; no overrides"))

MILDER_VARIANT_D34 = register_scenario(ScenarioSpec(
    name="milder_variant_d34",
    description="a milder variant dominates from day 34 "
                "(mild_fraction 0.92 -> 0.97)",
    overrides=(ScenarioOverride(field="mild_fraction", value=0.97,
                                start_day=34),)))

LATE_INTERVENTION_D48 = register_scenario(ScenarioSpec(
    name="late_intervention_d48",
    description="strict isolation of detected cases from day 48 "
                "(detected_rel_infectiousness 0.15 -> 0.05)",
    overrides=(ScenarioOverride(field="detected_rel_infectiousness",
                                value=0.05, start_day=48),)))

RELAXED_DETECTION_D48 = register_scenario(ScenarioSpec(
    name="relaxed_detection_d48",
    description="isolation compliance erodes from day 48 "
                "(detected_rel_infectiousness 0.15 -> 0.30)",
    overrides=(ScenarioOverride(field="detected_rel_infectiousness",
                                value=0.30, start_day=48),)))

SCENARIO_SETS: dict[str, tuple[str, ...]] = {
    "default": ("baseline", "milder_variant_d34", "late_intervention_d48",
                "relaxed_detection_d48"),
}


def scenario_set(name: str) -> list[ScenarioSpec]:
    """Resolve a named scenario set to specs in canonical order."""
    try:
        members = SCENARIO_SETS[name]
    except KeyError:
        raise KeyError(f"unknown scenario set {name!r}; available: "
                       f"{sorted(SCENARIO_SETS)}") from None
    return [get_scenario(member) for member in sorted(members)]


# --------------------------------------------------------------------------- #
# The sweep driver
# --------------------------------------------------------------------------- #
def _resolve_specs(scenarios: Sequence[ScenarioSpec | str]
                   ) -> list[ScenarioSpec]:
    specs = [get_scenario(s) if isinstance(s, str) else s for s in scenarios]
    by_name: dict[str, ScenarioSpec] = {}
    for spec in specs:
        if spec.name in by_name and by_name[spec.name] != spec:
            raise ValueError(
                f"two different scenarios both named {spec.name!r}")
        by_name[spec.name] = spec
    if not by_name:
        raise ValueError("need at least one scenario")
    return [by_name[name] for name in sorted(by_name)]


class ScenarioSweep:
    """Calibrate S scenarios as one vectorized, deduplicated sweep.

    Construction mirrors :class:`~repro.core.smc.SequentialCalibrator`
    plus a ``scenarios`` sequence (specs or registered names; duplicates
    collapse; execution order is canonical name order, so per-scenario
    results never depend on the order scenarios were requested in).  One
    calibrator per scenario shares the executor and config.

    Each scenario's windows are **bit-identical to running that scenario
    alone** with the same config and shard layout: per-scenario RNG roots
    don't depend on the sweep (common random numbers by default), shard
    RNG streams are keyed by seed slices rather than dispatch positions,
    and the world-line partition only ever merges windows that are
    provably identical.  ``computed_windows`` / ``reused_windows`` count
    how much the deduplication saved.
    """

    def __init__(self, base_params: DiseaseParameters,
                 prior: IndependentProduct,
                 jitter: JointJitter,
                 observation_model: ObservationModel,
                 schedule: WindowSchedule,
                 scenarios: Sequence[ScenarioSpec | str],
                 config: SMCConfig | None = None,
                 executor: Executor | None = None,
                 param_map: Mapping[str, str] | None = None,
                 progress: Callable[[str], None] | None = None) -> None:
        self.specs = _resolve_specs(scenarios)
        self.config = config or SMCConfig()
        self._progress = progress or (lambda _msg: None)
        self.calibrators: dict[str, SequentialCalibrator] = {}
        for spec in self.specs:
            prefix = f"[{spec.name}] "
            self.calibrators[spec.name] = SequentialCalibrator(
                base_params=base_params, prior=prior, jitter=jitter,
                observation_model=observation_model, schedule=schedule,
                config=self.config, executor=executor, param_map=param_map,
                progress=(lambda msg, _p=prefix: self._progress(_p + msg)),
                scenario=spec)
        first = self.calibrators[self.specs[0].name]
        self.schedule = first.schedule
        self.executor = first.executor
        #: Windows actually simulated vs windows served from another
        #: scenario's identical world-line; updated by :meth:`run`.
        self.computed_windows = 0
        self.reused_windows = 0
        #: Per-scenario resume point (see ``SequentialCalibrator.resumed_from``).
        self.resumed_from: dict[str, int | None] = {}

    @property
    def names(self) -> list[str]:
        """Scenario names in canonical (execution) order."""
        return [spec.name for spec in self.specs]

    def _line_key(self, spec: ScenarioSpec, calib: SequentialCalibrator,
                  window_start: int, lineage: object,
                  plans: tuple[int, int]) -> tuple[object, ...]:
        """Hashable world-line identity for one scenario's next window.

        Scenarios sharing a key get bit-identical windows: same stream
        root (independent-stream scenarios are keyed by their own root and
        so never share), same *effective* window parameters (stronger than
        equal override declarations), same lineage token (they shared
        every window so far — diverged lines never re-merge), same size
        plans.
        """
        if spec.independent_streams:
            stream_root: tuple[object, ...] = ("independent", spec.stream_key)
        else:
            stream_root = ("shared",)
        effective = spec.params_at(window_start, calib.base_params)
        return (stream_root, tuple(sorted(effective.to_dict().items())),
                lineage, plans)

    def run(self, observations: ObservationSet, *,
            stores: Mapping[str, CheckpointStore] | None = None,
            resume: bool = False) -> dict[str, list[WindowResult]]:
        """Calibrate every scenario; returns per-scenario window results.

        With ``stores`` (scenario name -> :class:`CheckpointStore`), each
        scenario persists/resumes exactly as a standalone
        :meth:`SequentialCalibrator.run` would against its own store —
        fingerprints include the scenario identity, so a store written for
        one scenario refuses another.  Scenarios restored to different
        depths rejoin the sweep at their own next window (restored
        prefixes are conservatively never world-line-shared).
        """
        if resume and stores is None:
            raise ValueError("resume=True requires per-scenario stores")
        names = self.names
        if stores is not None:
            missing = [n for n in names if n not in stores]
            if missing:
                raise ValueError(f"no checkpoint store for scenarios "
                                 f"{missing}")
        for name in names:
            self.calibrators[name]._check_coverage(observations)
        windows = list(self.schedule)
        results: dict[str, list[WindowResult]] = {n: [] for n in names}
        start_index = {n: 0 for n in names}
        plans: dict[str, tuple[int, int]] = {
            n: (self.config.continuation_ensemble_size,
                self.config.resample_size) for n in names}
        lineage: dict[str, object] = {n: "fresh" for n in names}
        self.resumed_from = {n: None for n in names}
        self.computed_windows = 0
        self.reused_windows = 0

        if stores is not None:
            for name in names:
                calib = self.calibrators[name]
                stores[name].validate_run_meta(calib.run_fingerprint())
                if not resume:
                    continue
                restored = calib._restore_results(stores[name], windows)
                if restored:
                    results[name] = restored
                    start_index[name] = len(restored)
                    calib.resumed_from = restored[-1].index
                    self.resumed_from[name] = restored[-1].index
                    plans[name] = calib._replay_policies(restored, windows)
                    # A restored posterior is this scenario's own object;
                    # never line-share a window built on restored state.
                    lineage[name] = ("restored", name)
                    self._progress(
                        f"[{name}] resuming after window "
                        f"{restored[-1].index}")

        for index, window in enumerate(windows):
            active = [n for n in names if start_index[n] <= index]
            if not active:
                continue
            lines: dict[tuple[object, ...], list[str]] = {}
            for name in active:
                key = self._line_key(
                    self._spec_of(name), self.calibrators[name],
                    window.start_day, lineage[name], plans[name])
                lines.setdefault(key, []).append(name)
            line_members = list(lines.values())
            self._progress(
                f"window {index}: {len(line_members)} world-line(s) for "
                f"{len(active)} scenario(s)"
                + (f", {len(active) - len(line_members)} reused"
                   if len(active) > len(line_members) else ""))
            line_results = self._run_lines(index, window, observations,
                                           results, plans, line_members)
            self.computed_windows += len(line_members)
            self.reused_windows += len(active) - len(line_members)
            for ordinal, members in enumerate(line_members):
                result = line_results[ordinal]
                for name in members:
                    results[name].append(result)
                    lineage[name] = (index, ordinal)
                    if stores is not None:
                        self.calibrators[name].persist_window(
                            stores[name], result)
                    if index + 1 < len(windows):
                        plans[name] = self.calibrators[
                            name].planned_sizes_after(
                            result, next_window_days=windows[index + 1].n_days)
                self._progress(
                    f"[{members[0]}] window {index} ({window.label()}): "
                    f"ESS {result.diagnostics.ess:.1f}/"
                    f"{result.diagnostics.n_particles}"
                    + (f" (shared by {', '.join(members[1:])})"
                       if len(members) > 1 else ""))
        return results

    def _spec_of(self, name: str) -> ScenarioSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def _run_lines(self, index: int, window: TimeWindow,
                   observations: ObservationSet,
                   results: dict[str, list[WindowResult]],
                   plans: dict[str, tuple[int, int]],
                   line_members: list[list[str]]) -> list[WindowResult]:
        """Compute one window for every world-line (reps only).

        Batched configs flatten every line's group specs into one
        :func:`~repro.hpc.sharding.simulate_group_sets` dispatch; scalar
        configs fall back to per-line ``step_window`` (still deduplicated,
        just not co-dispatched).
        """
        reps = [members[0] for members in line_members]
        posteriors: list[ParticleEnsemble | None] = [
            results[rep][-1].posterior if index > 0 else None
            for rep in reps]
        if not self.config.uses_batched_simulation:
            return [
                self.calibrators[rep].step_window(
                    index, window, observations, posterior,
                    n_proposals=plans[rep][0], resample_size=plans[rep][1])
                for rep, posterior in zip(reps, posteriors)]
        pendings: list[PendingWindow] = []
        for rep, posterior in zip(reps, posteriors):
            pendings.append(self.calibrators[rep].propose_window(
                index, window, posterior, n_proposals=plans[rep][0]))
        # One flattened dispatch across every line; shard RNG is keyed by
        # seed slices, so each line's shards are bit-identical to a lone
        # dispatch.
        layout = self.calibrators[reps[0]]._shard_layout_kwargs()
        shard_sets = simulate_group_sets(
            self.executor, [p.specs for p in pendings],
            end_day=window.end_day, engine=self.config.engine,
            engine_options=self.config.engine_options,
            retry=self.config.retry,
            on_failures=[self.calibrators[rep]._on_shard_failure
                         for rep in reps],
            **layout)
        out: list[WindowResult] = []
        for rep, pending, shards in zip(reps, pendings, shard_sets):
            calib = self.calibrators[rep]
            ensemble = calib.assemble_window(pending, shards)
            out.append(calib.weigh_window(
                index, window, ensemble, observations,
                sim_days=pending.sim_days,
                resample_size=plans[rep][1]))
        return out
