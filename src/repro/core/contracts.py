"""Runtime shape/dtype contracts for batched hot paths.

The batched engines and weight kernels pass large arrays whose axis
conventions (members × compartments, members × days, flat particle vectors)
live only in docstrings.  :func:`shaped` turns those conventions into
checkable contracts::

    @shaped(thetas="(n_members,) float", returns="(n_members, n_comp) int")
    def _substep(self, thetas, dt): ...

Contracts are **free in production**: activation is decided once, at
decoration time, from the ``REPRO_CHECK_CONTRACTS`` environment variable.
With the flag unset the decorator returns the function object unchanged —
no wrapper frame, no per-call branch, bit-identical bytecode — so the
default path pays nothing.  Run the suite as::

    REPRO_CHECK_CONTRACTS=1 python -m pytest -x -q

to execute every contract.

Spec mini-language
------------------
A spec is ``"(dim, dim, ...)"`` optionally followed by a dtype word:

* an integer dimension (``"(3,)"``) must match exactly;
* ``_`` matches any size;
* a name (``n_members``) must be consistent across *all* specs bound in
  one call — parameters and return alike — so cross-argument agreement
  (weights as long as values, one row per member) is part of the contract;
* dtype words: ``int``/``float``/``bool``/``complex`` check the numpy
  *kind* (``int32`` and ``int64`` both satisfy ``int``); anything else
  (``int64``, ``float32``...) must match the exact dtype.

``returns=`` takes one spec, or a tuple of specs for tuple returns (use
``None`` to skip an element).  The functional form :func:`check_shaped`
serves validation sites that are not function boundaries (e.g. dataclass
``__post_init__``) and checks its flag live rather than at import.
"""

from __future__ import annotations

import functools
import inspect
import os
import re
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

__all__ = ["CONTRACTS_ENV", "ContractError", "check_shaped",
           "contracts_active", "shaped"]

#: Environment variable that switches contract checking on.
CONTRACTS_ENV = "REPRO_CHECK_CONTRACTS"

_F = TypeVar("_F", bound=Callable[..., Any])

#: dtype words checked by *kind* rather than exact dtype.
_DTYPE_KINDS: dict[str, type] = {
    "int": np.integer, "float": np.floating, "bool": np.bool_,
    "complex": np.complexfloating,
}

_SPEC_RE = re.compile(r"^\(\s*(?P<dims>[^)]*)\)\s*(?P<dtype>\w+)?\s*$")


class ContractError(ValueError):
    """A value violated its declared shape/dtype contract.

    Subclasses :class:`ValueError` so code (and tests) that treat bad
    array inputs as value errors behave identically whether the contract
    or the function's own validation trips first.
    """


def contracts_active() -> bool:
    """True when ``REPRO_CHECK_CONTRACTS`` requests checking."""
    return os.environ.get(CONTRACTS_ENV, "").strip().lower() not in (
        "", "0", "false", "off", "no")


@functools.lru_cache(maxsize=None)
def _parse_spec(spec: str) -> tuple[tuple[str, ...], str | None]:
    """``"(n, 3) int64"`` -> (("n", "3"), "int64")."""
    match = _SPEC_RE.match(spec.strip())
    if match is None:
        raise ValueError(f"malformed shape spec {spec!r}; expected "
                         "'(dim, dim, ...) [dtype]'")
    dims_text = match.group("dims").strip()
    dims = tuple(d.strip() for d in dims_text.split(",") if d.strip()) \
        if dims_text else ()
    return dims, match.group("dtype")


def _check_value(name: str, value: Any, spec: str,
                 dims: dict[str, int], where: str) -> None:
    expected_dims, dtype_word = _parse_spec(spec)
    arr = np.asarray(value)
    if arr.ndim != len(expected_dims):
        raise ContractError(
            f"{where}: {name} has shape {arr.shape} "
            f"({arr.ndim}-d), contract requires {len(expected_dims)}-d "
            f"{spec!r}")
    for axis, (dim, size) in enumerate(zip(expected_dims, arr.shape)):
        if dim == "_":
            continue
        if dim.lstrip("+-").isdigit():
            if size != int(dim):
                raise ContractError(
                    f"{where}: {name} axis {axis} has size {size}, "
                    f"contract pins it to {dim}")
        else:
            bound = dims.setdefault(dim, size)
            if size != bound:
                raise ContractError(
                    f"{where}: {name} axis {axis} has size {size}, but "
                    f"dimension {dim!r} was already bound to {bound} in "
                    "this call")
    if dtype_word is not None:
        kind = _DTYPE_KINDS.get(dtype_word)
        if kind is not None:
            if not np.issubdtype(arr.dtype, kind):
                raise ContractError(
                    f"{where}: {name} has dtype {arr.dtype}, contract "
                    f"requires kind {dtype_word!r}")
        elif arr.dtype != np.dtype(dtype_word):
            raise ContractError(
                f"{where}: {name} has dtype {arr.dtype}, contract "
                f"requires {dtype_word!r}")


def check_shaped(value: Any, spec: str, *, name: str = "value",
                 dims: dict[str, int] | None = None,
                 where: str = "check_shaped") -> Any:
    """Validate one value against a spec (no-op when the flag is off).

    Pass a shared ``dims`` dict to tie named dimensions across several
    calls (e.g. the fields of one dataclass).  Returns ``value`` so the
    check can sit inline in an assignment.
    """
    if contracts_active():
        _check_value(name, value, spec, {} if dims is None else dims, where)
    return value


def shaped(returns: str | Sequence[str | None] | None = None,
           **param_specs: str) -> Callable[[_F], _F]:
    """Declare shape/dtype contracts on a function's arrays.

    When ``REPRO_CHECK_CONTRACTS`` is unset at import, the decorated
    function is returned unchanged (zero overhead); otherwise every call
    validates the named parameters and the return value, with named
    dimensions bound consistently across all of them.
    """
    def decorate(fn: _F) -> _F:
        if not contracts_active():
            return fn
        signature = inspect.signature(fn)
        for param in param_specs:
            if param not in signature.parameters:
                raise ValueError(
                    f"@shaped on {fn.__qualname__}: no parameter named "
                    f"{param!r}")
        where = fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()
            dims: dict[str, int] = {}
            for param, spec in param_specs.items():
                _check_value(param, bound.arguments[param], spec, dims,
                             where)
            result = fn(*args, **kwargs)
            if returns is not None:
                if isinstance(returns, str):
                    _check_value("return", result, returns, dims, where)
                else:
                    _check_return_tuple(result, returns, dims, where)
            return result

        return wrapper  # type: ignore[return-value]

    return decorate


def _check_return_tuple(result: Any, specs: Sequence[str | None],
                        dims: dict[str, int], where: str) -> None:
    if not isinstance(result, tuple) or len(result) != len(specs):
        got = (f"{len(result)}-tuple" if isinstance(result, tuple)
               else type(result).__name__)
        raise ContractError(
            f"{where}: return contract expects a {len(specs)}-tuple, "
            f"got {got}")
    for i, (item, spec) in enumerate(zip(result, specs)):
        if spec is not None:
            _check_value(f"return[{i}]", item, spec, dims, where)
