"""Adaptive extensions addressing the paper's section VI concerns.

The discussion section flags two operational risks of the plain SIS scheme:
weights "concentrating on just a few draws", and posteriors drifting away
from reality when proposals cannot reach it.  This module implements the
standard SMC counter-measures as composable utilities:

* :func:`tempered_weight_schedule` / :class:`TemperedWindowSampler` —
  likelihood tempering *within* a window: instead of one jump from prior to
  posterior, the likelihood is raised through exponents
  ``0 < beta_1 < ... < beta_K = 1`` chosen adaptively so each bridging step
  keeps the ESS above a floor.  (No re-simulation is needed: the tempering
  reuses the window's simulated trajectories, reweighting and resampling
  among them.)
* :func:`adaptive_jitter_width` — scales the next window's jitter kernels to
  the current posterior spread (a Silverman-style rule), so proposals widen
  automatically when the posterior is diffuse and sharpen when it has
  converged.
* :func:`ess_triggered_resample` — classic conditional resampling: only
  resample when the ESS fraction drops below a threshold, otherwise carry
  weights forward (reduces unnecessary resampling noise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .resampling import get_resampler
from .weights import effective_sample_size, normalize_log_weights

__all__ = ["tempered_weight_schedule", "TemperedResult",
           "temper_and_resample", "adaptive_jitter_width",
           "ess_triggered_resample"]


def tempered_weight_schedule(log_lik: np.ndarray, *,
                             ess_floor_fraction: float = 0.5,
                             max_stages: int = 64) -> list[float]:
    """Choose tempering exponents adaptively by bisection.

    Starting from ``beta = 0``, each stage advances the exponent as far as
    possible while the *incremental* weights ``exp((beta' - beta) L)`` keep
    the ESS above ``ess_floor_fraction`` of the ensemble size.  Returns the
    increasing list of exponents ending at exactly 1.0.
    """
    if not 0 < ess_floor_fraction < 1:
        raise ValueError("ess_floor_fraction must be in (0, 1)")
    ll = np.asarray(log_lik, dtype=np.float64)
    if ll.ndim != 1 or ll.size == 0:
        raise ValueError("log_lik must be a non-empty 1-d array")
    n = ll.size
    target = ess_floor_fraction * n

    schedule: list[float] = []
    beta = 0.0
    for _ in range(max_stages):
        if _incremental_ess(ll, beta, 1.0) >= target:
            schedule.append(1.0)
            return schedule
        lo, hi = beta, 1.0
        for _ in range(50):  # bisection on the increment
            mid = 0.5 * (lo + hi)
            if _incremental_ess(ll, beta, mid) >= target:
                lo = mid
            else:
                hi = mid
        # Guarantee forward progress even for pathological likelihoods.
        beta = max(lo, beta + 1e-4)
        beta = min(beta, 1.0)
        schedule.append(beta)
        if beta >= 1.0:
            return schedule
    schedule.append(1.0)
    return schedule


def _incremental_ess(ll: np.ndarray, beta_from: float, beta_to: float) -> float:
    return effective_sample_size(
        normalize_log_weights((beta_to - beta_from) * ll))


@dataclass(frozen=True)
class TemperedResult:
    """Outcome of a tempered within-window resampling pass."""

    indices: np.ndarray
    schedule: tuple[float, ...]
    stage_ess: tuple[float, ...]

    @property
    def n_stages(self) -> int:
        return len(self.schedule)


def temper_and_resample(log_lik: np.ndarray, n_out: int,
                        rng: np.random.Generator, *,
                        ess_floor_fraction: float = 0.5,
                        resampler: str = "systematic") -> TemperedResult:
    """Bridge from the prior ensemble to the posterior through tempering.

    Returns ancestor indices into the original ensemble after the staged
    reweight/resample passes.  With a single stage this reduces exactly to
    the plain SIS resampling step.
    """
    ll = np.asarray(log_lik, dtype=np.float64)
    schedule = tempered_weight_schedule(ll, ess_floor_fraction=ess_floor_fraction)
    sampler = get_resampler(resampler)

    current = np.arange(ll.size)
    beta_prev = 0.0
    stage_ess = []
    for beta in schedule:
        incremental = (beta - beta_prev) * ll[current]
        w = normalize_log_weights(incremental)
        stage_ess.append(effective_sample_size(w))
        size = n_out if beta >= 1.0 else ll.size
        picks = sampler(w, size, rng)
        current = current[picks]
        beta_prev = beta
    return TemperedResult(indices=current, schedule=tuple(schedule),
                          stage_ess=tuple(stage_ess))


def adaptive_jitter_width(posterior_values: np.ndarray, *,
                          floor: float = 1e-3,
                          scale: float = 1.0) -> float:
    """Jitter half-width from the posterior sample spread.

    Uses the Silverman-style bandwidth ``1.06 sigma n^{-1/5}`` (with the
    robust sigma = min(sd, IQR/1.34)), multiplied by ``scale``.  A diffuse
    posterior explores widely next window; a concentrated one refines.
    """
    v = np.asarray(posterior_values, dtype=np.float64)
    if v.ndim != 1 or v.size < 2:
        raise ValueError("need at least two posterior values")
    sd = float(np.std(v))
    q75, q25 = np.percentile(v, [75, 25])
    robust = min(sd, (q75 - q25) / 1.34) if q75 > q25 else sd
    width = 1.06 * robust * v.size ** (-0.2) * scale
    return max(float(width), floor)


def ess_triggered_resample(log_weights: np.ndarray, n_out: int,
                           rng: np.random.Generator, *,
                           threshold_fraction: float = 0.5,
                           resampler: str = "systematic",
                           ) -> tuple[np.ndarray, np.ndarray, bool]:
    """Resample only when ESS drops below the threshold.

    Returns ``(indices, new_log_weights, resampled)``: when the ESS is
    healthy, indices are the identity and the log-weights pass through so
    they keep accumulating across windows; when degenerate, the ensemble is
    resampled and weights reset to zero (uniform).

    Because a healthy ensemble passes through untouched, the output size is
    necessarily ``len(log_weights)`` in that case; asking for a different
    ``n_out`` is a contract violation (it would force a resample the ESS
    does not justify) and raises ``ValueError`` instead of silently
    resampling.  Callers that need to change the ensemble size regardless of
    weight health should resample explicitly via
    :func:`~repro.core.resampling.get_resampler` or
    :func:`temper_and_resample`.
    """
    if not 0 < threshold_fraction <= 1:
        raise ValueError("threshold_fraction must be in (0, 1]")
    lw = np.asarray(log_weights, dtype=np.float64)
    w = normalize_log_weights(lw)
    ess = effective_sample_size(w)
    if ess >= threshold_fraction * lw.size:
        if n_out != lw.size:
            raise ValueError(
                f"ESS {ess:.1f} is above the resampling threshold, so the "
                f"ensemble passes through at its current size {lw.size}; "
                f"resampling it to {n_out} is not a conditional-resampling "
                "decision — resample explicitly instead")
        return np.arange(lw.size), lw.copy(), False
    indices = get_resampler(resampler)(w, n_out, rng)
    return indices, np.zeros(n_out), True
