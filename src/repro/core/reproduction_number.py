"""Effective reproduction number estimation from posterior trajectories.

The paper's related-work section reviews a line of research on estimating
R_t from imperfect case data (Gostic et al., White & Pagano, Parag et al.).
This module closes that loop for the reproduction: once the SMC has produced
a posterior over (theta, trajectories), two R_t views are available:

* :func:`model_rt` — the *mechanistic* R_t implied by a particle: theta times
  the expected infectious person-days per infection times the current
  susceptible fraction.  Exact within the model, available per particle, so
  the posterior gives credible bands on R_t directly.
* :func:`cori_rt` — the classic Cori et al. (2013) incidence-ratio
  estimator, computable from any (true or reported) case series with an
  assumed serial-interval distribution.  Running it on *reported* counts
  demonstrates the bias that motivates the paper's joint (theta, rho)
  estimation; running it on posterior true-case trajectories gives a
  data-driven cross-check of :func:`model_rt`.
"""

from __future__ import annotations

import numpy as np

from ..data.series import TimeSeries
from ..seir.outputs import Trajectory
from ..seir.parameters import DiseaseParameters

__all__ = ["mean_infectious_days", "model_rt", "cori_rt",
           "discretised_serial_interval"]


def mean_infectious_days(params: DiseaseParameters) -> float:
    """Expected infectiousness-weighted person-days per infection.

    The pathway expectation underlying R0 = theta * this quantity (ignores
    detection, which shortens effective infectiousness — so slightly
    conservative, matching
    :meth:`~repro.seir.parameters.DiseaseParameters.basic_reproduction_number`).
    """
    p = params
    sigma = p.exposed_to_presymptomatic_fraction
    return (
        (1.0 - sigma) * p.asymptomatic_rel_infectiousness * p.asymptomatic_period_days
        + sigma * p.presymptomatic_period_days
        + sigma * p.mild_fraction * p.mild_period_days
        + sigma * (1.0 - p.mild_fraction) * p.severe_period_days
    )


def model_rt(trajectory: Trajectory, params: DiseaseParameters,
             theta: float | np.ndarray) -> TimeSeries:
    """Mechanistic effective reproduction number along one trajectory.

    ``R_t = theta_t * D * S_t / N`` with D the mean infectious person-days
    and ``S_t`` reconstructed from cumulative incidence (closed population:
    S_t = N - initial_exposed - cumulative infections).

    ``theta`` may be a scalar (a particle's transmission rate) or a per-day
    array (a ground-truth schedule evaluated on the day axis).
    """
    n_days = len(trajectory)
    if n_days == 0:
        raise ValueError("empty trajectory")
    theta_arr = np.broadcast_to(np.asarray(theta, dtype=np.float64),
                                (n_days,))
    cum_infections = np.cumsum(trajectory.infections)
    susceptible = (params.population - params.initial_exposed
                   - np.concatenate([[0.0], cum_infections[:-1]]))
    susceptible = np.maximum(susceptible, 0.0)
    rt = theta_arr * mean_infectious_days(params) * susceptible / params.population
    return TimeSeries(trajectory.start_day, rt, name="model_rt")


def discretised_serial_interval(mean_days: float = 6.5, sd_days: float = 3.0,
                                max_days: int = 21) -> np.ndarray:
    """Discretised gamma serial-interval pmf over days 1..max_days.

    Defaults match common COVID-19 estimates (mean ~6.5 d).
    """
    if mean_days <= 0 or sd_days <= 0 or max_days < 1:
        raise ValueError("serial-interval parameters must be positive")
    shape = (mean_days / sd_days) ** 2
    scale = sd_days ** 2 / mean_days
    from scipy import stats
    # Midpoint binning: day s collects the gamma mass on [s-0.5, s+0.5)
    # (day 1 additionally absorbs [0, 0.5) so no mass is lost), keeping the
    # discretised mean aligned with the continuous one.
    edges = np.concatenate([[0.0], np.arange(1.5, max_days + 1.5)])
    cdf = stats.gamma.cdf(edges, a=shape, scale=scale)
    pmf = np.diff(cdf)
    total = pmf.sum()
    if total <= 0:
        raise ValueError("degenerate serial interval")
    return pmf / total


def cori_rt(incidence: TimeSeries, *,
            serial_interval: np.ndarray | None = None,
            window_days: int = 7,
            epsilon: float = 0.5) -> TimeSeries:
    """Cori et al. (2013) instantaneous reproduction number.

    ``R_t = (sum of incidence over the trailing window) / (sum of the
    corresponding total infectiousness Lambda_t)`` with
    ``Lambda_t = sum_s w_s I_{t-s}``.  Days whose window lacks any history
    are reported as NaN; ``epsilon`` floors Lambda to avoid division blowups
    at near-zero incidence.
    """
    if window_days < 1:
        raise ValueError("window_days must be >= 1")
    w = serial_interval if serial_interval is not None \
        else discretised_serial_interval()
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 1 or w.size == 0 or np.any(w < 0):
        raise ValueError("serial interval must be a non-negative pmf")
    incidence_values = np.asarray(incidence.values, dtype=np.float64)
    n = incidence_values.size
    lam = np.full(n, np.nan)
    for t in range(1, n):
        s_max = min(t, w.size)
        lam[t] = float(w[:s_max] @ incidence_values[t - 1::-1][:s_max])

    rt = np.full(n, np.nan)
    for t in range(window_days, n):
        num = float(incidence_values[t - window_days + 1:t + 1].sum())
        den = float(np.nansum(lam[t - window_days + 1:t + 1]))
        rt[t] = num / max(den, epsilon)
    return TimeSeries(incidence.start_day, rt, name="cori_rt")
