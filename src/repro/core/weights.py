"""Importance-weight arithmetic in log space.

All weights in the library are carried as unnormalised log-weights until the
moment they are needed as probabilities; normalisation goes through a stable
log-sum-exp.  This is the standard defence against the exponent underflow
that raw likelihood products suffer from (a 14-day Gaussian window easily
reaches ``exp(-500)``).
"""

from __future__ import annotations

import numpy as np

from .contracts import shaped

__all__ = ["logsumexp", "normalize_log_weights", "effective_sample_size",
           "ess_fraction", "weight_entropy", "weighted_mean",
           "weighted_quantile", "weighted_variance"]


def logsumexp(log_values: np.ndarray) -> float:
    """Stable ``log(sum(exp(v)))``; ``-inf`` for an all ``-inf`` input."""
    arr = np.asarray(log_values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("logsumexp of empty array")
    hi = float(np.max(arr))
    if hi == -np.inf:
        return -np.inf
    return hi + float(np.log(np.sum(np.exp(arr - hi))))


@shaped(log_weights="(n_particles,)", returns="(n_particles,) float64")
def normalize_log_weights(log_weights: np.ndarray) -> np.ndarray:
    """Convert log-weights to a normalised probability vector.

    Raises
    ------
    ValueError
        If every weight is zero (``-inf`` log-weight) — total particle
        degeneracy that the caller must handle explicitly.
    """
    arr = np.asarray(log_weights, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot normalise an empty weight vector")
    if np.any(np.isnan(arr)):
        raise ValueError("NaN log-weight encountered")
    total = logsumexp(arr)
    if total == -np.inf:
        raise ValueError(
            "all particles have zero weight; the proposal missed the data "
            "entirely (increase ensemble size or widen priors)")
    w = np.exp(arr - total)
    return w / w.sum()  # renormalise away rounding


@shaped(weights="(n_particles,)")
def effective_sample_size(weights: np.ndarray) -> float:
    """Kish effective sample size ``1 / sum(w_i^2)`` of normalised weights."""
    w = np.asarray(weights, dtype=np.float64)
    if w.size == 0:
        raise ValueError("empty weight vector")
    total_sq = float(np.sum(w * w))
    if total_sq <= 0.0:
        raise ValueError("weights must not be all zero")
    return 1.0 / total_sq


def ess_fraction(weights: np.ndarray) -> float:
    """ESS as a fraction of the ensemble size (degeneracy monitor)."""
    w = np.asarray(weights)
    return effective_sample_size(w) / w.size


def weight_entropy(weights: np.ndarray) -> float:
    """Shannon entropy of normalised weights (nats).

    ``log(n)`` for uniform weights, 0 when one particle carries everything.
    """
    w = np.asarray(weights, dtype=np.float64)
    nz = w[w > 0]
    return float(-np.sum(nz * np.log(nz)))


@shaped(values="(n_particles,)", weights="(n_particles,)")
def weighted_mean(values: np.ndarray, weights: np.ndarray) -> float:
    """Mean of ``values`` under normalised weights."""
    v = np.asarray(values, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    if v.shape != w.shape:
        raise ValueError("values and weights must have the same shape")
    return float(np.sum(v * w))


def weighted_variance(values: np.ndarray, weights: np.ndarray) -> float:
    """Variance of ``values`` under normalised weights."""
    mu = weighted_mean(values, weights)
    v = np.asarray(values, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    return float(np.sum(w * (v - mu) ** 2))


@shaped(values="(n_particles,)", weights="(n_particles,)")
def weighted_quantile(values: np.ndarray, weights: np.ndarray,
                      q: float | np.ndarray) -> np.ndarray | float:
    """Quantiles of a weighted sample (inverse-CDF convention).

    ``q`` may be a scalar or an array of probabilities in [0, 1].
    """
    v = np.asarray(values, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    if v.shape != w.shape:
        raise ValueError("values and weights must have the same shape")
    if v.size == 0:
        raise ValueError("empty sample")
    # np.isscalar is False for 0-d arrays, which must still collapse to a
    # python float; np.ndim covers both.
    scalar_q = np.ndim(q) == 0
    q_arr = np.atleast_1d(np.asarray(q, dtype=np.float64))
    if np.any((q_arr < 0) | (q_arr > 1)):
        raise ValueError("quantile probabilities must lie in [0, 1]")
    order = np.argsort(v, kind="stable")
    v_sorted = v[order]
    cdf = np.cumsum(w[order])
    if cdf[-1] <= 0.0:
        raise ValueError("weights must not be all zero")
    cdf /= cdf[-1]
    idx = np.searchsorted(cdf, q_arr, side="left")
    idx = np.clip(idx, 0, v.size - 1)
    out = v_sorted[idx]
    return float(out[0]) if scalar_q else out
