"""Likelihoods linking observed data to simulated trajectories.

The paper's observation model (eq. 2-4) is an independent Gaussian on
(square-root transformed) counts per day, per data source; the multi-source
posterior factorises as a product of per-source likelihoods (eq. 4), so the
log-likelihoods add.

:class:`GaussianTransformLikelihood` is the paper's choice (sqrt transform,
``sigma_t = 1``).  :class:`PoissonLikelihood` and
:class:`NegativeBinomialLikelihood` are provided for the likelihood ablation,
and :class:`MultiSourceLikelihood` implements the product over named sources
(cases alone for Fig 3/4; cases + deaths for Fig 5).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

import numpy as np
from scipy import stats

from ..data.series import TimeSeries
from .transforms import SQRT, Transform

__all__ = ["Likelihood", "GaussianTransformLikelihood", "PoissonLikelihood",
           "NegativeBinomialLikelihood", "MultiSourceLikelihood",
           "paper_likelihood"]


class Likelihood(ABC):
    """Scalar log-likelihood of one observed series given one simulated series."""

    @abstractmethod
    def loglik(self, observed: np.ndarray, simulated: np.ndarray) -> float:
        """Total log-likelihood over the window (sums the per-day terms)."""

    def loglik_batch(self, observed: np.ndarray,
                     simulated: np.ndarray) -> np.ndarray:
        """Log-likelihood of one observed window under a stack of simulations.

        Parameters
        ----------
        observed:
            ``(n_days,)`` observed counts.
        simulated:
            ``(n_particles, n_days)`` matrix of simulated observed counts.

        Returns
        -------
        ``(n_particles,)`` vector, row ``i`` equal to
        ``loglik(observed, simulated[i])`` up to floating-point reduction
        order.  This base implementation loops over rows; the concrete
        families override it with closed-form vectorised versions — the hot
        path of the ensemble weighting step.
        """
        y, eta = _check_batch_shapes(observed, simulated)
        return np.array([self.loglik(y, row) for row in eta])

    def loglik_series(self, observed: TimeSeries, simulated: TimeSeries) -> float:
        """:meth:`loglik` with day-axis alignment checks."""
        if observed.start_day != simulated.start_day or len(observed) != len(simulated):
            raise ValueError(
                f"series not aligned: observed [{observed.start_day}, "
                f"{observed.end_day}) vs simulated [{simulated.start_day}, "
                f"{simulated.end_day})")
        return self.loglik(observed.values, simulated.values)


def _check_shapes(observed: np.ndarray, simulated: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y = np.asarray(observed, dtype=np.float64)
    eta = np.asarray(simulated, dtype=np.float64)
    if y.shape != eta.shape:
        raise ValueError(f"shape mismatch: observed {y.shape} vs simulated {eta.shape}")
    if y.size == 0:
        raise ValueError("empty observation window")
    return y, eta


def _check_batch_shapes(observed: np.ndarray,
                        simulated: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y = np.asarray(observed, dtype=np.float64)
    eta = np.asarray(simulated, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError(f"observed must be 1-d, got shape {y.shape}")
    if eta.ndim != 2:
        raise ValueError(
            f"simulated must be (n_particles, n_days), got shape {eta.shape}")
    if eta.shape[1] != y.size:
        raise ValueError(
            f"day-axis mismatch: observed {y.size} days vs simulated {eta.shape[1]}")
    if y.size == 0:
        raise ValueError("empty observation window")
    return y, eta


class GaussianTransformLikelihood(Likelihood):
    """Independent Gaussian on transformed counts (the paper's eq. 3).

    ``log l = -n/2 log(2 pi sigma^2) - 1/(2 sigma^2) sum_t (T(y_t) - T(eta_t))^2``

    with ``T`` the square root and ``sigma = 1`` in the paper experiments.
    """

    def __init__(self, sigma: float = 1.0, transform: Transform = SQRT) -> None:
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.sigma = float(sigma)
        self.transform = transform

    def loglik(self, observed: np.ndarray, simulated: np.ndarray) -> float:
        y, eta = _check_shapes(observed, simulated)
        resid = self.transform(y) - self.transform(eta)
        n = resid.size
        return float(-0.5 * n * np.log(2.0 * np.pi * self.sigma**2)
                     - 0.5 * float(resid @ resid) / self.sigma**2)

    def loglik_batch(self, observed: np.ndarray,
                     simulated: np.ndarray) -> np.ndarray:
        y, eta = _check_batch_shapes(observed, simulated)
        resid = self.transform(y)[None, :] - self.transform(eta)
        n = y.size
        return (-0.5 * n * np.log(2.0 * np.pi * self.sigma**2)
                - 0.5 * np.einsum("ij,ij->i", resid, resid) / self.sigma**2)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GaussianTransformLikelihood(sigma={self.sigma}, "
                f"transform={self.transform.name!r})")


class PoissonLikelihood(Likelihood):
    """Exact Poisson pmf with the simulated counts as intensities.

    Zero intensities are floored at ``epsilon`` so an early-window simulated
    zero does not annihilate a particle that is otherwise consistent.
    """

    def __init__(self, epsilon: float = 0.5) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = float(epsilon)

    def loglik(self, observed: np.ndarray, simulated: np.ndarray) -> float:
        y, eta = _check_shapes(observed, simulated)
        lam = np.maximum(eta, self.epsilon)
        return float(np.sum(stats.poisson.logpmf(np.rint(y).astype(np.int64), lam)))

    def loglik_batch(self, observed: np.ndarray,
                     simulated: np.ndarray) -> np.ndarray:
        y, eta = _check_batch_shapes(observed, simulated)
        lam = np.maximum(eta, self.epsilon)
        counts = np.rint(y).astype(np.int64)[None, :]
        return np.sum(stats.poisson.logpmf(counts, lam), axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PoissonLikelihood(epsilon={self.epsilon})"


class NegativeBinomialLikelihood(Likelihood):
    """Negative binomial with dispersion ``k`` (variance ``m + m^2/k``).

    Interpolates between Poisson (``k -> inf``) and heavy overdispersion;
    the robust-likelihood ablation sweeps ``k``.
    """

    def __init__(self, dispersion: float = 10.0, epsilon: float = 0.5) -> None:
        if dispersion <= 0:
            raise ValueError("dispersion must be positive")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.dispersion = float(dispersion)
        self.epsilon = float(epsilon)

    def loglik(self, observed: np.ndarray, simulated: np.ndarray) -> float:
        y, eta = _check_shapes(observed, simulated)
        m = np.maximum(eta, self.epsilon)
        k = self.dispersion
        p = k / (k + m)
        return float(np.sum(stats.nbinom.logpmf(np.rint(y).astype(np.int64), k, p)))

    def loglik_batch(self, observed: np.ndarray,
                     simulated: np.ndarray) -> np.ndarray:
        y, eta = _check_batch_shapes(observed, simulated)
        m = np.maximum(eta, self.epsilon)
        k = self.dispersion
        p = k / (k + m)
        counts = np.rint(y).astype(np.int64)[None, :]
        return np.sum(stats.nbinom.logpmf(counts, k, p), axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NegativeBinomialLikelihood(dispersion={self.dispersion})"


class MultiSourceLikelihood:
    """Product of independent per-source likelihoods (paper eq. 4).

    Sources are named ("cases", "deaths", ...); each has its own likelihood
    object so noise scales can differ per stream.
    """

    def __init__(self, sources: Mapping[str, Likelihood]) -> None:
        if not sources:
            raise ValueError("need at least one source likelihood")
        self._sources = dict(sources)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._sources)

    def source(self, name: str) -> Likelihood:
        return self._sources[name]

    def loglik(self, observed: Mapping[str, np.ndarray],
               simulated: Mapping[str, np.ndarray]) -> float:
        """Sum of per-source log-likelihoods; every source must be present."""
        total = 0.0
        for name, lik in self._sources.items():
            if name not in observed:
                raise KeyError(f"missing observed series for source {name!r}")
            if name not in simulated:
                raise KeyError(f"missing simulated series for source {name!r}")
            total += lik.loglik(observed[name], simulated[name])
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v!r}" for k, v in self._sources.items())
        return f"MultiSourceLikelihood({inner})"


def paper_likelihood(sigma: float = 1.0) -> GaussianTransformLikelihood:
    """The paper's Gaussian-on-sqrt-counts likelihood with unit sigma."""
    return GaussianTransformLikelihood(sigma=sigma, transform=SQRT)
