"""Prior distributions for the calibration parameters.

The paper's first-window priors (section V-B) are

* ``theta ~ Uniform(0.1, 0.5)`` — the transmission rate, and
* ``rho ~ Beta(4, 1)`` — the reporting probability, a "strong informative
  prior" favouring high reporting.

The module provides a small distribution toolkit (sampling + log-density +
support) sufficient for the SIS weight algebra, plus an independent product
prior over named parameters.  Everything samples through an injected
``numpy`` generator so runs are reproducible end to end.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

import numpy as np
import numpy.typing as npt
from scipy import stats

__all__ = ["Distribution", "Uniform", "Beta", "LogNormal", "TruncatedNormal",
           "Dirac", "IndependentProduct", "paper_first_window_prior"]


class Distribution(ABC):
    """Scalar distribution interface used by priors and proposals."""

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` IID samples."""

    @abstractmethod
    def logpdf(self, x: npt.ArrayLike) -> np.ndarray:
        """Elementwise log-density (``-inf`` outside the support)."""

    @property
    @abstractmethod
    def support(self) -> tuple[float, float]:
        """Closed support bounds ``(low, high)`` (may be infinite)."""

    def contains(self, x: npt.ArrayLike) -> np.ndarray:
        """Elementwise support membership."""
        lo, hi = self.support
        arr = np.asarray(x, dtype=np.float64)
        return (arr >= lo) & (arr <= hi)

    def mean(self) -> float:
        """Analytic mean; subclasses override (used in summaries only)."""
        raise NotImplementedError


class Uniform(Distribution):
    """Continuous uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not high > low:
            raise ValueError(f"need high > low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def logpdf(self, x: npt.ArrayLike) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        out = np.full(arr.shape, -np.inf)
        inside = (arr >= self.low) & (arr <= self.high)
        out[inside] = -np.log(self.high - self.low)
        return out

    @property
    def support(self) -> tuple[float, float]:
        return (self.low, self.high)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Uniform({self.low}, {self.high})"


class Beta(Distribution):
    """Beta distribution on ``[0, 1]`` (the paper's reporting-bias prior)."""

    def __init__(self, a: float, b: float) -> None:
        if a <= 0 or b <= 0:
            raise ValueError("Beta shape parameters must be positive")
        self.a = float(a)
        self.b = float(b)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.beta(self.a, self.b, size=n)

    def logpdf(self, x: npt.ArrayLike) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        return np.asarray(stats.beta.logpdf(arr, self.a, self.b))

    @property
    def support(self) -> tuple[float, float]:
        return (0.0, 1.0)

    def mean(self) -> float:
        return self.a / (self.a + self.b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Beta({self.a}, {self.b})"


class LogNormal(Distribution):
    """Log-normal with parameters of the underlying normal."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)

    def logpdf(self, x: npt.ArrayLike) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        return np.asarray(stats.lognorm.logpdf(arr, s=self.sigma,
                                               scale=np.exp(self.mu)))

    @property
    def support(self) -> tuple[float, float]:
        return (0.0, np.inf)

    def mean(self) -> float:
        return float(np.exp(self.mu + 0.5 * self.sigma**2))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LogNormal(mu={self.mu}, sigma={self.sigma})"


class TruncatedNormal(Distribution):
    """Normal truncated to ``[low, high]`` (useful informative priors)."""

    def __init__(self, mu: float, sigma: float, low: float, high: float) -> None:
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if not high > low:
            raise ValueError("need high > low")
        self.mu, self.sigma = float(mu), float(sigma)
        self.low, self.high = float(low), float(high)
        self._a = (self.low - self.mu) / self.sigma
        self._b = (self.high - self.mu) / self.sigma

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        frozen = stats.truncnorm(self._a, self._b, loc=self.mu, scale=self.sigma)
        return np.asarray(frozen.rvs(size=n, random_state=rng))

    def logpdf(self, x: npt.ArrayLike) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        return np.asarray(stats.truncnorm.logpdf(arr, self._a, self._b,
                                                 loc=self.mu, scale=self.sigma))

    @property
    def support(self) -> tuple[float, float]:
        return (self.low, self.high)

    def mean(self) -> float:
        frozen = stats.truncnorm(self._a, self._b, loc=self.mu, scale=self.sigma)
        return float(frozen.mean())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TruncatedNormal(mu={self.mu}, sigma={self.sigma}, "
                f"[{self.low}, {self.high}])")


class Dirac(Distribution):
    """Point mass — pins a parameter while keeping the prior interface."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, self.value)

    def logpdf(self, x: npt.ArrayLike) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        return np.where(arr == self.value, 0.0, -np.inf)

    @property
    def support(self) -> tuple[float, float]:
        return (self.value, self.value)

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dirac({self.value})"


class IndependentProduct:
    """Independent product prior over named scalar parameters.

    "In the absence of prior information, an independent product prior is
    assumed for (theta, rho)" — section V-B.
    """

    def __init__(self, marginals: Mapping[str, Distribution]) -> None:
        if not marginals:
            raise ValueError("need at least one marginal")
        self._marginals = dict(marginals)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._marginals)

    def marginal(self, name: str) -> Distribution:
        return self._marginals[name]

    def sample(self, n: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
        """Draw ``n`` joint samples as a name-keyed dict of arrays."""
        return {name: dist.sample(n, rng)
                for name, dist in self._marginals.items()}

    def logpdf(self, values: Mapping[str, np.ndarray]) -> np.ndarray:
        """Joint log-density of name-keyed value arrays."""
        missing = set(self._marginals) - set(values)
        if missing:
            raise ValueError(f"missing values for parameters: {sorted(missing)}")
        total: np.ndarray | None = None
        for name, dist in self._marginals.items():
            term = dist.logpdf(np.asarray(values[name]))
            total = term if total is None else total + term
        assert total is not None
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v!r}" for k, v in self._marginals.items())
        return f"IndependentProduct({inner})"


def paper_first_window_prior() -> IndependentProduct:
    """The exact first-window prior of section V-B.

    ``theta ~ Uniform(0.1, 0.5)``, ``rho ~ Beta(4, 1)``.
    """
    return IndependentProduct({"theta": Uniform(0.1, 0.5), "rho": Beta(4.0, 1.0)})
