"""Core SMC/SIS framework — the paper's primary contribution."""

from .adaptive import (TemperedResult, adaptive_jitter_width,
                       ess_triggered_resample, temper_and_resample,
                       tempered_weight_schedule)
from .bias import BinomialBiasModel
from .diagnostics import WindowDiagnostics, assess, compute_diagnostics
from .ensemble_control import (SIZE_POLICY_NAMES, BudgetPolicy,
                               EnsembleSizePolicy, ESSTargetPolicy, FixedSize,
                               make_size_policy, resolve_size_policy)
from .likelihood import (GaussianTransformLikelihood, Likelihood,
                         MultiSourceLikelihood, NegativeBinomialLikelihood,
                         PoissonLikelihood, paper_likelihood)
from .observation import ObservationModel, SourceModel, paper_observation_model
from .particle import Particle, ParticleEnsemble
from .posterior import (TrajectoryRibbon, hpd_region_mass, joint_density_grid,
                        marginal_histogram, trajectory_ribbon)
from .priors import (Beta, Dirac, Distribution, IndependentProduct, LogNormal,
                     TruncatedNormal, Uniform, paper_first_window_prior)
from .proposals import (JitterKernel, JointJitter, NoJitter, UniformJitter,
                        paper_window_jitter)
from .reproduction_number import (cori_rt, discretised_serial_interval,
                                  mean_infectious_days, model_rt)
from .resampling import (RESAMPLERS, get_resampler, multinomial_resample,
                         residual_resample, stratified_resample,
                         systematic_resample)
from .scenarios import (SCENARIO_SETS, SCENARIOS, ScenarioOverride,
                        ScenarioRegistry, ScenarioSpec, ScenarioSweep,
                        get_scenario, register_scenario, scenario_set)
from .smc import (BIAS_PARAM, DEFAULT_PARAM_MAP, PendingWindow,
                  SequentialCalibrator, SMCConfig, WindowResult)
from .transforms import (ANSCOMBE, IDENTITY, LOG1P, SQRT, TRANSFORMS,
                         Transform, get_transform)
from .validation import (crps, interval_coverage, posterior_rank,
                         sbc_ranks_uniformity)
from .weights import (effective_sample_size, ess_fraction, logsumexp,
                      normalize_log_weights, weight_entropy, weighted_mean,
                      weighted_quantile, weighted_variance)
from .window import TimeWindow, WindowSchedule, paper_window_schedule

__all__ = [
    "TemperedResult", "tempered_weight_schedule", "temper_and_resample",
    "adaptive_jitter_width", "ess_triggered_resample",
    "SMCConfig", "WindowResult", "SequentialCalibrator", "PendingWindow",
    "BIAS_PARAM", "DEFAULT_PARAM_MAP",
    "ScenarioOverride", "ScenarioSpec", "ScenarioRegistry", "ScenarioSweep",
    "SCENARIOS", "SCENARIO_SETS", "register_scenario", "get_scenario",
    "scenario_set",
    "EnsembleSizePolicy", "FixedSize", "ESSTargetPolicy", "BudgetPolicy",
    "SIZE_POLICY_NAMES", "make_size_policy", "resolve_size_policy",
    "Particle", "ParticleEnsemble",
    "Distribution", "Uniform", "Beta", "LogNormal", "TruncatedNormal",
    "Dirac", "IndependentProduct", "paper_first_window_prior",
    "JitterKernel", "UniformJitter", "NoJitter", "JointJitter",
    "paper_window_jitter",
    "Likelihood", "GaussianTransformLikelihood", "PoissonLikelihood",
    "NegativeBinomialLikelihood", "MultiSourceLikelihood", "paper_likelihood",
    "BinomialBiasModel",
    "ObservationModel", "SourceModel", "paper_observation_model",
    "TimeWindow", "WindowSchedule", "paper_window_schedule",
    "Transform", "SQRT", "LOG1P", "IDENTITY", "ANSCOMBE", "TRANSFORMS",
    "get_transform",
    "RESAMPLERS", "get_resampler", "multinomial_resample",
    "systematic_resample", "stratified_resample", "residual_resample",
    "logsumexp", "normalize_log_weights", "effective_sample_size",
    "ess_fraction", "weight_entropy", "weighted_mean", "weighted_quantile",
    "weighted_variance",
    "WindowDiagnostics", "compute_diagnostics", "assess",
    "TrajectoryRibbon", "trajectory_ribbon", "marginal_histogram",
    "joint_density_grid", "hpd_region_mass",
    "model_rt", "cori_rt", "mean_infectious_days",
    "discretised_serial_interval",
    "posterior_rank", "sbc_ranks_uniformity", "interval_coverage", "crps",
]
