"""Grid posterior baseline (brute-force reference).

Evaluates the window likelihood on a regular (theta, rho) lattice with
replicated simulations per node.  Exponential in dimension, so only viable
for the paper's 2-parameter setting — which is exactly what makes it a
useful reference: on small problems the grid posterior is a near-exact
answer the Monte-Carlo methods can be validated against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.observation import ObservationModel
from ..core.smc import _FirstWindowTask, _run_first_window_task
from ..core.weights import logsumexp
from ..data.sources import ObservationSet
from ..hpc.executor import Executor, SerialExecutor
from ..seir.parameters import DiseaseParameters
from ..seir.seeding import SeedSequenceBank, register_ancillary_purpose

__all__ = ["GridPosterior", "grid_posterior"]

# Lattice evaluation only randomises the bias model; registered clear of
# both the calibrator (0..3) and MCMC (20..21) blocks.
_PURPOSE_GRID_BIAS = register_ancillary_purpose(
    "grid_bias", 30, description="bias-model draws at lattice nodes")


@dataclass(frozen=True)
class GridPosterior:
    """Normalised posterior mass on a (theta, rho) lattice."""

    theta_values: np.ndarray
    rho_values: np.ndarray
    log_likelihood: np.ndarray  # shape (n_theta, n_rho)
    posterior: np.ndarray       # normalised, same shape

    def marginal_theta(self) -> np.ndarray:
        return self.posterior.sum(axis=1)

    def marginal_rho(self) -> np.ndarray:
        return self.posterior.sum(axis=0)

    def mode(self) -> tuple[float, float]:
        """(theta, rho) at the posterior mode."""
        i, j = np.unravel_index(int(np.argmax(self.posterior)),
                                self.posterior.shape)
        return float(self.theta_values[i]), float(self.rho_values[j])

    def mean_theta(self) -> float:
        return float(self.marginal_theta() @ self.theta_values)

    def mean_rho(self) -> float:
        return float(self.marginal_rho() @ self.rho_values)


def grid_posterior(observations: ObservationSet,
                   base_params: DiseaseParameters,
                   observation_model: ObservationModel,
                   *,
                   start_day: int,
                   end_day: int,
                   theta_grid: np.ndarray,
                   rho_grid: np.ndarray,
                   n_replicates: int = 5,
                   engine: str = "binomial_leap",
                   engine_options: dict | None = None,
                   base_seed: int = 20240215,
                   executor: Executor | None = None) -> GridPosterior:
    """Evaluate the posterior over a lattice (uniform lattice prior).

    The likelihood at each node is the log-mean-exp over ``n_replicates``
    common-seed trajectories — the same pseudo-marginal estimate the other
    methods use, so comparisons are apples-to-apples.
    """
    theta_values = np.asarray(theta_grid, dtype=np.float64)
    rho_values = np.asarray(rho_grid, dtype=np.float64)
    if theta_values.ndim != 1 or rho_values.ndim != 1:
        raise ValueError("grids must be 1-d arrays")
    executor = executor or SerialExecutor()
    bank = SeedSequenceBank(base_seed)
    rng_bias = bank.ancillary_generator(_PURPOSE_GRID_BIAS)
    seeds = bank.common_replicate_seeds(n_replicates)
    window_obs = observations.window(start_day, end_day)

    # Simulation depends on theta only; rho enters through the bias model.
    tasks = []
    for theta in theta_values:
        payload = base_params.with_updates(transmission_rate=float(theta)).to_dict()
        for seed in seeds:
            tasks.append(_FirstWindowTask(
                params_payload=payload, seed=seed, end_day=end_day,
                start_day=0, engine=engine,
                engine_options=dict(engine_options or {})))
    outputs = executor.map(_run_first_window_task, tasks)

    n_theta, n_rho = len(theta_values), len(rho_values)
    log_lik = np.empty((n_theta, n_rho))
    for i in range(n_theta):
        trajectories = [outputs[i * n_replicates + r][0]
                        for r in range(n_replicates)]
        for j, rho in enumerate(rho_values):
            reps = np.array([
                observation_model.loglik(window_obs, traj, float(rho), rng_bias)
                for traj in trajectories])
            log_lik[i, j] = logsumexp(reps) - np.log(reps.size)

    flat = log_lik.reshape(-1)
    log_norm = logsumexp(flat)
    posterior = np.exp(log_lik - log_norm)
    posterior /= posterior.sum()
    return GridPosterior(theta_values=theta_values, rho_values=rho_values,
                         log_likelihood=log_lik, posterior=posterior)
