"""Pseudo-marginal random-walk Metropolis baseline.

The classical alternative the paper positions itself against: a Markov chain
over ``(theta, rho)`` whose likelihood is estimated by simulating fresh
trajectories at each proposal (particle-MCMC in its simplest,
single-trajectory-average form; cf. Flury & Shephard 2011 in the paper's
references).  Unlike SIS it is inherently serial — each step depends on the
previous — which is exactly the paper's computational argument for the
embarrassingly parallel sequential scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.observation import ObservationModel
from ..core.priors import IndependentProduct
from ..core.smc import BIAS_PARAM
from ..core.weights import logsumexp
from ..data.sources import ObservationSet
from ..seir.model import StochasticSEIRModel
from ..seir.parameters import DiseaseParameters
from ..seir.seeding import SeedSequenceBank, register_ancillary_purpose

__all__ = ["MCMCResult", "random_walk_metropolis"]

# The chain's own purpose streams, registered well clear of the
# calibrator's 0..3 block (values pinned by regression test).
_PURPOSE_MCMC_CHAIN = register_ancillary_purpose(
    "mcmc_chain", 20, description="proposal and initial-state draws")
_PURPOSE_MCMC_BIAS = register_ancillary_purpose(
    "mcmc_bias", 21, description="bias-model draws in likelihood estimates")


@dataclass(frozen=True)
class MCMCResult:
    """Chain draws and acceptance bookkeeping."""

    samples: dict[str, np.ndarray]
    log_likelihoods: np.ndarray
    acceptance_rate: float
    n_burn_in: int

    def posterior_samples(self, name: str) -> np.ndarray:
        """Post-burn-in draws of one parameter."""
        return self.samples[name][self.n_burn_in:]

    def posterior_mean(self, name: str) -> float:
        return float(self.posterior_samples(name).mean())

    def credible_interval(self, name: str, level: float = 0.9,
                          ) -> tuple[float, float]:
        alpha = (1.0 - level) / 2.0
        draws = self.posterior_samples(name)
        return (float(np.quantile(draws, alpha)),
                float(np.quantile(draws, 1.0 - alpha)))


def _estimate_loglik(draw: dict[str, float], base_params: DiseaseParameters,
                     observation_model: ObservationModel,
                     window_obs: ObservationSet, param_map: dict[str, str],
                     seeds: list[int], end_day: int, start_day: int,
                     rng_bias: np.random.Generator, engine: str,
                     engine_options: dict) -> float:
    """Monte-Carlo likelihood estimate averaged over replicate seeds."""
    params = base_params.with_updates(
        **{fld: draw[name] for name, fld in param_map.items()})
    logliks = []
    for seed in seeds:
        model = StochasticSEIRModel(params, seed, engine=engine, **engine_options)
        trajectory = model.run_until(end_day)
        logliks.append(observation_model.loglik(
            window_obs, trajectory, draw[BIAS_PARAM], rng_bias))
    # Average in probability space: log mean exp (unbiased pseudo-marginal).
    arr = np.asarray(logliks)
    return float(logsumexp(arr) - np.log(arr.size))


def random_walk_metropolis(observations: ObservationSet,
                           base_params: DiseaseParameters,
                           prior: IndependentProduct,
                           observation_model: ObservationModel,
                           *,
                           start_day: int,
                           end_day: int,
                           n_steps: int = 200,
                           n_burn_in: int | None = None,
                           n_replicates: int = 3,
                           step_sizes: dict[str, float] | None = None,
                           engine: str = "binomial_leap",
                           engine_options: dict | None = None,
                           param_map: dict[str, str] | None = None,
                           base_seed: int = 20240215) -> MCMCResult:
    """Random-walk Metropolis over the prior's parameters.

    Gaussian proposals (reflected into the prior support via prior logpdf
    rejection), pseudo-marginal likelihood estimated with ``n_replicates``
    common seeds per evaluation.
    """
    if n_steps < 2:
        raise ValueError("n_steps must be >= 2")
    n_burn_in = n_burn_in if n_burn_in is not None else n_steps // 4
    if not 0 <= n_burn_in < n_steps:
        raise ValueError("n_burn_in must be in [0, n_steps)")
    param_map = dict(param_map or {"theta": "transmission_rate"})
    engine_options = dict(engine_options or {})
    step_sizes = dict(step_sizes or {})

    bank = SeedSequenceBank(base_seed)
    rng = bank.ancillary_generator(_PURPOSE_MCMC_CHAIN)
    rng_bias = bank.ancillary_generator(_PURPOSE_MCMC_BIAS)
    seeds = bank.common_replicate_seeds(n_replicates)
    window_obs = observations.window(start_day, end_day)

    names = list(prior.names)
    current = {name: float(prior.marginal(name).sample(1, rng)[0])
               for name in names}
    current_ll = _estimate_loglik(current, base_params, observation_model,
                                  window_obs, param_map, seeds, end_day,
                                  start_day, rng_bias, engine, engine_options)
    current_lp = float(np.sum(prior.logpdf({k: np.array([v])
                                            for k, v in current.items()})))

    chains = {name: np.empty(n_steps) for name in names}
    lls = np.empty(n_steps)
    accepted = 0
    for step in range(n_steps):
        proposal = {}
        for name in names:
            lo, hi = prior.marginal(name).support
            default_step = 0.05 * (hi - lo) if np.isfinite(hi - lo) else 0.1
            scale = step_sizes.get(name, default_step)
            proposal[name] = current[name] + float(rng.normal(0.0, scale))
        prop_lp = float(np.sum(prior.logpdf({k: np.array([v])
                                             for k, v in proposal.items()})))
        if np.isfinite(prop_lp):
            prop_ll = _estimate_loglik(proposal, base_params, observation_model,
                                       window_obs, param_map, seeds, end_day,
                                       start_day, rng_bias, engine,
                                       engine_options)
            log_alpha = (prop_ll + prop_lp) - (current_ll + current_lp)
            if np.log(rng.uniform()) < log_alpha:
                current, current_ll, current_lp = proposal, prop_ll, prop_lp
                accepted += 1
        for name in names:
            chains[name][step] = current[name]
        lls[step] = current_ll

    return MCMCResult(samples=chains, log_likelihoods=lls,
                      acceptance_rate=accepted / n_steps, n_burn_in=n_burn_in)
