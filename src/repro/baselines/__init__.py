"""Baseline calibration methods the sequential scheme is compared against."""

from .abc import ABCResult, abc_rejection, sqrt_count_distance
from .grid import GridPosterior, grid_posterior
from .mcmc import MCMCResult, random_walk_metropolis
from .single_shot import SingleShotResult, single_shot_importance_sampling

__all__ = [
    "SingleShotResult", "single_shot_importance_sampling",
    "ABCResult", "abc_rejection", "sqrt_count_distance",
    "MCMCResult", "random_walk_metropolis",
    "GridPosterior", "grid_posterior",
]
