"""Approximate Bayesian computation (rejection ABC) baseline.

A likelihood-free comparator: simulate from the prior, accept draws whose
trajectory lies within a tolerance of the observations under a summary
distance.  Related-work methods the paper cites (DIY-ABC, history matching)
are of this family.  Rejection ABC needs no bias model — which is precisely
why it cannot *estimate* the reporting probability unless rho is included in
the simulated summary, as done here by thinning inside the distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.particle import Particle, ParticleEnsemble
from ..core.priors import IndependentProduct
from ..core.smc import BIAS_PARAM, _FirstWindowTask, _run_first_window_task
from ..data.sources import ObservationSet
from ..hpc.executor import Executor, SerialExecutor
from ..seir.parameters import DiseaseParameters
from ..seir.seeding import SeedSequenceBank, register_ancillary_purpose

__all__ = ["ABCResult", "sqrt_count_distance", "abc_rejection"]

# ABC proposes from the same prior stream as the calibrator, and its
# in-distance thinning plays the bias model's role, so both reuse the
# calibrator's purpose tags (idempotent re-registration pins the shared
# values — a re-key on either side fails loudly at import).
_PURPOSE_PRIOR = register_ancillary_purpose("smc_prior", 0)
_PURPOSE_BIAS = register_ancillary_purpose("smc_bias", 1)


def sqrt_count_distance(observed: np.ndarray, simulated: np.ndarray) -> float:
    """Root-mean-square distance on square-root counts.

    The ABC analogue of the paper's Gaussian-on-sqrt likelihood: monotone in
    the log-likelihood when windows have equal length, so acceptance regions
    align across methods.
    """
    y = np.sqrt(np.asarray(observed, dtype=np.float64))
    eta = np.sqrt(np.asarray(simulated, dtype=np.float64))
    if y.shape != eta.shape:
        raise ValueError("observed and simulated must share a shape")
    return float(np.sqrt(np.mean((y - eta) ** 2)))


@dataclass(frozen=True)
class ABCResult:
    """Accepted ABC sample and acceptance bookkeeping."""

    posterior: ParticleEnsemble | None
    n_proposals: int
    n_accepted: int
    tolerance: float
    distances: np.ndarray

    @property
    def acceptance_rate(self) -> float:
        return self.n_accepted / self.n_proposals if self.n_proposals else 0.0

    def summary(self) -> dict:
        out: dict = {"acceptance_rate": self.acceptance_rate,
                     "tolerance": self.tolerance}
        if self.posterior is not None:
            for name in self.posterior.param_names:
                out[name] = {"mean": self.posterior.weighted_mean(name),
                             "ci90": self.posterior.credible_interval(name, 0.9)}
        return out


def abc_rejection(observations: ObservationSet,
                  base_params: DiseaseParameters,
                  prior: IndependentProduct,
                  *,
                  start_day: int,
                  end_day: int,
                  n_proposals: int = 1000,
                  tolerance: float | None = None,
                  accept_quantile: float = 0.05,
                  engine: str = "binomial_leap",
                  engine_options: dict | None = None,
                  param_map: dict[str, str] | None = None,
                  base_seed: int = 20240215,
                  executor: Executor | None = None) -> ABCResult:
    """Rejection ABC on the case stream over ``[start_day, end_day)``.

    Parameters
    ----------
    tolerance:
        Absolute acceptance threshold on :func:`sqrt_count_distance`; if
        ``None``, the ``accept_quantile`` empirical quantile of the proposal
        distances is used (standard practice when scales are unknown).
    """
    if not 0 < accept_quantile <= 1:
        raise ValueError("accept_quantile must be in (0, 1]")
    executor = executor or SerialExecutor()
    param_map = dict(param_map or {"theta": "transmission_rate"})
    bank = SeedSequenceBank(base_seed)
    rng_prior = bank.ancillary_generator(_PURPOSE_PRIOR)
    rng_thin = bank.ancillary_generator(_PURPOSE_BIAS)

    draws = prior.sample(n_proposals, rng_prior)
    seeds = bank.common_replicate_seeds(n_proposals)
    cases_obs = observations["cases"].series.window(start_day, end_day)

    tasks = []
    for i in range(n_proposals):
        draw = {name: float(draws[name][i]) for name in prior.names}
        params = base_params.with_updates(
            **{fld: draw[name] for name, fld in param_map.items()})
        tasks.append(_FirstWindowTask(
            params_payload=params.to_dict(), seed=seeds[i], end_day=end_day,
            start_day=0, engine=engine,
            engine_options=dict(engine_options or {})))
    outputs = executor.map(_run_first_window_task, tasks)

    distances = np.empty(n_proposals)
    particles = []
    for i, (trajectory, _cp) in enumerate(outputs):
        draw = {name: float(draws[name][i]) for name in prior.names}
        true_counts = trajectory.series("cases").window(start_day, end_day)
        rho = draw[BIAS_PARAM]
        thinned = rng_thin.binomial(
            np.rint(true_counts.values).astype(np.int64), rho).astype(np.float64)
        distances[i] = sqrt_count_distance(cases_obs.values, thinned)
        particles.append(Particle(params=draw, seed=seeds[i],
                                  segment=trajectory.window(start_day, end_day),
                                  history=trajectory))

    eps = float(tolerance) if tolerance is not None else \
        float(np.quantile(distances, accept_quantile))
    accepted = [p for p, d in zip(particles, distances) if d <= eps]
    posterior = ParticleEnsemble(accepted) if accepted else None
    return ABCResult(posterior=posterior, n_proposals=n_proposals,
                     n_accepted=len(accepted), tolerance=eps,
                     distances=distances)
