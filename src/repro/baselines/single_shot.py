"""Single-shot (non-sequential) importance sampling baseline.

The contrast that motivates the paper's sequential scheme: draw all
parameters once, simulate the *entire* horizon, and weight against all
observations jointly.  With time-varying true parameters a single constant
theta cannot track every window, so weights collapse onto the least-bad
draws — the degeneracy the sequential scheme avoids by re-adapting per
window.  ``benchmarks/bench_ablation_sequential.py`` compares ESS fractions
at matched simulation budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.diagnostics import WindowDiagnostics, compute_diagnostics
from ..core.observation import ObservationModel
from ..core.particle import Particle, ParticleEnsemble
from ..core.priors import IndependentProduct
from ..core.resampling import get_resampler
from ..core.smc import BIAS_PARAM, _FirstWindowTask, _run_first_window_task
from ..core.weights import normalize_log_weights
from ..data.sources import ObservationSet
from ..hpc.executor import Executor, SerialExecutor
from ..seir.parameters import DiseaseParameters
from ..seir.seeding import SeedSequenceBank, register_ancillary_purpose

__all__ = ["SingleShotResult", "single_shot_importance_sampling"]

# One-shot IS mirrors the calibrator's first window, so it deliberately
# draws from the *same* ancillary purpose streams.  Re-registering the
# shared (name, tag) pairs is idempotent — and means that if the calibrator
# ever re-keyed them, importing this module would raise instead of the two
# methods silently diverging.
_PURPOSE_PRIOR = register_ancillary_purpose("smc_prior", 0)
_PURPOSE_BIAS = register_ancillary_purpose("smc_bias", 1)
_PURPOSE_RESAMPLE = register_ancillary_purpose("smc_resample", 2)


@dataclass(frozen=True)
class SingleShotResult:
    """Posterior and diagnostics of a one-shot IS run."""

    posterior: ParticleEnsemble
    diagnostics: WindowDiagnostics
    weighted: ParticleEnsemble

    def summary(self) -> dict:
        out: dict = {"ess_fraction": self.diagnostics.ess_fraction}
        for name in self.posterior.param_names:
            out[name] = {
                "mean": self.posterior.weighted_mean(name),
                "ci90": self.posterior.credible_interval(name, 0.9),
            }
        return out


def single_shot_importance_sampling(
        observations: ObservationSet,
        base_params: DiseaseParameters,
        prior: IndependentProduct,
        observation_model: ObservationModel,
        *,
        start_day: int,
        end_day: int,
        n_parameter_draws: int = 500,
        n_replicates: int = 5,
        resample_size: int = 500,
        engine: str = "binomial_leap",
        engine_options: dict | None = None,
        param_map: dict[str, str] | None = None,
        base_seed: int = 20240215,
        executor: Executor | None = None) -> SingleShotResult:
    """Calibrate the whole horizon ``[start_day, end_day)`` in one IS pass.

    Mirrors the first-window step of the sequential calibrator but scores
    every observed day at once.  Parameters are held constant across the
    horizon — exactly the restriction that hurts when the truth varies.
    """
    executor = executor or SerialExecutor()
    param_map = dict(param_map or {"theta": "transmission_rate"})
    bank = SeedSequenceBank(base_seed)
    rng_prior = bank.ancillary_generator(_PURPOSE_PRIOR)
    rng_bias = bank.ancillary_generator(_PURPOSE_BIAS)
    rng_resample = bank.ancillary_generator(_PURPOSE_RESAMPLE)

    draws = prior.sample(n_parameter_draws, rng_prior)
    seeds = bank.common_replicate_seeds(n_replicates)
    window_obs = observations.window(start_day, end_day)

    tasks, meta = [], []
    for i in range(n_parameter_draws):
        draw = {name: float(draws[name][i]) for name in prior.names}
        params = base_params.with_updates(
            **{fld: draw[name] for name, fld in param_map.items()})
        payload = params.to_dict()
        for seed in seeds:
            tasks.append(_FirstWindowTask(
                params_payload=payload, seed=seed, end_day=end_day,
                start_day=0, engine=engine,
                engine_options=dict(engine_options or {})))
            meta.append((i, seed))
    outputs = executor.map(_run_first_window_task, tasks)

    log_weights = np.empty(len(tasks))
    particles = []
    for k, ((i, seed), (trajectory, _cp)) in enumerate(zip(meta, outputs)):
        draw = {name: float(draws[name][i]) for name in prior.names}
        ll = observation_model.loglik(window_obs, trajectory,
                                      draw[BIAS_PARAM], rng_bias)
        log_weights[k] = ll
        particles.append(Particle(params=draw, seed=seed, log_weight=ll,
                                  segment=trajectory.window(start_day, end_day),
                                  history=trajectory))
    weighted = ParticleEnsemble(particles)
    normalized = normalize_log_weights(log_weights)
    indices = get_resampler("multinomial")(normalized, resample_size, rng_resample)
    posterior = weighted.select(indices)
    diagnostics = compute_diagnostics(log_weights, normalized,
                                      posterior.unique_ancestors())
    return SingleShotResult(posterior=posterior, diagnostics=diagnostics,
                            weighted=weighted)
