"""Facade over the three simulation engines.

:class:`StochasticSEIRModel` is the object the rest of the library talks to:
construct it from parameters and a seed (or from a checkpoint plus override),
advance it window by window, and snapshot it between windows.  The engine
choice is a string so configuration files and benchmark matrices can sweep it.
"""

from __future__ import annotations

from typing import Type

from ..data.schedule import PiecewiseConstant
from .batch_engine import BatchedBinomialLeapEngine
from .checkpoint import Checkpoint
from .compartments import Compartment
from .events import EventDrivenEngine
from .gillespie import GillespieEngine
from .outputs import Trajectory
from .parameters import DiseaseParameters, ParameterOverride
from .tauleap import BinomialLeapEngine

__all__ = ["StochasticSEIRModel", "engine_class", "ENGINE_NAMES",
           "batch_engine_class", "BATCH_ENGINE_NAMES"]

_ENGINES: dict[str, Type] = {
    BinomialLeapEngine.name: BinomialLeapEngine,
    GillespieEngine.name: GillespieEngine,
    EventDrivenEngine.name: EventDrivenEngine,
}

ENGINE_NAMES = tuple(sorted(_ENGINES))

#: Ensemble engines stepping many trajectories per instance.  They live in
#: their own registry because their constructor contract differs (a seed
#: *vector* plus per-member thetas) and because the per-trajectory facade
#: below cannot wrap them.
_BATCH_ENGINES: dict[str, Type] = {
    BatchedBinomialLeapEngine.name: BatchedBinomialLeapEngine,
}

BATCH_ENGINE_NAMES = tuple(sorted(_BATCH_ENGINES))


def engine_class(name: str) -> Type:
    """Resolve a scalar (one-trajectory) engine name to its class."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: {ENGINE_NAMES}") from None


def batch_engine_class(name: str) -> Type:
    """Resolve a batched (whole-ensemble) engine name to its class."""
    try:
        return _BATCH_ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown batch engine {name!r}; available: "
            f"{BATCH_ENGINE_NAMES}") from None


class StochasticSEIRModel:
    """One stochastic trajectory with windowed advancement and checkpoints.

    Parameters
    ----------
    params:
        Disease parameterisation.
    seed:
        Trajectory seed; together with ``params`` it determines the run.
    engine:
        ``"binomial_leap"`` (default), ``"gillespie"`` or ``"event_driven"``.
    theta_schedule:
        Optional piecewise transmission schedule (ground-truth runs).
    engine_options:
        Extra engine keyword arguments (e.g. ``steps_per_day``).
    """

    def __init__(self, params: DiseaseParameters, seed: int, *,
                 engine: str = "binomial_leap",
                 theta_schedule: PiecewiseConstant | None = None,
                 **engine_options) -> None:
        cls = engine_class(engine)
        self._engine = cls(params, seed, theta_schedule=theta_schedule,
                           **engine_options)
        self._history: Trajectory | None = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_checkpoint(cls, checkpoint: Checkpoint,
                        override: ParameterOverride | None = None,
                        theta_schedule: PiecewiseConstant | None = None,
                        ) -> "StochasticSEIRModel":
        """Resume a stored trajectory, optionally re-parameterised."""
        model = cls.__new__(cls)
        model._engine = checkpoint.restart(override, theta_schedule)
        model._history = None
        return model

    # ------------------------------------------------------------------ #
    @property
    def day(self) -> int:
        return self._engine.day

    @property
    def params(self) -> DiseaseParameters:
        return self._engine.params

    @property
    def seed(self) -> int:
        return self._engine.seed

    @property
    def engine_name(self) -> str:
        return self._engine.name

    def count_of(self, compartment: Compartment) -> int:
        return self._engine.count_of(compartment)

    @property
    def cumulative_infections(self) -> int:
        return self._engine.cumulative_infections

    @property
    def cumulative_deaths(self) -> int:
        return self._engine.cumulative_deaths

    def population_conserved(self) -> bool:
        return self._engine.population_conserved()

    @property
    def history(self) -> Trajectory | None:
        """Everything simulated by *this* model object so far."""
        return self._history

    # ------------------------------------------------------------------ #
    def run_until(self, end_day: int) -> Trajectory:
        """Advance to ``end_day``; returns the newly simulated segment."""
        segment = self._engine.run_until(end_day)
        if self._history is None:
            self._history = segment
        elif len(segment):
            self._history = self._history.extended_by(segment)
        return segment

    def run_window(self, start_day: int, end_day: int) -> Trajectory:
        """Advance through ``[start_day, end_day)``.

        The model must currently sit exactly at ``start_day`` — windows in the
        sequential scheme are contiguous, and silently fast-forwarding would
        hide scheduling bugs.
        """
        if self.day != start_day:
            raise ValueError(
                f"model is at day {self.day}, cannot run window starting {start_day}")
        return self.run_until(end_day)

    def checkpoint(self) -> Checkpoint:
        """Snapshot the current state for later restart."""
        return Checkpoint(params=self._engine.params,
                          snapshot=self._engine.state_snapshot(),
                          theta_schedule=self._engine.theta_schedule)
