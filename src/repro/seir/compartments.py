"""Compartment topology of the stochastic SEIR model (paper Figure 1).

The model of Runge et al. (2022) used in the paper tracks, beyond the classic
S/E/I/R structure, symptom severity (asymptomatic, presymptomatic, mild,
severe), the hospital pathway (hospitalised, critical/ICU, post-ICU), deaths,
and — crucially for the reporting-bias study — whether an infection has been
*detected*.  Detected individuals isolate and become less infectious.

This module is the single source of truth for:

* the compartment index space (:class:`Compartment`),
* the progression/detection transition table (:func:`build_transitions`),
* per-compartment infectiousness weights (:func:`infectiousness_weights`),
* output channel definitions (which fluxes/censuses the simulator reports).

All three simulation engines (binomial-leap, Gillespie, event-driven) consume
the same table, which is what makes their distributional agreement testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .parameters import DiseaseParameters

__all__ = [
    "Compartment", "TransitionSpec", "build_transitions",
    "infectiousness_weights", "N_COMPARTMENTS", "INFECTION_SRC",
    "INFECTION_DST", "DEATH_COMPARTMENTS", "HOSPITAL_COMPARTMENTS",
    "ICU_COMPARTMENTS", "DETECTED_COMPARTMENTS", "INFECTED_COMPARTMENTS",
]


class Compartment(IntEnum):
    """Compartment indices.  ``_U``/``_D`` denote undetected/detected."""

    S = 0        # susceptible
    E = 1        # exposed (latent, not yet infectious)
    A_U = 2      # asymptomatic infectious, undetected
    A_D = 3      # asymptomatic infectious, detected
    P_U = 4      # presymptomatic infectious, undetected
    P_D = 5      # presymptomatic infectious, detected
    SM_U = 6     # mild symptomatic, undetected
    SM_D = 7     # mild symptomatic, detected
    SS_U = 8     # severe symptomatic, undetected
    SS_D = 9     # severe symptomatic, detected
    H_U = 10     # hospitalised, undetected on admission records
    H_D = 11     # hospitalised, detected
    C_U = 12     # critical (ICU), undetected
    C_D = 13     # critical (ICU), detected
    HP_U = 14    # post-ICU hospital recovery, undetected
    HP_D = 15    # post-ICU hospital recovery, detected
    R_U = 16     # recovered, never detected
    R_D = 17     # recovered, was detected
    D_U = 18     # died, undetected
    D_D = 19     # died, detected


N_COMPARTMENTS = len(Compartment)

#: The infection transition is handled specially (its hazard is the
#: time-varying force of infection rather than a constant).
INFECTION_SRC = Compartment.S
INFECTION_DST = Compartment.E

DEATH_COMPARTMENTS = (Compartment.D_U, Compartment.D_D)
HOSPITAL_COMPARTMENTS = (Compartment.H_U, Compartment.H_D,
                         Compartment.HP_U, Compartment.HP_D)
ICU_COMPARTMENTS = (Compartment.C_U, Compartment.C_D)
DETECTED_COMPARTMENTS = tuple(c for c in Compartment if c.name.endswith("_D"))
#: Compartments counting as "currently infected" (exposed through pre-removal).
INFECTED_COMPARTMENTS = (
    Compartment.E,
    Compartment.A_U, Compartment.A_D, Compartment.P_U, Compartment.P_D,
    Compartment.SM_U, Compartment.SM_D, Compartment.SS_U, Compartment.SS_D,
    Compartment.H_U, Compartment.H_D, Compartment.C_U, Compartment.C_D,
    Compartment.HP_U, Compartment.HP_D,
)


@dataclass(frozen=True)
class TransitionSpec:
    """One hazard out of a compartment with a categorical destination split.

    Parameters
    ----------
    src:
        Source compartment.
    hazard:
        Exit rate (per day) for this transition channel.  Multiple specs may
        share a source; they then compete (competing exponential risks).
    destinations:
        ``((compartment, probability), ...)``; probabilities sum to 1.
    label:
        Human-readable tag used in diagnostics and the event-driven engine.
    """

    src: Compartment
    hazard: float
    destinations: tuple[tuple[Compartment, float], ...]
    label: str

    def __post_init__(self) -> None:
        if self.hazard < 0:
            raise ValueError(f"negative hazard in transition {self.label!r}")
        total = sum(p for _, p in self.destinations)
        if self.destinations and abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"destination probabilities of {self.label!r} sum to {total}, not 1"
            )
        for _, p in self.destinations:
            if p < -1e-12 or p > 1 + 1e-12:
                raise ValueError(f"destination probability out of [0,1] in {self.label!r}")


def _rate(mean_days: float) -> float:
    """Exponential-dwell exit rate for a mean stage duration in days."""
    if mean_days <= 0:
        raise ValueError(f"stage duration must be positive, got {mean_days}")
    return 1.0 / mean_days


def build_transitions(params: "DiseaseParameters") -> list[TransitionSpec]:
    """Materialise the full transition table for a parameter set.

    The infection transition (S -> E) is *not* included: its hazard depends on
    the instantaneous force of infection and is handled by each engine.

    Progression follows Figure 1 of the paper:

    * E splits into presymptomatic (fraction ``exposed_to_presymptomatic_fraction``,
      paper parameter 2) and fully asymptomatic infections.
    * P splits into mild (fraction ``mild_fraction``, paper parameter 3) and
      severe symptomatic infections.
    * Severe cases are hospitalised; a fraction become critical (ICU); critical
      cases either die or step down to post-ICU care and then recover.
    * Each undetected infectious stage carries a detection hazard moving the
      individual to the detected twin of the same stage.  The detection hazard
      is ``detection_probability / detection_delay_days`` — the constant-hazard
      approximation to "a fraction of individuals are detected after a certain
      period" (paper section III-A).
    """
    C = Compartment
    p = params
    specs: list[TransitionSpec] = []

    # --- latent progression -------------------------------------------------
    specs.append(TransitionSpec(
        src=C.E, hazard=_rate(p.latent_period_days),
        destinations=(
            (C.P_U, p.exposed_to_presymptomatic_fraction),
            (C.A_U, 1.0 - p.exposed_to_presymptomatic_fraction),
        ),
        label="E->P/A",
    ))

    # --- asymptomatic recovery ----------------------------------------------
    specs.append(TransitionSpec(C.A_U, _rate(p.asymptomatic_period_days),
                                ((C.R_U, 1.0),), "Au->Ru"))
    specs.append(TransitionSpec(C.A_D, _rate(p.asymptomatic_period_days),
                                ((C.R_D, 1.0),), "Ad->Rd"))

    # --- presymptomatic -> symptom onset --------------------------------------
    onset = _rate(p.presymptomatic_period_days)
    specs.append(TransitionSpec(C.P_U, onset,
                                ((C.SM_U, p.mild_fraction),
                                 (C.SS_U, 1.0 - p.mild_fraction)), "Pu->Sm/Ss u"))
    specs.append(TransitionSpec(C.P_D, onset,
                                ((C.SM_D, p.mild_fraction),
                                 (C.SS_D, 1.0 - p.mild_fraction)), "Pd->Sm/Ss d"))

    # --- mild recovery ---------------------------------------------------------
    specs.append(TransitionSpec(C.SM_U, _rate(p.mild_period_days),
                                ((C.R_U, 1.0),), "Smu->Ru"))
    specs.append(TransitionSpec(C.SM_D, _rate(p.mild_period_days),
                                ((C.R_D, 1.0),), "Smd->Rd"))

    # --- severe -> hospital -----------------------------------------------------
    specs.append(TransitionSpec(C.SS_U, _rate(p.severe_period_days),
                                ((C.H_U, 1.0),), "Ssu->Hu"))
    specs.append(TransitionSpec(C.SS_D, _rate(p.severe_period_days),
                                ((C.H_D, 1.0),), "Ssd->Hd"))

    # --- hospital -> critical or recovery ---------------------------------------
    hosp = _rate(p.hospital_period_days)
    specs.append(TransitionSpec(C.H_U, hosp,
                                ((C.C_U, p.critical_fraction),
                                 (C.R_U, 1.0 - p.critical_fraction)), "Hu->Cu/Ru"))
    specs.append(TransitionSpec(C.H_D, hosp,
                                ((C.C_D, p.critical_fraction),
                                 (C.R_D, 1.0 - p.critical_fraction)), "Hd->Cd/Rd"))

    # --- ICU -> death or post-ICU ------------------------------------------------
    icu = _rate(p.icu_period_days)
    specs.append(TransitionSpec(C.C_U, icu,
                                ((C.D_U, p.death_fraction),
                                 (C.HP_U, 1.0 - p.death_fraction)), "Cu->Du/Hpu"))
    specs.append(TransitionSpec(C.C_D, icu,
                                ((C.D_D, p.death_fraction),
                                 (C.HP_D, 1.0 - p.death_fraction)), "Cd->Dd/Hpd"))

    # --- post-ICU recovery ---------------------------------------------------------
    specs.append(TransitionSpec(C.HP_U, _rate(p.post_icu_period_days),
                                ((C.R_U, 1.0),), "Hpu->Ru"))
    specs.append(TransitionSpec(C.HP_D, _rate(p.post_icu_period_days),
                                ((C.R_D, 1.0),), "Hpd->Rd"))

    # --- detection hazards (undetected stage -> detected twin) ----------------------
    delay = p.detection_delay_days
    for src, dst, prob, label in (
        (C.A_U, C.A_D, p.detection_prob_asymptomatic, "detect A"),
        (C.P_U, C.P_D, p.detection_prob_presymptomatic, "detect P"),
        (C.SM_U, C.SM_D, p.detection_prob_mild, "detect Sm"),
        (C.SS_U, C.SS_D, p.detection_prob_severe, "detect Ss"),
    ):
        if prob > 0:
            specs.append(TransitionSpec(src, prob / delay, ((dst, 1.0),), label))

    return specs


def infectiousness_weights(params: "DiseaseParameters") -> np.ndarray:
    """Per-compartment contribution weights to the force of infection.

    The force of infection is

        lambda(t) = theta(t) * sum_c w_c * N_c(t) / N

    with weights:

    * presymptomatic and symptomatic (mild/severe) undetected: 1
    * asymptomatic: ``asymptomatic_rel_infectiousness`` (paper parameter 4)
    * detected stages additionally scaled by ``detected_rel_infectiousness``
      (paper parameter 5) — isolation after detection
    * hospitalised / ICU / post-ICU / removed / latent: 0 (ward isolation)
    """
    w = np.zeros(N_COMPARTMENTS)
    C = Compartment
    kappa_a = params.asymptomatic_rel_infectiousness
    kappa_d = params.detected_rel_infectiousness
    w[C.A_U] = kappa_a
    w[C.A_D] = kappa_a * kappa_d
    w[C.P_U] = 1.0
    w[C.P_D] = kappa_d
    w[C.SM_U] = 1.0
    w[C.SM_D] = kappa_d
    w[C.SS_U] = 1.0
    w[C.SS_D] = kappa_d
    return w
