"""Checkpoint / restart of simulator state (paper section III-B).

A :class:`Checkpoint` captures everything needed to continue a trajectory
from an intermediate day: the disease parameterisation, the engine-specific
state snapshot (compartment occupancy, clock, cumulative outputs, RNG stream,
and — for the event-driven engine — the pending future-transition events),
and the optional transmission schedule.

Restarting accepts a :class:`~repro.seir.parameters.ParameterOverride`
covering exactly the six knobs the paper allows, so a stored posterior
trajectory can be continued "along a new trajectory" with an updated
transmission rate and a fresh random seed — the mechanism that makes
window-to-window sequential calibration O(window) instead of O(history).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any

from ..data.schedule import PiecewiseConstant
from .parameters import DiseaseParameters, ParameterOverride

__all__ = ["Checkpoint", "CheckpointError"]

_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """Raised for malformed or incompatible checkpoint payloads."""


@dataclass(frozen=True)
class Checkpoint:
    """Immutable, JSON-serialisable snapshot of a simulation.

    Attributes
    ----------
    params:
        Disease parameters in force when the snapshot was taken.
    snapshot:
        Engine state dict (includes the ``engine`` tag naming which engine
        class can consume it).
    theta_schedule:
        Optional transmission schedule the run was using.
    """

    params: DiseaseParameters
    snapshot: dict
    theta_schedule: PiecewiseConstant | None = None

    @property
    def engine_name(self) -> str:
        return str(self.snapshot.get("engine", ""))

    @property
    def day(self) -> int:
        """Simulated day at which the trajectory can be resumed."""
        return int(self.snapshot["day"])

    @property
    def seed(self) -> int:
        return int(self.snapshot["seed"])

    # ------------------------------------------------------------------ #
    def restart(self, override: ParameterOverride | None = None,
                theta_schedule: PiecewiseConstant | None = None):
        """Build a resumed engine, optionally re-parameterised.

        Parameters
        ----------
        override:
            The paper's six restart knobs; ``None`` resumes bit-exactly.
        theta_schedule:
            Replacement transmission schedule; defaults to the checkpointed
            one (note an overridden ``transmission_rate`` only takes effect
            when no schedule is active, mirroring the engine precedence).

        Returns
        -------
        A fresh engine instance positioned at :attr:`day`.
        """
        from .model import engine_class  # local import to avoid cycle

        params = self.params
        seed: int | None = None
        if override is not None:
            params = override.apply_to(params)
            seed = override.seed
        schedule = theta_schedule if theta_schedule is not None else self.theta_schedule
        if override is not None and override.transmission_rate is not None \
                and theta_schedule is None:
            # An explicit transmission-rate override supersedes a stale schedule.
            schedule = None
        cls = engine_class(self.engine_name)
        return cls.from_snapshot(self.snapshot, params, seed=seed,
                                 theta_schedule=schedule)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "format_version": _FORMAT_VERSION,
            "params": self.params.to_dict(),
            "snapshot": self.snapshot,
            "theta_schedule": (self.theta_schedule.to_dict()
                               if self.theta_schedule is not None else None),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Checkpoint":
        version = d.get("format_version")
        if version != _FORMAT_VERSION:
            raise CheckpointError(f"unsupported checkpoint format {version!r}")
        try:
            params = DiseaseParameters.from_dict(d["params"])
            snapshot = dict(d["snapshot"])
            schedule = (PiecewiseConstant.from_dict(d["theta_schedule"])
                        if d.get("theta_schedule") is not None else None)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint payload: {exc}") from exc
        if "engine" not in snapshot or "day" not in snapshot:
            raise CheckpointError("snapshot missing engine/day fields")
        return cls(params=params, snapshot=snapshot, theta_schedule=schedule)

    def save(self, path: str | os.PathLike) -> None:
        """Atomically write the checkpoint as JSON."""
        path = os.fspath(path)
        directory = os.path.dirname(path) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self.to_dict(), fh)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Checkpoint":
        with open(os.fspath(path)) as fh:
            try:
                payload = json.load(fh)
            except json.JSONDecodeError as exc:
                raise CheckpointError(f"checkpoint file is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)
