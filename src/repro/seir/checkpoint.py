"""Checkpoint / restart of simulator state (paper section III-B).

A :class:`Checkpoint` captures everything needed to continue a trajectory
from an intermediate day: the disease parameterisation, the engine-specific
state snapshot (compartment occupancy, clock, cumulative outputs, RNG stream,
and — for the event-driven engine — the pending future-transition events),
and the optional transmission schedule.

Restarting accepts a :class:`~repro.seir.parameters.ParameterOverride`
covering exactly the six knobs the paper allows, so a stored posterior
trajectory can be continued "along a new trajectory" with an updated
transmission rate and a fresh random seed — the mechanism that makes
window-to-window sequential calibration O(window) instead of O(history).

Batch snapshots: :func:`stack_leap_snapshots` validates a set of scalar
binomial-leap snapshots taken at the same day and stacks their state into
the arrays the batched ensemble engine
(:class:`~repro.seir.batch_engine.BatchedBinomialLeapEngine`) restarts
from, so a whole posterior's continuation needs no per-particle engine
objects or JSON round-trips.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..data.schedule import PiecewiseConstant
from .parameters import DiseaseParameters, ParameterOverride

__all__ = ["Checkpoint", "CheckpointError", "StackedLeapState",
           "stack_leap_snapshots"]

_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """Raised for malformed or incompatible checkpoint payloads."""


@dataclass(frozen=True)
class Checkpoint:
    """Immutable, JSON-serialisable snapshot of a simulation.

    Attributes
    ----------
    params:
        Disease parameters in force when the snapshot was taken.
    snapshot:
        Engine state dict (includes the ``engine`` tag naming which engine
        class can consume it).
    theta_schedule:
        Optional transmission schedule the run was using.
    """

    params: DiseaseParameters
    snapshot: dict
    theta_schedule: PiecewiseConstant | None = None

    @property
    def engine_name(self) -> str:
        return str(self.snapshot.get("engine", ""))

    @property
    def day(self) -> int:
        """Simulated day at which the trajectory can be resumed."""
        return int(self.snapshot["day"])

    @property
    def seed(self) -> int:
        return int(self.snapshot["seed"])

    # ------------------------------------------------------------------ #
    def restart(self, override: ParameterOverride | None = None,
                theta_schedule: PiecewiseConstant | None = None):
        """Build a resumed engine, optionally re-parameterised.

        Parameters
        ----------
        override:
            The paper's six restart knobs; ``None`` resumes bit-exactly.
        theta_schedule:
            Replacement transmission schedule; defaults to the checkpointed
            one (note an overridden ``transmission_rate`` only takes effect
            when no schedule is active, mirroring the engine precedence).

        Returns
        -------
        A fresh engine instance positioned at :attr:`day`.
        """
        from .model import engine_class  # local import to avoid cycle

        params = self.params
        seed: int | None = None
        if override is not None:
            params = override.apply_to(params)
            seed = override.seed
        schedule = theta_schedule if theta_schedule is not None else self.theta_schedule
        if override is not None and override.transmission_rate is not None \
                and theta_schedule is None:
            # An explicit transmission-rate override supersedes a stale schedule.
            schedule = None
        cls = engine_class(self.engine_name)
        return cls.from_snapshot(self.snapshot, params, seed=seed,
                                 theta_schedule=schedule)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "format_version": _FORMAT_VERSION,
            "params": self.params.to_dict(),
            "snapshot": self.snapshot,
            "theta_schedule": (self.theta_schedule.to_dict()
                               if self.theta_schedule is not None else None),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Checkpoint":
        version = d.get("format_version")
        if version != _FORMAT_VERSION:
            raise CheckpointError(f"unsupported checkpoint format {version!r}")
        try:
            params = DiseaseParameters.from_dict(d["params"])
            snapshot = dict(d["snapshot"])
            schedule = (PiecewiseConstant.from_dict(d["theta_schedule"])
                        if d.get("theta_schedule") is not None else None)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint payload: {exc}") from exc
        if "engine" not in snapshot or "day" not in snapshot:
            raise CheckpointError("snapshot missing engine/day fields")
        return cls(params=params, snapshot=snapshot, theta_schedule=schedule)

    def save(self, path: str | os.PathLike) -> None:
        """Atomically and durably write the checkpoint as JSON.

        Write-to-temp + ``fsync`` + ``os.replace`` in the same directory:
        a reader (or a resumed run) either sees the complete previous
        content or the complete new content, never a torn file — even
        across a crash between the write and the rename, because the
        payload is flushed to disk before the atomic rename publishes it.
        """
        path = os.fspath(path)
        directory = os.path.dirname(path) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self.to_dict(), fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Checkpoint":
        with open(os.fspath(path)) as fh:
            try:
                payload = json.load(fh)
            except json.JSONDecodeError as exc:
                raise CheckpointError(f"checkpoint file is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)


# --------------------------------------------------------------------------- #
# Batch snapshots
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class StackedLeapState:
    """Column-stacked state of many same-day binomial-leap snapshots.

    The interchange format between per-particle checkpoints (what the
    calibrator stores and resamples) and the batched ensemble engine (which
    restarts a whole particle cloud at once).
    """

    day: int
    steps_per_day: int
    counts: np.ndarray            # (n_particles, n_compartments) int64
    cum_infections: np.ndarray    # (n_particles,) int64
    cum_deaths: np.ndarray        # (n_particles,) int64
    seeds: np.ndarray             # (n_particles,) int64

    @property
    def n_particles(self) -> int:
        return int(self.counts.shape[0])


def stack_leap_snapshots(snapshots: Sequence[dict]) -> StackedLeapState:
    """Validate and stack scalar ``binomial_leap`` snapshots for batching.

    Every snapshot must come from the binomial-leap engine family, sit at
    the same simulation day, and use the same ``steps_per_day`` — the batch
    engine advances all members on one clock.  RNG state is *not* stacked:
    a batched restart always begins a fresh batch stream (the paper's
    restart knob 1 applied ensemble-wide; see
    :func:`~repro.seir.seeding.batch_generator_for`).
    """
    if not snapshots:
        raise CheckpointError("cannot stack an empty snapshot list")
    first = snapshots[0]
    try:
        day = int(first["day"])
        steps = int(first["steps_per_day"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed leap snapshot: {exc}") from exc
    if steps < 1:
        raise CheckpointError(f"snapshot steps_per_day must be >= 1, got {steps}")
    counts_rows = []
    cum_inf = np.empty(len(snapshots), dtype=np.int64)
    cum_dead = np.empty(len(snapshots), dtype=np.int64)
    seeds = np.empty(len(snapshots), dtype=np.int64)
    for i, snap in enumerate(snapshots):
        engine = str(snap.get("engine", ""))
        if engine != "binomial_leap":
            raise CheckpointError(
                f"snapshot {i} is from engine {engine!r}; batch restart "
                "requires binomial_leap snapshots")
        try:
            if int(snap["day"]) != day:
                raise CheckpointError(
                    f"snapshot {i} is at day {snap['day']}, expected {day}; "
                    "a batch must share one clock")
            if int(snap["steps_per_day"]) != steps:
                raise CheckpointError(
                    f"snapshot {i} uses steps_per_day={snap['steps_per_day']}, "
                    f"expected {steps}")
            counts_rows.append(np.asarray(snap["counts"], dtype=np.int64))
            cum_inf[i] = int(snap["cum_infections"])
            cum_dead[i] = int(snap["cum_deaths"])
            seeds[i] = int(snap["seed"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed leap snapshot {i}: {exc}") from exc
    counts = np.vstack(counts_rows)
    return StackedLeapState(day=day, steps_per_day=steps, counts=counts,
                            cum_infections=cum_inf, cum_deaths=cum_dead,
                            seeds=seeds)
