"""Disease model parameters and the paper's checkpoint-restart override set.

Defaults are chosen to place trajectories in the ranges shown in the paper's
Figure 2 for a Chicago-scale population (2.7M): daily infections growing from
tens to a few tens of thousands over ~100 days with R0 ~ 2 at theta = 0.3, and
daily deaths in the 0-50 range.  Stage durations and severity fractions follow
the COVID-19 literature values the covid-chicago model cites.

The paper (section III-B) enumerates exactly which quantities may be changed
when restarting from a checkpoint to spawn a new trajectory:

1. the random seed;
2. the fraction of persons moving from E to P;
3. the fraction of persons moving from P to Sm;
4. infectiousness of symptomatic versus asymptomatic infections;
5. infectiousness of detected versus undetected infections;
6. the rate of persons moving from S to E (the transmission rate).

:class:`ParameterOverride` encodes that contract; anything else is fixed at
checkpoint time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Any, ClassVar, Mapping

__all__ = ["DiseaseParameters", "ParameterOverride", "chicago_defaults"]


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def _check_positive(name: str, value: float) -> None:
    if not value > 0.0 or not math.isfinite(value):
        raise ValueError(f"{name} must be positive and finite, got {value}")


@dataclass(frozen=True)
class DiseaseParameters:
    """Full parameterisation of the stochastic SEIR simulator.

    Attributes
    ----------
    population:
        Closed population size N.
    initial_exposed:
        Number of individuals seeded in E at day 0.
    transmission_rate:
        theta — the S -> E rate scale (per day); the calibration target.
    latent_period_days:
        Mean dwell in E before becoming infectious.
    exposed_to_presymptomatic_fraction:
        Fraction of E exits that enter P (the rest are fully asymptomatic);
        paper override knob 2.
    presymptomatic_period_days:
        Mean dwell in P before symptom onset.
    mild_fraction:
        Fraction of symptom onsets that are mild (P -> Sm); paper knob 3.
    asymptomatic_period_days, mild_period_days:
        Mean infectious durations before recovery.
    severe_period_days:
        Mean time from severe-symptom onset to hospital admission.
    hospital_period_days:
        Mean non-ICU hospital stay before recovery or ICU transfer.
    critical_fraction:
        Fraction of hospitalised patients that become critical (H -> C).
    icu_period_days:
        Mean ICU stay before death or step-down.
    death_fraction:
        Fraction of critical patients that die (C -> D).
    post_icu_period_days:
        Mean post-ICU hospital stay before recovery.
    detection_prob_*:
        Probability an infection in that stage is ever detected.
    detection_delay_days:
        Mean delay to detection given detection occurs.
    asymptomatic_rel_infectiousness:
        Infectiousness of asymptomatic relative to symptomatic; paper knob 4.
    detected_rel_infectiousness:
        Infectiousness of detected relative to undetected; paper knob 5.
    """

    population: int = 2_700_000
    initial_exposed: int = 500

    transmission_rate: float = 0.30

    latent_period_days: float = 3.0
    exposed_to_presymptomatic_fraction: float = 0.75
    presymptomatic_period_days: float = 2.3
    mild_fraction: float = 0.92
    asymptomatic_period_days: float = 6.0
    mild_period_days: float = 6.0
    severe_period_days: float = 4.0
    hospital_period_days: float = 6.0
    critical_fraction: float = 0.25
    icu_period_days: float = 8.0
    death_fraction: float = 0.40
    post_icu_period_days: float = 5.0

    detection_prob_asymptomatic: float = 0.05
    detection_prob_presymptomatic: float = 0.05
    detection_prob_mild: float = 0.30
    detection_prob_severe: float = 0.80
    detection_delay_days: float = 2.0

    asymptomatic_rel_infectiousness: float = 0.60
    detected_rel_infectiousness: float = 0.15

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError("population must be >= 1")
        if not 0 <= self.initial_exposed <= self.population:
            raise ValueError("initial_exposed must be in [0, population]")
        if self.transmission_rate < 0:
            raise ValueError("transmission_rate must be >= 0")
        for name in ("latent_period_days", "presymptomatic_period_days",
                     "asymptomatic_period_days", "mild_period_days",
                     "severe_period_days", "hospital_period_days",
                     "icu_period_days", "post_icu_period_days",
                     "detection_delay_days"):
            _check_positive(name, getattr(self, name))
        for name in ("exposed_to_presymptomatic_fraction", "mild_fraction",
                     "critical_fraction", "death_fraction",
                     "detection_prob_asymptomatic", "detection_prob_presymptomatic",
                     "detection_prob_mild", "detection_prob_severe",
                     "asymptomatic_rel_infectiousness",
                     "detected_rel_infectiousness"):
            _check_fraction(name, getattr(self, name))

    # ------------------------------------------------------------------ #
    def with_updates(self, **updates: Any) -> "DiseaseParameters":
        """Return a copy with named fields replaced (validated)."""
        return replace(self, **updates)

    def basic_reproduction_number(self) -> float:
        """Crude R0 estimate: theta times the mean infectious person-days.

        Ignores detection (which reduces effective infectiousness), so this is
        an upper bound; used for sanity checks and documentation, not inference.
        """
        p = self
        sigma = p.exposed_to_presymptomatic_fraction
        asym = (1.0 - sigma) * p.asymptomatic_rel_infectiousness * p.asymptomatic_period_days
        presym = sigma * p.presymptomatic_period_days
        mild = sigma * p.mild_fraction * p.mild_period_days
        severe = sigma * (1.0 - p.mild_fraction) * p.severe_period_days
        return p.transmission_rate * (asym + presym + mild + severe)

    def infection_fatality_ratio(self) -> float:
        """Expected deaths per infection implied by the pathway fractions."""
        p = self
        return (p.exposed_to_presymptomatic_fraction * (1.0 - p.mild_fraction)
                * p.critical_fraction * p.death_fraction)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "DiseaseParameters":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown parameter fields: {sorted(unknown)}")
        return cls(**dict(d))


def chicago_defaults(**updates: Any) -> DiseaseParameters:
    """The default Chicago-scale parameter set, optionally tweaked."""
    return DiseaseParameters().with_updates(**updates) if updates else DiseaseParameters()


@dataclass(frozen=True)
class ParameterOverride:
    """Exactly the six quantities the paper allows when restarting a checkpoint.

    Every field defaults to ``None`` meaning "keep the checkpointed value".
    ``seed`` is consumed by the engine factory (it re-seeds the RNG stream);
    the remaining five rewrite :class:`DiseaseParameters` fields.
    """

    seed: int | None = None
    transmission_rate: float | None = None
    exposed_to_presymptomatic_fraction: float | None = None
    mild_fraction: float | None = None
    asymptomatic_rel_infectiousness: float | None = None
    detected_rel_infectiousness: float | None = None

    _PARAM_FIELDS: ClassVar[tuple[str, ...]] = (
        "transmission_rate",
        "exposed_to_presymptomatic_fraction",
        "mild_fraction",
        "asymptomatic_rel_infectiousness",
        "detected_rel_infectiousness",
    )

    def apply_to(self, params: DiseaseParameters) -> DiseaseParameters:
        """Rewrite the overridden fields of ``params``."""
        updates = {name: getattr(self, name) for name in self._PARAM_FIELDS
                   if getattr(self, name) is not None}
        return params.with_updates(**updates) if updates else params

    def is_empty(self) -> bool:
        return self.seed is None and all(
            getattr(self, name) is None for name in self._PARAM_FIELDS)

    def to_dict(self) -> dict:
        d: dict[str, Any] = {}
        if self.seed is not None:
            d["seed"] = int(self.seed)
        for name in self._PARAM_FIELDS:
            value = getattr(self, name)
            if value is not None:
                d[name] = float(value)
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ParameterOverride":
        allowed = {"seed", *cls._PARAM_FIELDS}
        unknown = set(d) - allowed
        if unknown:
            raise ValueError(
                f"override fields {sorted(unknown)} are not restartable; "
                f"the paper permits only {sorted(allowed)}")
        return cls(**dict(d))
