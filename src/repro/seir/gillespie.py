"""Exact stochastic simulation (Gillespie SSA) engine.

The direct-method SSA simulates every transition event individually with
exponential waiting times, making it the exact reference law for the
compartment topology.  Cost scales with the total number of events, so this
engine is intended for small populations: distributional validation of the
binomial-leap engine (see ``tests/seir/test_engine_agreement.py`` and
``benchmarks/bench_engines.py``) and for pedagogical examples.

Time-varying transmission is handled by restricting each SSA step to the
current integer day: rates are constant within a day (the schedule is
piecewise-constant on days), and steps that would cross the day boundary are
truncated, which keeps the method exact for the day-resolved process.
"""

from __future__ import annotations

import numpy as np

from ..data.schedule import PiecewiseConstant
from .compartments import Compartment, N_COMPARTMENTS
from .outputs import Trajectory, TrajectoryBuilder
from .parameters import DiseaseParameters
from .seeding import (generator_for, rng_from_jsonable,
                      rng_state_to_jsonable)
from .tauleap import _theta_function, compiled_transitions_for

__all__ = ["GillespieEngine"]


class GillespieEngine:
    """Exact SSA engine for a single trajectory (small populations).

    Shares parameterisation, seeding, snapshot, and output conventions with
    :class:`~repro.seir.tauleap.BinomialLeapEngine`.
    """

    name = "gillespie"

    def __init__(self, params: DiseaseParameters, seed: int, *,
                 theta_schedule: PiecewiseConstant | None = None,
                 start_day: int = 0,
                 max_events_per_day: int = 2_000_000) -> None:
        self.params = params
        self.seed = int(seed)
        self.theta_schedule = theta_schedule
        self._theta_of = _theta_function(params, theta_schedule)
        self._table = compiled_transitions_for(params)
        self._rng = generator_for(seed)
        self._max_events_per_day = int(max_events_per_day)

        self._day = int(start_day)
        self._counts = np.zeros(N_COMPARTMENTS, dtype=np.int64)
        self._counts[Compartment.S] = params.population - params.initial_exposed
        self._counts[Compartment.E] = params.initial_exposed
        self._cum_infections = 0
        self._cum_deaths = 0

    # ------------------------------------------------------------------ #
    @property
    def day(self) -> int:
        return self._day

    @property
    def counts(self) -> np.ndarray:
        return self._counts.copy()

    def count_of(self, compartment: Compartment) -> int:
        return int(self._counts[compartment])

    @property
    def cumulative_infections(self) -> int:
        return int(self._cum_infections)

    @property
    def cumulative_deaths(self) -> int:
        return int(self._cum_deaths)

    def population_conserved(self) -> bool:
        return int(self._counts.sum()) == self.params.population

    # ------------------------------------------------------------------ #
    def _rates(self, theta: float) -> tuple[float, np.ndarray]:
        """Return (infection_rate, per-source transition rates)."""
        counts = self._counts
        weighted = float(self._table.infection_weights @ counts)
        lam = theta * weighted / self.params.population
        infection_rate = lam * counts[Compartment.S]
        source_rates = self._table.total_hazards * counts[self._table.sources]
        return infection_rate, source_rates

    def step_day(self) -> tuple[int, int]:
        """Simulate one day of events exactly; return (infections, deaths)."""
        theta = self._theta_of(self._day)
        rng = self._rng
        t = 0.0
        day_inf = 0
        day_dead = 0
        events = 0
        while True:
            infection_rate, source_rates = self._rates(theta)
            total = infection_rate + float(source_rates.sum())
            if total <= 0.0:
                break
            t += rng.exponential(1.0 / total)
            if t >= 1.0:
                break
            events += 1
            if events > self._max_events_per_day:
                raise RuntimeError(
                    "Gillespie event budget exceeded; population too large "
                    "for the exact engine — use BinomialLeapEngine")
            u = rng.uniform(0.0, total)
            if u < infection_rate:
                self._counts[Compartment.S] -= 1
                self._counts[Compartment.E] += 1
                day_inf += 1
                continue
            u -= infection_rate
            idx = int(np.searchsorted(np.cumsum(source_rates), u, side="right"))
            idx = min(idx, len(source_rates) - 1)
            src = int(self._table.sources[idx])
            dests = self._table.dest_indices[idx]
            probs = self._table.dest_probs[idx]
            if len(dests) == 1:
                dst = int(dests[0])
            else:
                dst = int(rng.choice(dests, p=probs))
            self._counts[src] -= 1
            self._counts[dst] += 1
            if dst in (Compartment.D_U, Compartment.D_D):
                day_dead += 1
        self._day += 1
        self._cum_infections += day_inf
        self._cum_deaths += day_dead
        return day_inf, day_dead

    def _census(self) -> tuple[int, int]:
        c = self._counts
        hosp = int(c[Compartment.H_U] + c[Compartment.H_D]
                   + c[Compartment.HP_U] + c[Compartment.HP_D])
        icu = int(c[Compartment.C_U] + c[Compartment.C_D])
        return hosp, icu

    def run_until(self, end_day: int) -> Trajectory:
        if end_day < self._day:
            raise ValueError(f"end_day {end_day} is before current day {self._day}")
        builder = TrajectoryBuilder(self._day)
        while self._day < end_day:
            inf, dead = self.step_day()
            hosp, icu = self._census()
            builder.append_day(inf, dead, hosp, icu)
        return builder.build()

    # ------------------------------------------------------------------ #
    def state_snapshot(self) -> dict:
        return {
            "engine": self.name,
            "day": self._day,
            "counts": self._counts.tolist(),
            "cum_infections": int(self._cum_infections),
            "cum_deaths": int(self._cum_deaths),
            "seed": self.seed,
            "rng_state": rng_state_to_jsonable(self._rng),
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict, params: DiseaseParameters, *,
                      seed: int | None = None,
                      theta_schedule: PiecewiseConstant | None = None,
                      ) -> "GillespieEngine":
        engine = cls.__new__(cls)
        engine.params = params
        engine.theta_schedule = theta_schedule
        engine._theta_of = _theta_function(params, theta_schedule)
        engine._table = compiled_transitions_for(params)
        engine._max_events_per_day = 2_000_000
        engine._day = int(snapshot["day"])
        engine._counts = np.asarray(snapshot["counts"], dtype=np.int64).copy()
        engine._cum_infections = int(snapshot["cum_infections"])
        engine._cum_deaths = int(snapshot["cum_deaths"])
        if seed is not None:
            engine.seed = int(seed)
            engine._rng = generator_for(int(seed))
        else:
            engine.seed = int(snapshot["seed"])
            engine._rng = rng_from_jsonable(snapshot["rng_state"])
        return engine
