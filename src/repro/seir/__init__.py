"""Stochastic SEIR disease simulator substrate (paper sections III, V-A)."""

from .checkpoint import Checkpoint, CheckpointError
from .compartments import (Compartment, N_COMPARTMENTS, TransitionSpec,
                           build_transitions, infectiousness_weights)
from .events import EventDrivenEngine, ScheduledEvent
from .gillespie import GillespieEngine
from .model import ENGINE_NAMES, StochasticSEIRModel, engine_class
from .outputs import Trajectory, TrajectoryBuilder
from .parameters import DiseaseParameters, ParameterOverride, chicago_defaults
from .seeding import SeedSequenceBank, generator_for, mix_seed
from .tauleap import BinomialLeapEngine, CompiledTransitions

__all__ = [
    "Compartment", "N_COMPARTMENTS", "TransitionSpec",
    "build_transitions", "infectiousness_weights",
    "DiseaseParameters", "ParameterOverride", "chicago_defaults",
    "SeedSequenceBank", "generator_for", "mix_seed",
    "Trajectory", "TrajectoryBuilder",
    "BinomialLeapEngine", "GillespieEngine", "EventDrivenEngine",
    "ScheduledEvent", "CompiledTransitions",
    "Checkpoint", "CheckpointError",
    "StochasticSEIRModel", "engine_class", "ENGINE_NAMES",
]
