"""Stochastic SEIR disease simulator substrate (paper sections III, V-A)."""

from .batch_engine import (BatchedBinomialLeapEngine, BatchTrajectory,
                           stack_channel_tensor)
from .checkpoint import (Checkpoint, CheckpointError, StackedLeapState,
                         stack_leap_snapshots)
from .compartments import (Compartment, N_COMPARTMENTS, TransitionSpec,
                           build_transitions, infectiousness_weights)
from .events import EventDrivenEngine, ScheduledEvent
from .gillespie import GillespieEngine
from .model import (BATCH_ENGINE_NAMES, ENGINE_NAMES, StochasticSEIRModel,
                    batch_engine_class, engine_class)
from .outputs import Trajectory, TrajectoryBuilder
from .parameters import DiseaseParameters, ParameterOverride, chicago_defaults
from .seeding import (SeedSequenceBank, batch_generator_for, generator_for,
                      mix_seed)
from .tauleap import (BinomialLeapEngine, CompiledTransitions,
                      compiled_transitions_for, transition_table_key)

__all__ = [
    "Compartment", "N_COMPARTMENTS", "TransitionSpec",
    "build_transitions", "infectiousness_weights",
    "DiseaseParameters", "ParameterOverride", "chicago_defaults",
    "SeedSequenceBank", "generator_for", "batch_generator_for", "mix_seed",
    "Trajectory", "TrajectoryBuilder",
    "BinomialLeapEngine", "GillespieEngine", "EventDrivenEngine",
    "BatchedBinomialLeapEngine", "BatchTrajectory", "stack_channel_tensor",
    "ScheduledEvent", "CompiledTransitions", "compiled_transitions_for",
    "transition_table_key",
    "Checkpoint", "CheckpointError", "StackedLeapState",
    "stack_leap_snapshots",
    "StochasticSEIRModel", "engine_class", "ENGINE_NAMES",
    "batch_engine_class", "BATCH_ENGINE_NAMES",
]
