"""Random-seed management for trajectory-oriented calibration.

The paper treats the random seed ``s`` as a *coordinate of the particle*: the
pair ``(theta, s)`` maps one-to-one to a trajectory, which is what lets the
framework store, resample, and restart individual histories.  It additionally
uses **common random numbers**: "the same set of random seeds is employed to
generate the 20 realizations from the stochastic simulation" at every theta
(section V-B), which removes between-theta replicate noise from the weight
comparison.

:class:`SeedSequenceBank` provides both facilities on top of
``numpy.random.SeedSequence``:

* a reproducible common seed set shared by all parameter draws, and
* independent child streams for ancillary randomness (priors, thinning)
  that must not collide with simulation streams.

This module is the repo's **only** RNG construction site: every generator,
seed sequence, and serialised RNG state flows through the functions here, a
confinement the static analysis pass (:mod:`repro.analysis`) enforces on
every push.  Stream tags live in the :data:`STREAM_DOMAINS` registry, which
rejects duplicate tags at import time — the PR 5
``window_restart_seed``/``window_draw_seed`` aliasing bug class cannot
silently return.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
import numpy.typing

__all__ = ["SeedSequenceBank", "generator_for", "batch_generator_for",
           "mix_seed", "StreamDomain", "StreamDomainRegistry",
           "STREAM_DOMAINS", "register_stream_tag",
           "register_ancillary_purpose", "rng_state_to_jsonable",
           "rng_from_jsonable"]


# --------------------------------------------------------------------------- #
# Stream-domain registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class StreamDomain:
    """One named, registered seed-stream tag.

    ``domain`` separates the two tag namespaces in use: ``"bank"`` for the
    top-level tags that key ``SeedSequence`` spawn/entropy domains and the
    reserved ``mix_seed`` method position, ``"ancillary"`` for the purpose
    sub-tags under :meth:`SeedSequenceBank.ancillary_generator`.
    """

    name: str
    tag: int
    domain: str = "bank"
    description: str = ""


@dataclass
class StreamDomainRegistry:
    """Import-time uniqueness guard over every seed-stream tag.

    Each random draw in the codebase lives in a documented seed domain; two
    domains sharing one tag silently alias their streams (the shape of the
    PR 5 ``window_restart_seed``/``window_draw_seed`` bug).  Registration
    happens at module import, so a clashing tag — or an unnamed integer
    literal, which the lint pass rejects — fails the process before any
    draw is made.
    """

    _by_key: dict[tuple[str, int], StreamDomain] = field(default_factory=dict)
    _by_name: dict[tuple[str, str], StreamDomain] = field(default_factory=dict)

    def register(self, name: str, tag: int, *, domain: str = "bank",
                 description: str = "") -> int:
        """Register ``name -> tag`` in ``domain``; return the tag.

        Raises
        ------
        ValueError
            If the tag is already taken by another name in the same domain,
            or the name is already registered (re-registering the *same*
            ``(name, tag)`` pair is idempotent, so module reloads survive).
        """
        entry = StreamDomain(name=str(name), tag=int(tag), domain=str(domain),
                             description=description)
        key = (entry.domain, entry.tag)
        existing = self._by_key.get(key)
        if existing is not None and existing.name != entry.name:
            raise ValueError(
                f"stream tag {entry.tag} in domain {entry.domain!r} is "
                f"already registered as {existing.name!r}; cannot register "
                f"it again as {entry.name!r} — two names on one tag alias "
                f"their seed streams")
        named = self._by_name.get((entry.domain, entry.name))
        if named is not None and named.tag != entry.tag:
            raise ValueError(
                f"stream {entry.name!r} in domain {entry.domain!r} is "
                f"already registered with tag {named.tag}; cannot rebind it "
                f"to {entry.tag}")
        self._by_key[key] = entry
        self._by_name[(entry.domain, entry.name)] = entry
        return entry.tag

    def domains(self) -> tuple[StreamDomain, ...]:
        """Every registered stream, ordered by (domain, tag)."""
        return tuple(sorted(self._by_key.values(),
                            key=lambda d: (d.domain, d.tag)))

    def tags(self, domain: str = "bank") -> dict[str, int]:
        """``name -> tag`` mapping of one domain."""
        return {d.name: d.tag for d in self._by_key.values()
                if d.domain == domain}

    def lookup(self, name: str, domain: str = "bank") -> StreamDomain:
        entry = self._by_name.get((domain, name))
        if entry is None:
            raise KeyError(f"no stream {name!r} registered in domain "
                           f"{domain!r}")
        return entry


#: The process-wide registry.  Modules owning a stream register it at import
#: time next to the constant that names it; the lint pass requires every tag
#: fed to :func:`mix_seed` / ``ancillary_generator`` to be such a constant.
STREAM_DOMAINS = StreamDomainRegistry()


def register_stream_tag(name: str, tag: int, *, description: str = "") -> int:
    """Register a top-level bank stream tag (spawn/entropy/``mix_seed``)."""
    return STREAM_DOMAINS.register(name, tag, domain="bank",
                                   description=description)


def register_ancillary_purpose(name: str, purpose: int, *,
                               description: str = "") -> int:
    """Register an ancillary purpose sub-tag (see ``ancillary_generator``)."""
    return STREAM_DOMAINS.register(name, purpose, domain="ancillary",
                                   description=description)


# Stream tags.  The first three key ``SeedSequence`` spawn/entropy domains;
# the ``mix_seed``-based methods below additionally reserve the component
# position *immediately after* ``base_seed`` for their method tag, so no two
# methods can ever reach the same ``mix_seed`` argument tuple whatever their
# caller-supplied components are (a ``window_restart_seed`` call whose
# ``original_seed`` happens to equal another method's tag used to alias that
# method's seeds exactly).  Tag values are pinned by regression tests —
# changing one silently re-keys every stream it feeds.
_SIMULATION_STREAM = register_stream_tag(
    "simulation", 0, description="common replicate seed set (spawn key)")
_ANCILLARY_STREAM = register_stream_tag(
    "ancillary", 1, description="ancillary purpose streams (spawn key)")
_BATCH_STREAM = register_stream_tag(
    "batch", 2, description="batched whole-ensemble streams (entropy lead)")
_WINDOW_DRAW_STREAM = register_stream_tag(
    "window_draw", 3, description="per-(window, draw) restart seeds")
_WINDOW_RESTART_STREAM = register_stream_tag(
    "window_restart", 4, description="per-(window, particle) restart seeds")
_SCENARIO_STREAM = register_stream_tag(
    "scenario", 5, description="per-scenario independent stream roots")


def generator_for(seed: int) -> np.random.Generator:
    """A fresh, deterministic generator for a trajectory seed.

    Every engine obtains its RNG through this function, which is what makes
    ``(theta, s) -> trajectory`` a pure mapping: same seed, same stream,
    regardless of which process or engine instance runs the simulation.
    """
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(int(seed))))


def batch_generator_for(seeds: np.typing.ArrayLike) -> np.random.Generator:
    """One shared stream for a whole ensemble, keyed by the seed *vector*.

    The batched simulation engine advances every ensemble member from a
    single generator, so the per-member scalar contract ``(theta, s) ->
    trajectory`` is replaced by a batch-level one: the ordered seed vector
    (plus the batch-stream tag) fully determines every member's draws.  Two
    batched runs with the same parameters and the same seed vector in the
    same order are bit-identical; permuting, growing, or shrinking the
    ensemble re-keys the stream and changes every member's draws (they stay
    correct in distribution).  The tag keeps the batch stream disjoint from
    the scalar per-trajectory streams of :func:`generator_for`, so mixing
    scalar and batched engines in one run never aliases randomness.

    This is also the **per-shard contract** of the sharded dispatch layer
    (:mod:`repro.hpc.sharding`): a shard covering slice ``[lo, hi)`` of a
    group's ordered seed vector draws from
    ``batch_generator_for(seeds[lo:hi])`` — a pure function of the slice
    contents, so shard results do not depend on which worker (or process)
    simulates them, only on the layout that produced the slices.
    """
    entropy = [_BATCH_STREAM] + [int(s) & 0x7FFFFFFFFFFFFFFF
                                 for s in np.asarray(seeds, dtype=np.int64)]
    if len(entropy) < 2:
        raise ValueError("batch stream needs at least one seed")
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(
        entropy=entropy)))


def mix_seed(*components: int) -> int:
    """Deterministically mix integer components into a single 63-bit seed.

    Used to derive per-(window, particle) restart seeds without collisions:
    ``mix_seed(base, window_index, particle_index)``.
    """
    ss = np.random.SeedSequence(entropy=[int(c) & 0x7FFFFFFFFFFFFFFF
                                         for c in components])
    return int(ss.generate_state(1, dtype=np.uint64)[0] & 0x7FFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class SeedSequenceBank:
    """Reproducible seed supply for one calibration run.

    Parameters
    ----------
    base_seed:
        Master entropy for the whole run.  Two banks with the same base seed
        produce identical seed sets and ancillary generators.
    """

    base_seed: int = 20240215

    def common_replicate_seeds(self, n_replicates: int) -> list[int]:
        """The shared seed set used across *all* parameter draws.

        Implements the paper's common-random-numbers device: replicate ``r``
        of every theta uses ``seeds[r]``.
        """
        if n_replicates < 1:
            raise ValueError("n_replicates must be >= 1")
        ss = np.random.SeedSequence(self.base_seed, spawn_key=(_SIMULATION_STREAM,))
        state = ss.generate_state(n_replicates, dtype=np.uint64)
        return [int(s & 0x7FFFFFFFFFFFFFFF) for s in state]

    def ancillary_generator(self, purpose: int = 0,
                            window_index: int | None = None
                            ) -> np.random.Generator:
        """An RNG stream independent of every simulation stream.

        ``purpose`` distinguishes consumers (0 = prior sampling, 1 = bias
        thinning, 2 = resampling, ...), so adding a consumer never perturbs
        the draws of existing ones.

        ``window_index`` derives a further sub-stream per calibration window
        via ``spawn_key=(_ANCILLARY_STREAM, purpose, window_index)``.  Every
        per-window consumer (jitter, bias thinning, resampling) must pass it:
        re-creating the un-windowed stream each window would make every
        window consume the *same* draws, silently correlating its ancillary
        randomness across the whole run.  Omit it only for one-shot consumers
        (first-window prior sampling).
        """
        key: tuple[int, ...] = (_ANCILLARY_STREAM, int(purpose))
        if window_index is not None:
            if window_index < 0:
                raise ValueError("window_index must be >= 0")
            key = key + (int(window_index),)
        ss = np.random.SeedSequence(self.base_seed, spawn_key=key)
        return np.random.Generator(np.random.PCG64(ss))

    def batch_simulation_generator(
            self, seeds: np.typing.ArrayLike) -> np.random.Generator:
        """The batch-engine stream for an ordered ensemble seed vector.

        Thin, discoverable front door to :func:`batch_generator_for`: the
        bank's ``base_seed`` is already folded into every seed the bank
        hands out (:meth:`common_replicate_seeds`,
        :meth:`window_restart_seed`), so the batch stream is fully
        determined by ``(base_seed, seed vector, ensemble order)`` without
        mixing the base seed in a second time.
        """
        return batch_generator_for(seeds)

    def shard_simulation_generators(
            self, seeds: np.typing.ArrayLike,
            bounds: Sequence[tuple[int, int]]
    ) -> list[np.random.Generator]:
        """Per-shard batch streams for a sharded ensemble seed vector.

        The sharded-dispatch RNG contract: shard ``k`` covering the
        half-open slice ``bounds[k] = (lo, hi)`` of the ordered seed vector
        draws from ``batch_generator_for(seeds[lo:hi])`` — each shard is
        its own batch, keyed by its slice alone.  Consequences:

        * results are **bit-reproducible given the shard layout** and
          independent of the executor that runs the shards (workers rebuild
          the same stream from the same slice),
        * a single shard covering everything reproduces
          :meth:`batch_simulation_generator` exactly (the serial fast
          path), and
        * different layouts re-key every stream, so results across shard
          sizes agree in distribution only — the same relaxation as scalar
          vs batched.

        ``bounds`` is typically :func:`repro.hpc.partition.shard_bounds`
        output.  Worker processes rebuild the identical streams by calling
        :func:`batch_generator_for` on their task's seed slice
        (:func:`repro.hpc.sharding.run_shard`); this method is the
        parent-side contract surface, and the seeding tests pin the two
        against each other so they cannot silently diverge.
        """
        seeds_arr = np.asarray(seeds, dtype=np.int64)
        return [batch_generator_for(seeds_arr[lo:hi]) for lo, hi in bounds]

    def window_restart_seed(self, original_seed: int, window_index: int,
                            particle_index: int) -> int:
        """Fresh seed for restarting a particle into a new window.

        The paper re-parameterises a checkpoint with "1) the random seed" —
        restarted trajectories get new randomness rather than replaying the
        parent stream.  Mixing in the particle index keeps resampled
        duplicates of the same ancestor from evolving identically.  The
        method's stream tag sits in the reserved position right after the
        base seed, so no ``original_seed`` value can steer these seeds into
        :meth:`window_draw_seed`'s domain (or any other bank stream's).
        """
        return mix_seed(self.base_seed, _WINDOW_RESTART_STREAM, original_seed,
                        window_index, particle_index)

    def scenario_base_seed(self, scenario_key: int) -> int:
        """Derived base seed rooting one scenario's *independent* streams.

        The scenario axis defaults to **common random numbers**: every
        scenario in a sweep shares this bank's ``base_seed`` unchanged, so
        scenarios whose effective parameters agree over a window prefix
        produce bit-identical windows (the world-line deduplication the
        sweep exploits) and between-scenario differences are never replicate
        noise.  A scenario that opts *out* of CRN
        (``ScenarioSpec(independent_streams=True)``) instead runs its whole
        calibration from a bank built on this derived seed — a pure function
        of ``(base_seed, scenario_key)`` with the scenario stream tag in the
        reserved position right after the base seed, so no scenario key can
        steer the derived seed into :meth:`window_draw_seed`'s domain (or
        any other bank stream's).
        """
        if scenario_key < 0:
            raise ValueError("scenario_key must be >= 0")
        return mix_seed(self.base_seed, _SCENARIO_STREAM, int(scenario_key))

    def window_draw_seed(self, window_index: int, draw_index: int) -> int:
        """Seed of proposal ``draw_index`` in window ``window_index``.

        The adaptive-ensemble restart contract: a pure function of
        ``(base_seed, window_index, draw_index)`` — *not* of the cloud's
        size, the parent particle, or the draw's position inside any shard
        layout.  Growing or shrinking the cloud between windows therefore
        leaves the seeds of all surviving draw indices unchanged (the seed
        vector of a larger cloud extends the smaller one as a prefix), and
        resampled duplicates of one ancestor still diverge because their
        draw indices differ.  The stream tag, in the reserved position right
        after the base seed, keeps these seeds disjoint from
        :meth:`window_restart_seed` and every other bank stream.
        """
        if window_index < 0 or draw_index < 0:
            raise ValueError("window_index and draw_index must be >= 0")
        return mix_seed(self.base_seed, _WINDOW_DRAW_STREAM, window_index,
                        draw_index)


# --------------------------------------------------------------------------- #
# RNG state (de)serialisation shared by all engines.
#
# These live here — not with the engines — because reconstructing a
# mid-stream generator is RNG construction, and this module is the only
# place allowed to construct RNG state (enforced by repro.analysis).
# --------------------------------------------------------------------------- #
def rng_state_to_jsonable(rng: np.random.Generator) -> dict:
    """Extract the bit-generator state as JSON-safe plain types."""
    state = rng.bit_generator.state
    return {
        "bit_generator": state["bit_generator"],
        "state": {k: int(v) for k, v in state["state"].items()},
        "has_uint32": int(state.get("has_uint32", 0)),
        "uinteger": int(state.get("uinteger", 0)),
    }


def rng_from_jsonable(payload: dict) -> np.random.Generator:
    """Reconstruct a generator mid-stream from its serialised state."""
    name = payload["bit_generator"]
    if name != "PCG64":
        raise ValueError(f"unsupported bit generator {name!r}")
    bg = np.random.PCG64()
    bg.state = {
        "bit_generator": name,
        "state": {k: int(v) for k, v in payload["state"].items()},
        "has_uint32": int(payload.get("has_uint32", 0)),
        "uinteger": int(payload.get("uinteger", 0)),
    }
    return np.random.Generator(bg)
